"""The site agent: a facility's worker loop against the control plane.

An agent is the paper's "site" made executable: a process at one
facility that polls the central service for ready work-units, executes
each through the existing stage runtime
(:func:`~repro.server.execution.execute_unit`), heartbeats while the
work runs, and reports the outcome.  Several agents at several sites
drain one run cooperatively — the server's lease protocol decides who
does what, the shared filesystem and run journal carry the state.

Failure is the design center, not the exception path:

* If the agent dies mid-unit (modelled by the ``agent`` chaos crash
  surface), its heartbeats stop, the lease expires, and the server
  requeues the unit for the next poller — whose journal replay makes
  the re-execution idempotent.
* If the *wire* dies — partition, blackout, server kill — the agent
  **keeps operating disconnected**: it finishes its in-flight unit,
  spools the result and missed heartbeats to a durable
  :class:`~repro.server.outbox.Outbox`, and enters a degraded state
  probing ``/v1/health`` with full-jitter exponential backoff (a fleet
  of agents must not thundering-herd a healed server).  On reconnect it
  replays the spool through the idempotent ``/v1/reconcile`` endpoint.
* If a heartbeat reveals the lease was **fenced away** (expired and
  requeued while the agent was slow or away), the agent cancels its
  execution at the next checkpoint and relinquishes cleanly — the
  unit's new owner is authoritative, and the server would reject the
  stale result anyway.
* If the unit's body raises, the failure is reported honestly and the
  server decides (operator ``retry``) whether it runs again.
"""

from __future__ import annotations

import inspect
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Union

from repro.chaos.surfaces import chaos_crash
from repro.net.retry import BackoffPolicy
from repro.server.client import (
    ControlPlaneClient,
    Lease,
    RequestFailed,
    ServerUnavailable,
)
from repro.server.execution import LeaseLost, execute_unit
from repro.server.outbox import Outbox

__all__ = ["AgentStats", "SiteAgent"]

# The reconnect probe schedule: full jitter, so a fleet of agents that
# lost the same link spreads its probes across the whole backoff window
# when the partition heals.
_DEFAULT_RECONNECT = BackoffPolicy(
    base=0.05, factor=2.0, max_delay=5.0, full_jitter=True
)


@dataclass
class AgentStats:
    """What one agent did with its life."""

    polls: int = 0
    idle_polls: int = 0
    leases: int = 0
    completed: int = 0
    failed: int = 0
    lost_leases: int = 0
    heartbeats: int = 0
    # Partition-tolerance accounting (mirrored into /metrics and
    # WorkflowReport by the harnesses that embed agents).
    disconnects: int = 0
    reconnect_attempts: int = 0
    outbox_spooled: int = 0
    outbox_replayed: int = 0
    fenced_rejections: int = 0
    errors: Dict[str, str] = field(default_factory=dict)

    def partition_summary(self) -> Dict[str, object]:
        """This agent's slice of the ``WorkflowReport.partition`` schema.

        Key-compatible with :data:`repro.core.workflow.PARTITION_COUNTERS`
        (pinned by a test), so multi-facility harnesses can aggregate
        agent outage accounting into the same dashboard shape local runs
        emit as structural zeros.
        """
        return {
            "enabled": True,
            "disconnects": self.disconnects,
            "reconnect_attempts": self.reconnect_attempts,
            "outbox_spooled": self.outbox_spooled,
            "outbox_replayed": self.outbox_replayed,
            "fenced_rejections": self.fenced_rejections,
        }


class SiteAgent:
    """Polls, leases, executes, heartbeats, reports — until told to stop."""

    def __init__(
        self,
        client: ControlPlaneClient,
        name: str,
        site: str = "",
        ttl: float = 15.0,
        poll_interval: float = 0.05,
        heartbeat_interval: Optional[float] = None,
        chaos: Any = None,
        executor: Callable[..., Mapping[str, Any]] = execute_unit,
        sleeper: Callable[[float], None] = time.sleep,
        outbox: Union[Outbox, str, None] = None,
        reconnect: Optional[BackoffPolicy] = None,
        reconnect_limit: Optional[int] = None,
    ):
        self.client = client
        self.name = name
        self.site = site
        self.ttl = ttl
        self.poll_interval = poll_interval
        # A third of the TTL keeps two missed beats survivable.
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None else ttl / 3.0
        )
        self.chaos = chaos
        self.executor = executor
        self.outbox = outbox if isinstance(outbox, Outbox) else Outbox(outbox)
        self.reconnect = reconnect or _DEFAULT_RECONNECT
        # None = probe forever (the disconnected-operation default for
        # embedded agents); an int bounds the probes before giving up
        # with ServerUnavailable (the CLI's choice).
        self.reconnect_limit = reconnect_limit
        self.stats = AgentStats()
        self._sleep = sleeper
        self._executor_cancels = _accepts_cancel(executor)
        # Outage accounting the server has not heard about yet; shipped
        # with the next reconcile so central /metrics sees wire failures
        # the service itself could never observe.
        self._unreported = {"disconnects": 0, "reconnect_attempts": 0}

    def run(
        self,
        stop: Optional[threading.Event] = None,
        max_units: Optional[int] = None,
        idle_exit_after: Optional[int] = None,
    ) -> AgentStats:
        """The agent main loop.

        Stops when ``stop`` is set, after ``max_units`` executed units,
        or after ``idle_exit_after`` *consecutive* empty polls (the
        drain-and-exit mode the e2e tests and one-shot CLI use).
        Returns the accumulated :class:`AgentStats`.  When the control
        plane is unreachable the loop drops into degraded mode instead
        of raising — unless ``reconnect_limit`` probes are exhausted.
        """
        idle_streak = 0
        executed = 0
        while True:
            if stop is not None and stop.is_set():
                break
            if max_units is not None and executed >= max_units:
                break
            if len(self.outbox) or any(self._unreported.values()):
                # Spooled records (or unshipped outage counters) from an
                # earlier blip: replay them the moment the wire
                # cooperates, before asking for new work.
                self._reconcile()
            self.stats.polls += 1
            try:
                lease = self.client.lease(self.name, site=self.site, ttl=self.ttl)
            except ServerUnavailable:
                if not self._degraded(stop):
                    break
                continue
            if lease is None:
                self.stats.idle_polls += 1
                idle_streak += 1
                if idle_exit_after is not None and idle_streak >= idle_exit_after:
                    break
                self._sleep(self.poll_interval)
                continue
            idle_streak = 0
            executed += 1
            self.stats.leases += 1
            self._execute(lease)
        return self.stats

    # -- one unit -------------------------------------------------------------

    def _run_executor(self, lease: Lease, lost: threading.Event):
        if self._executor_cancels:
            return self.executor(
                lease.config, lease.unit, chaos=self.chaos, cancel=lost
            )
        return self.executor(lease.config, lease.unit, chaos=self.chaos)

    def _execute(self, lease: Lease) -> None:
        # The killed-mid-lease fault surface: the agent holds the lease,
        # the unit is not done, and the process dies without cleanup.
        chaos_crash(self.chaos, "agent", f"{lease.run_id}/{lease.unit}")

        lost = threading.Event()
        done = threading.Event()
        beater = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease, done, lost),
            name=f"heartbeat-{lease.lease_id}",
            daemon=True,
        )
        beater.start()
        relinquished = False
        result: Optional[Mapping[str, Any]] = None
        status, error = "completed", None
        try:
            try:
                result = self._run_executor(lease, lost)
            except LeaseLost:
                # The heartbeat thread learned the lease was fenced away
                # and the executor stood down at a checkpoint.
                relinquished = True
            except Exception as exc:
                result = None
                status = "failed"
                error = f"{type(exc).__name__}: {exc}"
                self.stats.errors[f"{lease.run_id}/{lease.unit}"] = (
                    traceback.format_exc()
                )
        finally:
            done.set()
            beater.join(timeout=5)

        if relinquished or lost.is_set():
            # The server moved on while we worked: a successor holds (or
            # held) the lease, and its result is the authoritative one.
            self.stats.lost_leases += 1
            return
        try:
            self.client.complete(
                lease.lease_id, status=status, result=result, error=error
            )
        except RequestFailed as exc:
            if exc.status in (404, 409):
                if exc.fenced:
                    self.stats.fenced_rejections += 1
                self.stats.lost_leases += 1
                return
            raise
        except ServerUnavailable:
            # The work is done but the server is gone: spool the result
            # durably and deliver it at reconcile time.  The lease may
            # outlive the outage (blip shorter than the TTL) or not
            # (the replay gets fenced) — either way nothing is lost and
            # nothing lands twice.
            self._spool(
                {
                    "kind": "complete",
                    "lease_id": lease.lease_id,
                    "run_id": lease.run_id,
                    "unit": lease.unit,
                    "fence": lease.fence,
                    "status": status,
                    "result": dict(result) if result else None,
                    "error": error,
                }
            )
            return
        if status == "completed":
            self.stats.completed += 1
        else:
            self.stats.failed += 1

    def _heartbeat_loop(
        self, lease: Lease, done: threading.Event, lost: threading.Event
    ) -> None:
        while not done.wait(self.heartbeat_interval):
            try:
                self.client.heartbeat(lease.lease_id, ttl=self.ttl)
                self.stats.heartbeats += 1
            except RequestFailed as exc:
                if exc.status in (404, 409):
                    # The fencing check: the lease expired and the unit
                    # was requeued.  Fire `lost` — the executor stands
                    # down at its next checkpoint and the agent skips the
                    # completion POST entirely.
                    lost.set()
                    return
            except ServerUnavailable:
                # Keep computing, but record the missed beat durably —
                # the reconcile replay tells the server (and the audit
                # trail) the agent was alive throughout the outage.
                self._spool(
                    {
                        "kind": "heartbeat",
                        "lease_id": lease.lease_id,
                        "unit": lease.unit,
                        "ttl": self.ttl,
                    }
                )
                continue

    # -- degraded operation ---------------------------------------------------

    def _spool(self, record: Mapping[str, Any]) -> None:
        self.outbox.append(record)
        self.stats.outbox_spooled += 1

    def _degraded(self, stop: Optional[threading.Event]) -> bool:
        """Probe the wire until it heals, then reconcile.

        Returns ``True`` once reconnected (outbox replayed, loop may
        resume leasing), ``False`` when ``stop`` fired first.  Raises
        :class:`ServerUnavailable` if ``reconnect_limit`` probes are
        spent — the operator asked this agent not to wait forever.
        """
        self.stats.disconnects += 1
        self._unreported["disconnects"] += 1
        attempt = 0
        while True:
            if stop is not None and stop.is_set():
                return False
            if self.reconnect_limit is not None and attempt >= self.reconnect_limit:
                raise ServerUnavailable(
                    f"control plane at {self.client.base_url} still unreachable "
                    f"after {attempt} reconnect probe(s)"
                )
            self._sleep(self.reconnect.delay(min(attempt, 16), key=self.name))
            attempt += 1
            self.stats.reconnect_attempts += 1
            self._unreported["reconnect_attempts"] += 1
            try:
                self.client.health()
            except ServerUnavailable:
                continue
            except RequestFailed:
                pass  # the server answered: the wire is back
            self._reconcile()
            return True

    def _reconcile(self) -> None:
        """Replay the outbox; fold the server's verdicts into the stats."""
        records = self.outbox.records()
        pending = {k: v for k, v in self._unreported.items() if v}
        if not records and not pending:
            return
        try:
            response = self.client.reconcile(self.name, records, stats=pending)
        except (ServerUnavailable, RequestFailed):
            # Still (or again) unreachable: keep the spool for next time.
            return
        self.outbox.clear()
        self._unreported = {"disconnects": 0, "reconnect_attempts": 0}
        self.stats.outbox_replayed += len(records)
        for record, outcome in zip(records, response.get("outcomes", [])):
            if record.get("kind") != "complete":
                continue
            verdict = outcome.get("outcome")
            if verdict in ("applied", "duplicate"):
                if record.get("status") == "failed":
                    self.stats.failed += 1
                else:
                    self.stats.completed += 1
            elif verdict == "fenced":
                # The lease died during the outage and someone else owns
                # the unit now; our local copy of the work stands down.
                self.stats.fenced_rejections += 1
                self.stats.lost_leases += 1


def _accepts_cancel(executor: Callable[..., Any]) -> bool:
    """Does this executor take the cooperative ``cancel`` event?"""
    try:
        parameters = inspect.signature(executor).parameters
    except (TypeError, ValueError):
        return False
    return "cancel" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )
