"""Text rendering of experiment results, paper-vs-measured.

Every benchmark prints through these helpers so the console output reads
like the paper's tables with an extra "paper" column; EXPERIMENTS.md is
assembled from the same renderings.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["render_table", "render_comparison", "shape_error"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """A plain monospace table."""
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in text_rows)) if text_rows
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def render_comparison(
    axis_name: str,
    measured: Dict[int, float],
    paper: Dict[int, float],
    value_name: str = "tiles/s",
    title: str = "",
) -> str:
    """Side-by-side measured vs paper with the normalized-shape ratio.

    The ratio column normalizes both curves by their first point, so it
    compares *scaling shape* independent of absolute rates.
    """
    keys = [k for k in paper if k in measured]
    if not keys:
        raise ValueError("no common axis points to compare")
    base_measured = measured[keys[0]]
    base_paper = paper[keys[0]]
    rows = []
    for key in keys:
        norm_measured = measured[key] / base_measured
        norm_paper = paper[key] / base_paper
        rows.append(
            (
                key,
                measured[key],
                paper[key],
                norm_measured / norm_paper if norm_paper else float("nan"),
            )
        )
    return render_table(
        [axis_name, f"measured {value_name}", f"paper {value_name}", "shape ratio"],
        rows,
        title=title,
    )


def shape_error(measured: Dict[int, float], paper: Dict[int, float]) -> float:
    """Max relative deviation of the first-point-normalized curves.

    0.0 means the scaling shape matches the paper exactly; 0.2 means some
    point's normalized value is 20% off.
    """
    keys = [k for k in paper if k in measured]
    if not keys:
        raise ValueError("no common axis points")
    base_measured = measured[keys[0]]
    base_paper = paper[keys[0]]
    worst = 0.0
    for key in keys:
        norm_measured = measured[key] / base_measured
        norm_paper = paper[key] / base_paper
        worst = max(worst, abs(norm_measured / norm_paper - 1.0))
    return worst
