"""Calibration sensitivity: how robust is the Table I reproduction?

The scaling model's two fitted parameters (on-node sigma, kappa) come
from Table I itself.  This driver perturbs them and measures the effect
on the reproduced strong-scaling-over-workers curve, answering the
methodological question a reviewer would ask: *does the shape match
because the physics is right, or only at a knife-edge calibration?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.hpc import build_defiant
from repro.hpc.contention import USLModel
from repro.pexec import SimHtexExecutor, SimTaskSpec
from repro.sim import Simulation

__all__ = ["SensitivityPoint", "sigma_sensitivity"]


@dataclass(frozen=True)
class SensitivityPoint:
    """One perturbed-calibration measurement."""

    sigma_scale: float
    sigma: float
    throughput: Dict[int, float]   # workers -> tiles/s

    def plateau_ratio(self) -> float:
        """Plateau height relative to the 1-worker rate (paper: ~3.6x)."""
        plateau = [v for k, v in self.throughput.items() if k in (16, 32, 64)]
        return (sum(plateau) / len(plateau)) / self.throughput[1]


def _curve(sigma: float, kappa: float, workers: Sequence[int], num_files: int) -> Dict[int, float]:
    out = {}
    for count in workers:
        sim = Simulation()
        facility = build_defiant(sim, allocation_latency=0.0)
        facility.node_usl = USLModel(sigma=sigma, kappa=kappa)
        executor = SimHtexExecutor(
            sim, facility, workers_per_node=count, noise_sigma=0.0
        )
        executor.submit_all(
            [SimTaskSpec(f"f{i}", base_duration=150 / 10.52, tiles=150) for i in range(num_files)]
        )
        executor.scale_out(num_nodes=1, workers_per_node=count)
        sim.run()
        out[count] = executor.throughput_tiles_per_s()
    return out


def sigma_sensitivity(
    scales: Sequence[float] = (0.5, 0.75, 1.0, 1.25, 1.5),
    workers: Sequence[int] = (1, 8, 16, 32, 64),
    num_files: int = 64,
    base_sigma: float = 0.1737,
    kappa: float = 0.00151,
) -> List[SensitivityPoint]:
    """Strong-scaling curves with sigma scaled by each factor."""
    points = []
    for scale in scales:
        sigma = base_sigma * scale
        points.append(
            SensitivityPoint(
                sigma_scale=scale,
                sigma=sigma,
                throughput=_curve(sigma, kappa, workers, num_files),
            )
        )
    return points
