"""Ablation drivers for the design choices DESIGN.md calls out.

* :func:`contention_ablation` — on-node USL contention on vs off: shows
  *why* Fig. 4a saturates (the ideal-linear counterfactual);
* :func:`elastic_ablation` — elastic scale-in vs holding a static
  allocation open: worker-seconds saved (Fig. 6's point);
* :func:`overlap_ablation` — asynchronous monitor-trigger vs a barrier
  between preprocess and inference: makespan saved (Fig. 2/6's design);
* :func:`ri_loss_ablation` — rotation-invariant loss vs plain
  reconstruction: label agreement under tile rotation (Section II-B's
  reason for RICC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.simflow import SimulatedEOMLWorkflow, SimWorkflowParams
from repro.hpc import build_defiant
from repro.hpc.contention import USLModel
from repro.pexec import SimHtexExecutor, SimTaskSpec
from repro.ricc import AICCAModel, transform_batch
from repro.sim import Simulation

__all__ = [
    "contention_ablation",
    "elastic_ablation",
    "overlap_ablation",
    "ri_loss_ablation",
    "RiAblationResult",
]


def contention_ablation(
    workers: tuple = (1, 8, 32, 64),
    num_files: int = 128,
    seed: int = 0,
) -> Dict[str, Dict[int, float]]:
    """Throughput with the calibrated USL vs an ideal linear node.

    Returns {"contended": {w: tiles/s}, "ideal": {w: tiles/s}}.
    """
    out: Dict[str, Dict[int, float]] = {"contended": {}, "ideal": {}}
    for label, ideal in (("contended", False), ("ideal", True)):
        for count in workers:
            sim = Simulation()
            facility = build_defiant(sim, allocation_latency=0.0)
            if ideal:
                facility.node_usl = USLModel(sigma=0.0, kappa=0.0)
                facility.cross_node_usl = USLModel(sigma=0.0, kappa=0.0)
            executor = SimHtexExecutor(
                sim, facility, workers_per_node=count, seed=seed, noise_sigma=0.0
            )
            executor.submit_all(
                [SimTaskSpec(f"f{i}", base_duration=150 / 10.52, tiles=150) for i in range(num_files)]
            )
            executor.scale_out(num_nodes=1, workers_per_node=count)
            sim.run()
            out[label][count] = executor.throughput_tiles_per_s()
    return out


def elastic_ablation(num_granule_sets: int = 24, seed: int = 0) -> Dict[str, float]:
    """Worker-seconds *and energy* with elastic scale-in vs a static pool.

    Elastic: workers exit as the queue drains (what the executor does).
    Static counterfactual: the peak node count held for the whole stage
    span.  Energy follows the Section-V carbon-footprint motivation via
    :mod:`repro.hpc.energy`.
    """
    from repro.hpc.energy import PowerModel, energy_from_worker_series

    result = SimulatedEOMLWorkflow(
        SimWorkflowParams(num_granule_sets=num_granule_sets, seed=seed)
    ).run()
    series = result.tracer.series("workers:preprocess")
    start, end = result.stage_spans["preprocess"]
    elastic = series.integral(start, end)
    static = series.max * (end - start)
    power = PowerModel()
    static_nodes = int(-(-series.max // power.workers_per_node))
    elastic_energy = energy_from_worker_series("elastic", series, start, end, power)
    static_energy = energy_from_worker_series(
        "static", series, start, end, power, static_nodes=static_nodes
    )
    return {
        "elastic_worker_seconds": elastic,
        "static_worker_seconds": static,
        "saving_fraction": 1.0 - elastic / static if static > 0 else 0.0,
        "elastic_kwh": elastic_energy.energy_kwh,
        "static_kwh": static_energy.energy_kwh,
        "energy_saving_fraction": (
            1.0 - elastic_energy.energy_kwh / static_energy.energy_kwh
            if static_energy.energy_kwh > 0
            else 0.0
        ),
        "carbon_saving_kg": static_energy.carbon_kg - elastic_energy.carbon_kg,
    }


def overlap_ablation(num_granule_sets: int = 24, seed: int = 0) -> Dict[str, float]:
    """Makespan with asynchronous inference vs a stage barrier.

    Overlapped: the measured simulated workflow.  Barrier counterfactual:
    inference-work span appended after preprocessing instead of running
    concurrently with its tail.
    """
    result = SimulatedEOMLWorkflow(
        SimWorkflowParams(num_granule_sets=num_granule_sets, seed=seed)
    ).run()
    inf_start, inf_end = result.stage_spans["inference"]
    pre_start, pre_end = result.stage_spans["preprocess"]
    overlap = max(0.0, pre_end - inf_start)
    barrier_makespan = result.makespan + overlap
    return {
        "overlapped_makespan": result.makespan,
        "barrier_makespan": barrier_makespan,
        "overlap_seconds": overlap,
        "saving_fraction": overlap / barrier_makespan if barrier_makespan else 0.0,
    }


@dataclass(frozen=True)
class RiAblationResult:
    """Label agreement under rotation, RI-trained vs plain."""

    ri_agreement: float
    plain_agreement: float


def ri_loss_ablation(
    tiles: np.ndarray,
    num_classes: int = 4,
    epochs: int = 20,
    seed: int = 0,
) -> RiAblationResult:
    """Train twins with and without the invariance loss; compare how often
    a rotated tile keeps its label."""
    ri_model, _ = AICCAModel.train(
        tiles, num_classes=num_classes, latent_dim=6, hidden=(48,),
        epochs=epochs, lambda_inv=2.0, seed=seed,
    )
    plain_model, _ = AICCAModel.train(
        tiles, num_classes=num_classes, latent_dim=6, hidden=(48,),
        epochs=epochs, lambda_inv=0.0, seed=seed,
    )

    def agreement(model: AICCAModel) -> float:
        base = model.assign(tiles)
        scores = []
        for index in (1, 2, 3, 4):
            rotated = model.assign(transform_batch(tiles, index))
            scores.append(float((rotated == base).mean()))
        return float(np.mean(scores))

    return RiAblationResult(
        ri_agreement=agreement(ri_model),
        plain_agreement=agreement(plain_model),
    )
