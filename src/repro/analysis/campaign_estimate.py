"""Archive-retrieval campaign estimation (the 850 TB question).

Section II-B: the original AICCA production retrieved "850TB of three
different MODIS products between 2000-2023".  Given the Fig. 3 network
model, how long does such a campaign take at a given worker count, and
where does adding workers stop helping?  This estimator answers with the
same calibrated parameters the Fig. 3 benchmark uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.util.units import format_bytes, format_duration

__all__ = ["CampaignEstimate", "estimate_campaign", "AICCA_ARCHIVE_BYTES"]

#: The paper's stated AICCA input volume.
AICCA_ARCHIVE_BYTES = 850_000_000_000_000

#: Mean granule size across the three products (32+8.4+18 GB over 3*288).
MEAN_GRANULE_BYTES = (32e9 + 8.4e9 + 18e9) / (3 * 288)


@dataclass(frozen=True)
class CampaignEstimate:
    """Steady-state estimate of one retrieval campaign."""

    total_bytes: int
    workers: int
    aggregate_rate: float       # bytes/s, overhead included
    seconds: float
    bottleneck: str             # "per-connection" | "wan"

    def __str__(self) -> str:
        return (
            f"{format_bytes(self.total_bytes)} with {self.workers} workers: "
            f"{format_duration(self.seconds)} at {self.aggregate_rate / 1e6:.1f} MB/s "
            f"({self.bottleneck}-bound)"
        )


def estimate_campaign(
    total_bytes: int = AICCA_ARCHIVE_BYTES,
    workers: int = 6,
    per_connection_bw: float = 8e6,
    wan_bandwidth: float = 25e6,
    request_overhead: float = 1.0,
    mean_granule_bytes: float = MEAN_GRANULE_BYTES,
) -> CampaignEstimate:
    """Steady-state campaign model.

    Per worker, each granule costs ``overhead + size / stream_rate`` where
    the stream rate is the per-connection ceiling until enough workers
    saturate the WAN share, after which the share divides evenly.
    """
    if total_bytes <= 0 or workers < 1:
        raise ValueError("need positive bytes and at least one worker")
    uncapped = min(per_connection_bw, wan_bandwidth / workers)
    bottleneck = "per-connection" if per_connection_bw <= wan_bandwidth / workers else "wan"
    per_granule_seconds = request_overhead + mean_granule_bytes / uncapped
    per_worker_rate = mean_granule_bytes / per_granule_seconds
    aggregate = per_worker_rate * workers
    return CampaignEstimate(
        total_bytes=int(total_bytes),
        workers=workers,
        aggregate_rate=aggregate,
        seconds=total_bytes / aggregate,
        bottleneck=bottleneck,
    )


def sweep_workers(
    worker_counts: Sequence[int] = (1, 2, 3, 6, 12, 24),
    **kwargs,
) -> list:
    """Campaign estimates across worker counts (shows the WAN knee)."""
    return [estimate_campaign(workers=count, **kwargs) for count in worker_counts]
