"""Fig. 6 driver: the automation timeline (active workers per stage).

Produces the step series the figure plots — blue download workers (3),
orange preprocess workers (32), green inference worker (1) — plus the
properties the paper calls out: elastic ramp-down, and inference starting
before preprocessing completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.simflow import SimulatedEOMLWorkflow, SimWorkflowParams

__all__ = ["TimelineResult", "automation_timeline"]

STAGES = ("download", "preprocess", "inference")


@dataclass(frozen=True)
class TimelineResult:
    """Sampled worker-count series per stage, on a common time grid."""

    times: np.ndarray
    series: Dict[str, np.ndarray]
    makespan: float
    overlap_s: float              # inference/preprocess concurrency
    worker_seconds: Dict[str, float]

    def peak(self, stage: str) -> int:
        return int(self.series[stage].max())

    def render(self, width: int = 72) -> str:
        lines = [f"automation timeline, makespan {self.makespan:.1f}s"]
        for stage in STAGES:
            values = self.series[stage]
            peak = max(float(values.max()), 1.0)
            step = max(1, len(values) // width)
            row = "".join(
                " .:-=+*#%@"[min(9, int(9 * float(v) / peak))] for v in values[::step][:width]
            )
            lines.append(f"{stage:>12} |{row}| peak={int(values.max())}")
        return "\n".join(lines)


def automation_timeline(
    params: SimWorkflowParams | None = None,
    samples: int = 400,
) -> TimelineResult:
    result = SimulatedEOMLWorkflow(params or SimWorkflowParams()).run()
    times = np.linspace(0.0, result.makespan, samples)
    series: Dict[str, np.ndarray] = {}
    worker_seconds: Dict[str, float] = {}
    for stage in STAGES:
        step = result.tracer.series(f"workers:{stage}")
        series[stage] = np.array(step.sample(times.tolist()))
        worker_seconds[stage] = step.integral(0.0, result.makespan)
    pre_start, pre_end = result.stage_spans["preprocess"]
    inf_start, _inf_end = result.stage_spans["inference"]
    overlap = max(0.0, pre_end - inf_start)
    return TimelineResult(
        times=times,
        series=series,
        makespan=result.makespan,
        overlap_s=overlap,
        worker_seconds=worker_seconds,
    )
