"""Fig. 7 driver: the end-to-end latency breakdown.

Runs the simulated workflow and extracts the quantities Section IV-D
reports: the download launch latency (GC worker launch + LAADS connection
+ file listing), the preprocess latency (Parsl start + Slurm allocation +
tile creation), the flow action hop (~50 ms), and the inter-stage
communication gaps (the figure's solid arrows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.simflow import SimulatedEOMLWorkflow, SimWorkflowParams

__all__ = ["LatencyBreakdown", "latency_breakdown"]


@dataclass(frozen=True)
class LatencyBreakdown:
    """The Fig. 7 numbers from one simulated run."""

    download_launch_s: float
    download_s: float
    preprocess_s: float
    inference_s: float
    shipment_s: float
    flow_action_hop_s: float
    gaps: Dict[str, float]
    makespan_s: float

    def rows(self):
        """(name, seconds) rows in the figure's chain order."""
        return [
            ("download_launch", self.download_launch_s),
            ("download", self.download_s),
            ("preprocess", self.preprocess_s),
            ("inference", self.inference_s),
            ("shipment", self.shipment_s),
            ("flow_action_hop", self.flow_action_hop_s),
        ]


def latency_breakdown(params: SimWorkflowParams | None = None) -> LatencyBreakdown:
    result = SimulatedEOMLWorkflow(params or SimWorkflowParams()).run()
    spans = result.stage_spans

    def span_seconds(name: str) -> float:
        start, end = spans[name]
        return end - start

    return LatencyBreakdown(
        download_launch_s=span_seconds("download_launch"),
        download_s=span_seconds("download"),
        preprocess_s=span_seconds("preprocess"),
        inference_s=span_seconds("inference"),
        shipment_s=span_seconds("shipment"),
        flow_action_hop_s=result.flow_hop_latency,
        gaps=dict(result.stage_gaps),
        makespan_s=result.makespan,
    )
