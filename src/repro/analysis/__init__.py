"""Experiment drivers regenerating every figure and table of the paper."""

from repro.analysis.ablations import (
    RiAblationResult,
    contention_ablation,
    elastic_ablation,
    overlap_ablation,
    ri_loss_ablation,
)
from repro.analysis.campaign_estimate import (
    AICCA_ARCHIVE_BYTES,
    CampaignEstimate,
    estimate_campaign,
    sweep_workers,
)
from repro.analysis.climatology import (
    ClassFrequencySeries,
    TrendResult,
    class_frequency_series,
    detect_changing_classes,
    linear_trend,
    mann_kendall,
)
from repro.analysis.download_sweep import (
    PRODUCT_TRIO,
    SIZE_SWEEP_BYTES,
    DownloadPoint,
    download_sweep,
)
from repro.analysis.latency import LatencyBreakdown, latency_breakdown
from repro.analysis.paper import (
    FIG3_WORKER_GAIN_MB_S,
    FIG7_LATENCIES,
    HEADLINE,
    TABLE1_STRONG_NODES,
    TABLE1_STRONG_WORKERS,
    TABLE1_WEAK_NODES,
    TABLE1_WEAK_WORKERS,
)
from repro.analysis.report import render_comparison, render_table, shape_error
from repro.analysis.sensitivity import SensitivityPoint, sigma_sensitivity
from repro.analysis.scaling import (
    NODE_SWEEP,
    WORKER_SWEEP,
    ScalingCurve,
    ScalingPoint,
    headline_run,
    run_preprocess_trial,
    strong_scaling_nodes,
    strong_scaling_workers,
    weak_scaling_nodes,
    weak_scaling_workers,
)
from repro.analysis.timeline import TimelineResult, automation_timeline

__all__ = [
    "download_sweep",
    "DownloadPoint",
    "SIZE_SWEEP_BYTES",
    "PRODUCT_TRIO",
    "strong_scaling_workers",
    "strong_scaling_nodes",
    "weak_scaling_workers",
    "weak_scaling_nodes",
    "headline_run",
    "run_preprocess_trial",
    "ScalingCurve",
    "ScalingPoint",
    "WORKER_SWEEP",
    "NODE_SWEEP",
    "latency_breakdown",
    "LatencyBreakdown",
    "automation_timeline",
    "TimelineResult",
    "render_table",
    "render_comparison",
    "shape_error",
    "contention_ablation",
    "elastic_ablation",
    "overlap_ablation",
    "ri_loss_ablation",
    "RiAblationResult",
    "sigma_sensitivity",
    "SensitivityPoint",
    "class_frequency_series",
    "ClassFrequencySeries",
    "mann_kendall",
    "linear_trend",
    "detect_changing_classes",
    "TrendResult",
    "estimate_campaign",
    "sweep_workers",
    "CampaignEstimate",
    "AICCA_ARCHIVE_BYTES",
    "TABLE1_STRONG_WORKERS",
    "TABLE1_STRONG_NODES",
    "TABLE1_WEAK_WORKERS",
    "TABLE1_WEAK_NODES",
    "HEADLINE",
    "FIG7_LATENCIES",
    "FIG3_WORKER_GAIN_MB_S",
]
