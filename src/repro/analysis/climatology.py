"""Climatology over AICCA labels: the decadal-monitoring downstream.

The paper's science motivation is "classifying different cloud types over
the oceans and monitoring their changes over decades" (Section V) with
class statistics feeding "daily to decadal climate analysis" (Section
II-B).  This module is that consumer: build per-class frequency series
from labelled tile files, then test for monotonic change with the
standard tools of the trade — least-squares slope and the nonparametric
Mann-Kendall test (implemented here with the normal approximation and
tie correction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.netcdf import read as nc_read

__all__ = [
    "ClassFrequencySeries",
    "class_frequency_series",
    "TrendResult",
    "mann_kendall",
    "linear_trend",
    "detect_changing_classes",
]


@dataclass(frozen=True)
class ClassFrequencySeries:
    """Per-period class fractions: shape (periods, classes)."""

    periods: Tuple[str, ...]
    classes: Tuple[int, ...]
    fractions: np.ndarray           # rows sum to 1 where a period has tiles
    counts: np.ndarray              # raw tile counts

    def series_for(self, label: int) -> np.ndarray:
        if label not in self.classes:
            raise KeyError(f"class {label} not present; have {self.classes}")
        return self.fractions[:, self.classes.index(label)]


def class_frequency_series(
    files_by_period: Dict[str, Sequence[str]],
    num_classes: Optional[int] = None,
) -> ClassFrequencySeries:
    """Aggregate labelled tile files into a class-frequency time series.

    ``files_by_period`` maps period keys (e.g. ISO dates, months, years)
    to labelled tile-file paths; periods are sorted by key.
    """
    if not files_by_period:
        raise ValueError("no periods given")
    periods = tuple(sorted(files_by_period))
    counts_per_period: List[Dict[int, int]] = []
    seen_classes = set()
    for period in periods:
        counter: Dict[int, int] = {}
        for path in files_by_period[period]:
            labels = nc_read(path)["label"].data
            valid = labels[labels >= 0]
            for label, count in zip(*np.unique(valid, return_counts=True)):
                counter[int(label)] = counter.get(int(label), 0) + int(count)
        counts_per_period.append(counter)
        seen_classes.update(counter)
    if num_classes is not None:
        classes = tuple(range(num_classes))
    else:
        classes = tuple(sorted(seen_classes))
    if not classes:
        raise ValueError("no labelled tiles found in any period")
    counts = np.zeros((len(periods), len(classes)), dtype=np.int64)
    for row, counter in enumerate(counts_per_period):
        for col, label in enumerate(classes):
            counts[row, col] = counter.get(label, 0)
    totals = counts.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        fractions = np.where(totals > 0, counts / totals, 0.0)
    return ClassFrequencySeries(
        periods=periods, classes=classes, fractions=fractions, counts=counts
    )


@dataclass(frozen=True)
class TrendResult:
    """Outcome of one trend test."""

    statistic: float      # MK: the Z score; OLS: slope / stderr (t-like)
    p_value: float        # two-sided
    slope: float          # per-period change (Theil-Sen for MK)
    direction: str        # "increasing" | "decreasing" | "no trend"

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha and self.direction != "no trend"


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal via erfc."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def mann_kendall(values: Sequence[float]) -> TrendResult:
    """The Mann-Kendall monotonic trend test with tie correction.

    S = sum_{i<j} sign(x_j - x_i); under H0, S ~ N(0, var) with
    var = [n(n-1)(2n+5) - sum_t t(t-1)(2t+5)] / 18 over tie groups.
    The slope estimate is Theil-Sen (median of pairwise slopes).
    """
    x = np.asarray(values, dtype=np.float64)
    n = x.size
    if n < 3:
        raise ValueError("Mann-Kendall needs at least 3 points")
    diff_sign = np.sign(x[None, :] - x[:, None])
    s = float(np.triu(diff_sign, k=1).sum())
    _, tie_counts = np.unique(x, return_counts=True)
    tie_term = float((tie_counts * (tie_counts - 1) * (2 * tie_counts + 5)).sum())
    var_s = (n * (n - 1) * (2 * n + 5) - tie_term) / 18.0
    if var_s <= 0:
        z = 0.0
    elif s > 0:
        z = (s - 1.0) / math.sqrt(var_s)
    elif s < 0:
        z = (s + 1.0) / math.sqrt(var_s)
    else:
        z = 0.0
    p = 2.0 * _normal_sf(abs(z))
    rows, cols = np.triu_indices(n, k=1)
    gaps = (cols - rows).astype(np.float64)
    slopes = (x[cols] - x[rows]) / gaps
    slope = float(np.median(slopes))
    if p < 1.0 and z > 0:
        direction = "increasing"
    elif p < 1.0 and z < 0:
        direction = "decreasing"
    else:
        direction = "no trend"
    if z == 0.0:
        direction = "no trend"
    return TrendResult(statistic=z, p_value=p, slope=slope, direction=direction)


def linear_trend(values: Sequence[float]) -> TrendResult:
    """OLS slope with a t-like statistic (normal approximation for p)."""
    y = np.asarray(values, dtype=np.float64)
    n = y.size
    if n < 3:
        raise ValueError("trend needs at least 3 points")
    t = np.arange(n, dtype=np.float64)
    t_centered = t - t.mean()
    denom = float((t_centered**2).sum())
    slope = float((t_centered * (y - y.mean())).sum() / denom)
    residuals = y - (y.mean() + slope * t_centered)
    dof = n - 2
    sigma2 = float((residuals**2).sum() / dof) if dof > 0 else 0.0
    stderr = math.sqrt(sigma2 / denom) if denom > 0 else float("inf")
    if stderr == 0.0:
        # A perfect fit: zero slope is exactly "no trend", any other slope
        # is unambiguous.
        statistic = 0.0 if slope == 0.0 else math.copysign(math.inf, slope)
        p = 1.0 if slope == 0.0 else 0.0
    else:
        statistic = slope / stderr
        p = 2.0 * _normal_sf(abs(statistic))
    direction = "increasing" if slope > 0 else "decreasing" if slope < 0 else "no trend"
    if statistic == 0.0:
        direction = "no trend"
    return TrendResult(statistic=statistic, p_value=p, slope=slope, direction=direction)


def detect_changing_classes(
    series: ClassFrequencySeries,
    alpha: float = 0.05,
    method: str = "mann-kendall",
) -> List[Tuple[int, TrendResult]]:
    """Classes whose frequency shows a significant monotonic trend."""
    if method not in ("mann-kendall", "ols"):
        raise ValueError("method must be 'mann-kendall' or 'ols'")
    test = mann_kendall if method == "mann-kendall" else linear_trend
    out = []
    for label in series.classes:
        result = test(series.series_for(label))
        if result.significant(alpha):
            out.append((label, result))
    out.sort(key=lambda pair: pair[1].p_value)
    return out
