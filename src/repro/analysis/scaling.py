"""Scaling experiment drivers (Figs. 4-5, Table I, and the headline).

Each driver reproduces one of Section IV-B/C's experiments on the
simulated Defiant facility:

* **strong scaling over workers** — 128 MOD02 files fixed, workers
  doubling 1..128 (64 -> 128 "requires the use of a second node");
* **strong scaling over nodes** — 80 files fixed, 8 workers/node,
  nodes 1..10;
* **weak scaling** — 2 files per worker, same sweeps;
* **headline** — 12,000 tiles on 80 workers across 10 nodes.

Every data point is iterated (default five times, as in the paper) with
distinct noise seeds; results carry mean/stdev completion time and tile
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.hpc import build_defiant
from repro.pexec import SimHtexExecutor, SimTaskSpec
from repro.sim import Simulation
from repro.util.stats import summarize

__all__ = [
    "ScalingPoint",
    "ScalingCurve",
    "run_preprocess_trial",
    "strong_scaling_workers",
    "strong_scaling_nodes",
    "weak_scaling_workers",
    "weak_scaling_nodes",
    "headline_run",
    "WORKER_SWEEP",
    "NODE_SWEEP",
]

WORKER_SWEEP = (1, 2, 4, 8, 16, 32, 64, 128)
NODE_SWEEP = tuple(range(1, 11))

MAX_WORKERS_PER_NODE = 64       # one worker per EPYC core
TILES_PER_FILE = 150            # a full 2030x1354 swath in 128^2 tiles
BASE_TILE_RATE = 10.52          # Table I's single-worker rate, tiles/s


@dataclass(frozen=True)
class ScalingPoint:
    """One (concurrency, repeats) measurement."""

    concurrency: int            # workers or nodes, depending on the sweep
    num_files: int
    mean_seconds: float
    std_seconds: float
    mean_tiles_per_s: float

    @property
    def tiles(self) -> int:
        return self.num_files * TILES_PER_FILE


@dataclass(frozen=True)
class ScalingCurve:
    """A full sweep with its axis meaning."""

    axis: str                   # "workers" | "nodes"
    mode: str                   # "strong" | "weak"
    points: List[ScalingPoint]

    def throughput_map(self) -> dict:
        return {p.concurrency: p.mean_tiles_per_s for p in self.points}

    def completion_map(self) -> dict:
        return {p.concurrency: p.mean_seconds for p in self.points}


def _layout(workers: int, nodes: Optional[int]) -> tuple:
    """(num_nodes, workers_per_node) for a requested worker count."""
    if nodes is not None:
        return nodes, workers
    num_nodes = (workers + MAX_WORKERS_PER_NODE - 1) // MAX_WORKERS_PER_NODE
    per_node = (workers + num_nodes - 1) // num_nodes
    return num_nodes, per_node


def run_preprocess_trial(
    num_files: int,
    workers_per_node: int,
    num_nodes: int,
    seed: int,
    noise_sigma: float = 0.06,
    tiles_per_file: int = TILES_PER_FILE,
    base_tile_rate: float = BASE_TILE_RATE,
) -> float:
    """One preprocessing run; returns tile-creation completion seconds.

    Completion time is measured like the paper's: first task start to
    last task finish (excluding queue wait and scheduler latency, which
    Fig. 7 accounts separately).
    """
    sim = Simulation()
    facility = build_defiant(sim, allocation_latency=0.0)
    executor = SimHtexExecutor(
        sim,
        facility,
        workers_per_node=workers_per_node,
        seed=seed,
        noise_sigma=noise_sigma,
    )
    executor.submit_all(
        [
            SimTaskSpec(
                label=f"file{i}",
                base_duration=tiles_per_file / base_tile_rate,
                tiles=tiles_per_file,
            )
            for i in range(num_files)
        ]
    )
    executor.scale_out(num_nodes=num_nodes, workers_per_node=workers_per_node)
    sim.run()
    return executor.completion_time()


def _sweep(
    axis: str,
    mode: str,
    settings: Sequence[tuple],
    repeats: int,
    seed: int,
    noise_sigma: float,
) -> ScalingCurve:
    points = []
    for concurrency, num_files, workers_per_node, num_nodes in settings:
        times = [
            run_preprocess_trial(
                num_files,
                workers_per_node,
                num_nodes,
                seed=seed + 1000 * concurrency + rep,
                noise_sigma=noise_sigma,
            )
            for rep in range(repeats)
        ]
        summary = summarize(times)
        points.append(
            ScalingPoint(
                concurrency=concurrency,
                num_files=num_files,
                mean_seconds=summary.mean,
                std_seconds=summary.stdev,
                mean_tiles_per_s=num_files * TILES_PER_FILE / summary.mean,
            )
        )
    return ScalingCurve(axis=axis, mode=mode, points=points)


def strong_scaling_workers(
    num_files: int = 128,
    workers: Sequence[int] = WORKER_SWEEP,
    repeats: int = 5,
    seed: int = 0,
    noise_sigma: float = 0.06,
) -> ScalingCurve:
    """Fig. 4a / Table I left: fixed 128 files, workers 1..128."""
    settings = []
    for count in workers:
        nodes, per_node = _layout(count, None)
        settings.append((count, num_files, per_node, nodes))
    return _sweep("workers", "strong", settings, repeats, seed, noise_sigma)


def strong_scaling_nodes(
    num_files: int = 80,
    nodes: Sequence[int] = NODE_SWEEP,
    workers_per_node: int = 8,
    repeats: int = 5,
    seed: int = 0,
    noise_sigma: float = 0.06,
) -> ScalingCurve:
    """Fig. 4b / Table I right: fixed 80 files, 8 workers/node, 1..10 nodes."""
    settings = [(n, num_files, workers_per_node, n) for n in nodes]
    return _sweep("nodes", "strong", settings, repeats, seed, noise_sigma)


def weak_scaling_workers(
    files_per_worker: int = 2,
    workers: Sequence[int] = WORKER_SWEEP,
    repeats: int = 5,
    seed: int = 100,
    noise_sigma: float = 0.06,
) -> ScalingCurve:
    """Fig. 5a / Table I: 2 files per worker, workers 1..128."""
    settings = []
    for count in workers:
        nodes, per_node = _layout(count, None)
        settings.append((count, files_per_worker * count, per_node, nodes))
    return _sweep("workers", "weak", settings, repeats, seed, noise_sigma)


def weak_scaling_nodes(
    files_per_worker: int = 2,
    nodes: Sequence[int] = NODE_SWEEP,
    workers_per_node: int = 8,
    repeats: int = 5,
    seed: int = 100,
    noise_sigma: float = 0.06,
) -> ScalingCurve:
    """Fig. 5b / Table I: 2 files/worker, 8 workers/node, 1..10 nodes."""
    settings = [
        (n, files_per_worker * workers_per_node * n, workers_per_node, n) for n in nodes
    ]
    return _sweep("nodes", "weak", settings, repeats, seed, noise_sigma)


def headline_run(seed: int = 0, repeats: int = 5) -> ScalingPoint:
    """The abstract's claim: 12,000 tiles, 80 workers on 10 nodes.

    80 files x 150 tiles = 12,000 tiles; the paper reports 44 s.
    """
    num_files = 80
    times = [
        run_preprocess_trial(num_files, workers_per_node=8, num_nodes=10, seed=seed + rep)
        for rep in range(repeats)
    ]
    summary = summarize(times)
    return ScalingPoint(
        concurrency=80,
        num_files=num_files,
        mean_seconds=summary.mean,
        std_seconds=summary.stdev,
        mean_tiles_per_s=num_files * TILES_PER_FILE / summary.mean,
    )
