"""The paper's published numbers (ground truth for shape comparisons).

Table I verbatim, the headline claim, and the Fig. 7 latency figures.
Benchmarks regenerate our measurements and compare *shape* (ratios,
plateaus, crossovers) against these — not absolute seconds, which belong
to the authors' testbed.
"""

from __future__ import annotations

__all__ = [
    "TABLE1_STRONG_WORKERS",
    "TABLE1_STRONG_NODES",
    "TABLE1_WEAK_WORKERS",
    "TABLE1_WEAK_NODES",
    "HEADLINE",
    "FIG7_LATENCIES",
    "FIG3_WORKER_GAIN_MB_S",
]

# Table I: "# workers" -> tiles/s and "# nodes" -> tiles/s (strong scaling).
TABLE1_STRONG_WORKERS = {
    1: 10.52, 2: 18.10, 4: 25.01, 8: 36.59,
    16: 38.74, 32: 37.95, 64: 37.34, 128: 71.01,
}
TABLE1_STRONG_NODES = {
    1: 36.05, 2: 73.25, 3: 98.73, 4: 135.42, 5: 177.69,
    6: 192.32, 7: 196.70, 8: 216.80, 9: 264.13, 10: 267.44,
}

# Table I, weak scaling.
TABLE1_WEAK_WORKERS = {
    1: 21.32, 2: 25.87, 4: 27.23, 8: 27.48,
    16: 32.73, 32: 31.09, 64: 35.36, 128: 67.69,
}
TABLE1_WEAK_NODES = {
    1: 32.82, 2: 69.34, 3: 100.36, 4: 126.62, 5: 165.12,
    6: 175.61, 7: 196.81, 8: 188.88, 9: 197.26, 10: 271.68,
}

# Abstract: "12,000 high-resolution satellite images in just 44 seconds
# using 80 workers distributed across 10 nodes".
HEADLINE = {"tiles": 12_000, "seconds": 44.0, "workers": 80, "nodes": 10}

# Fig. 7 narrative numbers (Section IV-D).
FIG7_LATENCIES = {
    "download_launch": 5.63,   # GC worker launch + LAADS connect + listing
    "preprocess": 32.80,       # Parsl start + Slurm allocation + tiling
    "flow_action_hop": 0.050,  # "approximately 50 milliseconds"
}

# Fig. 3 narrative: "Increasing the number of download workers boosts the
# average download speeds by an average of 3 MB/sec, except when
# downloading a single file for overheads."
FIG3_WORKER_GAIN_MB_S = 3.0
