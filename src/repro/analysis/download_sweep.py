"""The Fig. 3 download experiment: speed vs product size, 3 vs 6 workers.

"We assess performance by average download speed per second across
various file sizes starting from 100MB (i.e., one file per product) to
30GB (i.e., about 128 files per product) ... three iterations for cases
deploying 3 and 6 workers."  Batches of the three MODIS products are
pulled from the LAADS HTTPS model by a Globus-Compute-style worker pool;
speed is total bytes over elapsed wall time (per batch).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import List, Sequence

from repro.compute import SimComputeEndpoint
from repro.modis import LaadsArchive
from repro.net import HttpServer
from repro.sim import Simulation
from repro.util.stats import summarize

__all__ = ["DownloadPoint", "download_sweep", "SIZE_SWEEP_BYTES", "PRODUCT_TRIO"]

PRODUCT_TRIO = ("MOD02", "MOD03", "MOD06")

# Batch sizes per product: 100 MB (a single file) up to 30 GB.
SIZE_SWEEP_BYTES = (
    100_000_000,
    500_000_000,
    1_000_000_000,
    5_000_000_000,
    10_000_000_000,
    30_000_000_000,
)


@dataclass(frozen=True)
class DownloadPoint:
    """One (batch size, workers) cell of Fig. 3."""

    batch_bytes: int
    workers: int
    mean_speed_mb_s: float
    std_speed_mb_s: float
    files: int


def _one_run(
    target_bytes: int,
    workers: int,
    seed: int,
    wan_bandwidth: float,
    per_connection_bw: float,
    request_overhead: float,
) -> tuple:
    """Returns (speed MB/s, number of files) for one iteration."""
    archive = LaadsArchive(seed=seed)
    sim = Simulation()
    server = HttpServer(
        sim,
        wan_bandwidth=wan_bandwidth,
        per_connection_bw=per_connection_bw,
        request_overhead=request_overhead,
    )
    endpoint = SimComputeEndpoint(
        sim, "download", max_workers=workers, startup_latency=0.0, task_overhead=0.02
    )
    day = dt.date(2022, 1, 1) + dt.timedelta(days=seed % 300)
    if target_bytes <= 150_000_000:
        # The smallest Fig. 3 point is "one file per product".
        refs = [archive.query(p, day, max_per_day=1)[0] for p in PRODUCT_TRIO]
    else:
        refs = archive.query_batch_by_bytes(list(PRODUCT_TRIO), day, target_bytes)

    def task(ctx, ref):
        result = yield server.request(ref.nbytes, label=ref.filename)
        return result

    futures = [endpoint.submit(task, ref) for ref in refs]
    sim.run()
    total_bytes = sum(ref.nbytes for ref in refs)
    elapsed = max(f.value.finished_at for f in futures)
    return total_bytes / elapsed / 1e6, len(refs)


def download_sweep(
    sizes: Sequence[int] = SIZE_SWEEP_BYTES,
    worker_counts: Sequence[int] = (3, 6),
    iterations: int = 3,
    seed: int = 0,
    wan_bandwidth: float = 25e6,
    per_connection_bw: float = 8e6,
    request_overhead: float = 1.0,
) -> List[DownloadPoint]:
    """The full Fig. 3 grid.

    The default network parameters are calibrated so the worker gain
    reproduces the paper's observation: "+3 MB/sec on average, except
    when downloading a single file" (one HTTPS stream ~8 MB/s, effective
    WAN share ~25 MB/s, ~1 s request setup).
    """
    points = []
    for target in sizes:
        for workers in worker_counts:
            speeds = []
            files = 0
            for iteration in range(iterations):
                speed, files = _one_run(
                    target,
                    workers,
                    seed=seed + 37 * iteration + 1,
                    wan_bandwidth=wan_bandwidth,
                    per_connection_bw=per_connection_bw,
                    request_overhead=request_overhead,
                )
                speeds.append(speed)
            summary = summarize(speeds)
            points.append(
                DownloadPoint(
                    batch_bytes=target,
                    workers=workers,
                    mean_speed_mb_s=summary.mean,
                    std_speed_mb_s=summary.stdev,
                    files=files,
                )
            )
    return points
