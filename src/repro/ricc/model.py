"""Registry entry wrapping RICC/AICCA as a pluggable label model.

``bootstrap`` replicates the workflow's historical bootstrap call
exactly (small latent space, one hidden layer, eight epochs) so the
single-branch golden corpus is bit-for-bit unchanged by the registry
indirection.  The trained instance is a plain :class:`AICCAModel` —
no wrapper — so pickling over worker-pool envelopes and ``.npz``
round-trips behave exactly as before.
"""

from __future__ import annotations

import numpy as np

from repro.instruments.registry import register_model
from repro.ricc.aicca import AICCAModel

__all__ = ["RiccModelType"]


class RiccModelType:
    """The AICCA autoencoder + agglomerative-clustering classifier."""

    name = "ricc"
    attribution = "RICC/AICCA"

    @staticmethod
    def bootstrap(tiles: np.ndarray, num_classes: int, seed: int = 0) -> AICCAModel:
        model, _history = AICCAModel.train(
            tiles,
            num_classes=num_classes,
            latent_dim=8,
            hidden=(64,),
            epochs=8,
            seed=seed,
        )
        return model

    load = staticmethod(AICCAModel.load)


register_model(RiccModelType)
