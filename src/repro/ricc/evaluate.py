"""Cluster quality evaluation (RICC stage 3: "Cluster evaluation").

The AICCA protocol evaluates resulting clusters before accepting them; we
implement the standard metrics used there and in tests:

* :func:`silhouette_score` — intra- vs inter-cluster separation;
* :func:`adjusted_rand_index` — agreement with ground truth (here the
  synthetic generating regimes) or between two clusterings;
* :func:`cluster_stability` — mean pairwise ARI over bootstrap refits,
  the "are these clusters real" check;
* :func:`quality_report` — the combined gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = [
    "silhouette_score",
    "adjusted_rand_index",
    "cluster_stability",
    "QualityReport",
    "quality_report",
]


def silhouette_score(x: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette over all samples; in [-1, 1], higher is better.

    Clusters of size one contribute silhouette 0 (the standard convention).
    """
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels)
    if x.ndim != 2 or labels.shape != (x.shape[0],):
        raise ValueError("expected (N, D) data and (N,) labels")
    unique = np.unique(labels)
    if unique.size < 2:
        raise ValueError("silhouette requires at least two clusters")
    diff = x[:, None, :] - x[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    n = x.shape[0]
    scores = np.zeros(n)
    for index in range(n):
        own = labels == labels[index]
        own_size = own.sum()
        if own_size <= 1:
            continue  # singleton: silhouette 0
        a = dist[index, own].sum() / (own_size - 1)
        b = np.inf
        for label in unique:
            if label == labels[index]:
                continue
            other = labels == label
            b = min(b, dist[index, other].mean())
        scores[index] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Adjusted Rand index between two labelings; 1 = identical partitions."""
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    if labels_a.shape != labels_b.shape or labels_a.ndim != 1:
        raise ValueError("labelings must be 1-D and the same length")
    n = labels_a.size
    if n == 0:
        raise ValueError("empty labelings")
    _, a_inv = np.unique(labels_a, return_inverse=True)
    _, b_inv = np.unique(labels_b, return_inverse=True)
    contingency = np.zeros((a_inv.max() + 1, b_inv.max() + 1), dtype=np.int64)
    np.add.at(contingency, (a_inv, b_inv), 1)

    def comb2(values: np.ndarray) -> float:
        return float((values * (values - 1) / 2).sum())

    sum_ij = comb2(contingency)
    sum_a = comb2(contingency.sum(axis=1))
    sum_b = comb2(contingency.sum(axis=0))
    total = n * (n - 1) / 2
    expected = sum_a * sum_b / total if total > 0 else 0.0
    max_index = 0.5 * (sum_a + sum_b)
    if max_index == expected:
        return 1.0  # both partitions trivial (all-singletons or one cluster)
    return float((sum_ij - expected) / (max_index - expected))


def cluster_stability(
    x: np.ndarray,
    fit_predict: Callable[[np.ndarray], np.ndarray],
    n_boot: int = 5,
    subsample: float = 0.8,
    seed: int = 0,
) -> float:
    """Mean pairwise ARI of bootstrap refits, evaluated on shared points.

    ``fit_predict(x_subset) -> labels`` is called per bootstrap; pairs of
    bootstraps are compared on the intersection of their subsamples.
    Values near 1 mean the clustering is stable under resampling.
    """
    if not 0.1 <= subsample <= 1.0:
        raise ValueError("subsample fraction must be in [0.1, 1.0]")
    if n_boot < 2:
        raise ValueError("need at least two bootstraps")
    rng = np.random.default_rng(seed)
    n = x.shape[0]
    size = max(2, int(round(subsample * n)))
    runs = []
    for _ in range(n_boot):
        chosen = np.sort(rng.choice(n, size=size, replace=False))
        labels = np.asarray(fit_predict(x[chosen]))
        runs.append((chosen, labels))
    scores = []
    for first in range(n_boot):
        for second in range(first + 1, n_boot):
            idx_a, lab_a = runs[first]
            idx_b, lab_b = runs[second]
            common, pos_a, pos_b = np.intersect1d(idx_a, idx_b, return_indices=True)
            if common.size < 2:
                continue
            scores.append(adjusted_rand_index(lab_a[pos_a], lab_b[pos_b]))
    if not scores:
        raise ValueError("bootstraps share too few points; raise subsample")
    return float(np.mean(scores))


@dataclass(frozen=True)
class QualityReport:
    """The cluster-evaluation gate's combined result."""

    silhouette: float
    stability: float
    n_clusters: int
    ari_vs_truth: Optional[float] = None

    def acceptable(self, min_silhouette: float = 0.0, min_stability: float = 0.5) -> bool:
        return self.silhouette >= min_silhouette and self.stability >= min_stability


def quality_report(
    x: np.ndarray,
    labels: np.ndarray,
    fit_predict: Callable[[np.ndarray], np.ndarray],
    truth: Optional[np.ndarray] = None,
    n_boot: int = 4,
    seed: int = 0,
) -> QualityReport:
    """Run the full evaluation protocol on one clustering."""
    return QualityReport(
        silhouette=silhouette_score(x, labels),
        stability=cluster_stability(x, fit_predict, n_boot=n_boot, seed=seed),
        n_clusters=int(np.unique(labels).size),
        ari_vs_truth=None if truth is None else adjusted_rand_index(labels, truth),
    )
