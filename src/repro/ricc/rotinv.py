"""Rotation invariance machinery: dihedral transforms and the RI loss.

RICC's key idea (Kurihana et al., TGRS 2021): cloud class should not
depend on the orientation of the swath, so the autoencoder is trained to
be *rotationally invariant* — rotated copies of a tile must map to the
same representation and reconstruct equally well.  We implement the
dihedral group D4 (4 rotations x optional flip = 8 transforms) and the
two loss components used during training:

* **invariance loss** — variance of the latent codes across the 8
  transforms of each tile (zero iff the encoder is exactly invariant);
* **restoration loss** — the minimum over transforms of the
  reconstruction error against the transformed input, so the decoder may
  reconstruct *any* orientation rather than memorizing one.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["dihedral_transforms", "transform_batch", "NUM_TRANSFORMS", "invariance_gap"]

NUM_TRANSFORMS = 8


def dihedral_transforms(tile: np.ndarray) -> List[np.ndarray]:
    """The 8 dihedral (D4) transforms of a (H, W, C) tile.

    Order: rot0, rot90, rot180, rot270, then the same four of the
    horizontally flipped tile.
    """
    if tile.ndim != 3:
        raise ValueError(f"tile must be (H, W, C); got shape {tile.shape}")
    if tile.shape[0] != tile.shape[1]:
        raise ValueError("dihedral transforms require square tiles")
    out = []
    for flipped in (tile, tile[:, ::-1, :]):
        for k in range(4):
            out.append(np.ascontiguousarray(np.rot90(flipped, k=k, axes=(0, 1))))
    return out


def transform_batch(tiles: np.ndarray, transform_index: int) -> np.ndarray:
    """Apply one D4 transform to a batch of (N, H, W, C) tiles."""
    if not 0 <= transform_index < NUM_TRANSFORMS:
        raise ValueError(f"transform index must be in [0, {NUM_TRANSFORMS})")
    if tiles.ndim != 4 or tiles.shape[1] != tiles.shape[2]:
        raise ValueError(f"tiles must be (N, H, W, C) square; got {tiles.shape}")
    result = tiles
    if transform_index >= 4:
        result = result[:, :, ::-1, :]
    k = transform_index % 4
    if k:
        result = np.rot90(result, k=k, axes=(1, 2))
    return np.ascontiguousarray(result)


def invariance_gap(encode, tiles: np.ndarray) -> float:
    """Mean latent spread across transforms: the invariance metric.

    ``encode`` maps (N, D_in) flattened tiles to (N, D_z) latents.  For a
    perfectly rotation-invariant encoder this is zero.  Normalized by the
    overall latent scale so values are comparable across models.
    """
    n = tiles.shape[0]
    latents = []
    for index in range(NUM_TRANSFORMS):
        flat = transform_batch(tiles, index).reshape(n, -1)
        latents.append(encode(flat))
    stack = np.stack(latents)  # (8, N, D)
    spread = stack.std(axis=0).mean()
    scale = stack.std() + 1e-12
    return float(spread / scale)
