"""Agglomerative hierarchical clustering, from scratch.

RICC applies agglomerative clustering to latent representations to form
cluster centroids; AICCA cuts the hierarchy at 42 classes (Section II-B).
This is a direct Lance-Williams implementation supporting ward, average,
complete, and single linkage, recording the full merge history (a
dendrogram), final centroids, and nearest-centroid prediction for the
label-assignment stage.  scipy.cluster.hierarchy is used only in tests as
an independent cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["Merge", "AgglomerativeClustering"]

_LINKAGES = ("ward", "average", "complete", "single")


@dataclass(frozen=True)
class Merge:
    """One dendrogram merge: clusters ``a`` and ``b`` join at ``distance``."""

    a: int
    b: int
    distance: float
    size: int


class AgglomerativeClustering:
    """Bottom-up hierarchical clustering with Lance-Williams updates.

    >>> model = AgglomerativeClustering(n_clusters=42, linkage="ward")
    >>> labels = model.fit_predict(latents)
    >>> new_labels = model.predict(new_latents)   # nearest centroid
    """

    def __init__(self, n_clusters: int, linkage: str = "ward"):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if linkage not in _LINKAGES:
            raise ValueError(f"linkage must be one of {_LINKAGES}, got {linkage!r}")
        self.n_clusters = n_clusters
        self.linkage = linkage
        self.labels_: Optional[np.ndarray] = None
        self.centroids_: Optional[np.ndarray] = None
        self.merges_: List[Merge] = []

    # -- fitting ------------------------------------------------------------

    def fit(self, x: np.ndarray) -> "AgglomerativeClustering":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("expected (N, D) data")
        n = x.shape[0]
        if n < self.n_clusters:
            raise ValueError(f"cannot form {self.n_clusters} clusters from {n} points")

        # Pairwise distance matrix; ward works on squared Euclidean.
        diff = x[:, None, :] - x[None, :, :]
        dist = np.einsum("ijk,ijk->ij", diff, diff)
        if self.linkage != "ward":
            dist = np.sqrt(dist)
        np.fill_diagonal(dist, np.inf)

        active = np.ones(n, dtype=bool)
        sizes = np.ones(n, dtype=np.int64)
        # members[i]: original point indices currently in cluster slot i.
        members: List[Optional[List[int]]] = [[i] for i in range(n)]
        self.merges_ = []

        remaining = n
        while remaining > self.n_clusters:
            i, j = self._closest_pair(dist, active)
            d_ij = dist[i, j]
            merged_size = sizes[i] + sizes[j]
            self.merges_.append(
                Merge(
                    a=i,
                    b=j,
                    distance=float(np.sqrt(d_ij)) if self.linkage == "ward" else float(d_ij),
                    size=int(merged_size),
                )
            )
            self._lance_williams(dist, active, sizes, i, j)
            members[i] = members[i] + members[j]  # type: ignore[operator]
            members[j] = None
            sizes[i] = merged_size
            active[j] = False
            dist[j, :] = np.inf
            dist[:, j] = np.inf
            remaining -= 1

        labels = np.empty(n, dtype=np.int64)
        centroids = []
        cluster_slots = [slot for slot in range(n) if active[slot]]
        for label, slot in enumerate(cluster_slots):
            for point in members[slot]:  # type: ignore[union-attr]
                labels[point] = label
            centroids.append(x[members[slot]].mean(axis=0))  # type: ignore[index]
        self.labels_ = labels
        self.centroids_ = np.vstack(centroids)
        return self

    @staticmethod
    def _closest_pair(dist: np.ndarray, active: np.ndarray) -> Tuple[int, int]:
        flat = np.argmin(dist)
        i, j = np.unravel_index(flat, dist.shape)
        if i > j:
            i, j = j, i
        return int(i), int(j)

    def _lance_williams(
        self,
        dist: np.ndarray,
        active: np.ndarray,
        sizes: np.ndarray,
        i: int,
        j: int,
    ) -> None:
        """Update distances of every active k to the merged cluster (slot i)."""
        k_mask = active.copy()
        k_mask[i] = False
        k_mask[j] = False
        if not k_mask.any():
            return
        d_ki = dist[k_mask, i]
        d_kj = dist[k_mask, j]
        d_ij = dist[i, j]
        if self.linkage == "ward":
            n_i, n_j = sizes[i], sizes[j]
            n_k = sizes[k_mask]
            total = n_i + n_j + n_k
            updated = ((n_i + n_k) * d_ki + (n_j + n_k) * d_kj - n_k * d_ij) / total
        elif self.linkage == "average":
            n_i, n_j = sizes[i], sizes[j]
            updated = (n_i * d_ki + n_j * d_kj) / (n_i + n_j)
        elif self.linkage == "complete":
            updated = np.maximum(d_ki, d_kj)
        else:  # single
            updated = np.minimum(d_ki, d_kj)
        dist[k_mask, i] = updated
        dist[i, k_mask] = updated

    # -- prediction ------------------------------------------------------------

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).labels_  # type: ignore[return-value]

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Nearest-centroid assignment for new points (the AICCA
        label-assignment stage runs exactly this against frozen centroids)."""
        labels, _ = self.predict_with_margin(x)
        return labels

    def predict_with_margin(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Nearest-centroid labels plus each point's assignment margin.

        The margin is the Euclidean-distance gap between the second-
        nearest and the nearest centroid: near zero the point sits on a
        decision boundary and its label is fragile — the signal the
        progressive-fidelity ladder uses to decide which coarse tiles
        deserve a full-resolution second pass.  With a single centroid
        every margin is infinite (there is no boundary to be near).
        """
        if self.centroids_ is None:
            raise RuntimeError("predict before fit")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.centroids_.shape[1]:
            raise ValueError(
                f"expected (N, {self.centroids_.shape[1]}) data, got {x.shape}"
            )
        d = ((x[:, None, :] - self.centroids_[None, :, :]) ** 2).sum(axis=2)
        labels = np.argmin(d, axis=1)
        if d.shape[1] < 2:
            return labels, np.full(x.shape[0], np.inf)
        nearest_two = np.sqrt(np.partition(d, 1, axis=1)[:, :2])
        return labels, nearest_two[:, 1] - nearest_two[:, 0]
