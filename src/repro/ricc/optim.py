"""Optimizers for the NumPy network: SGD with momentum and Adam."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = ["SGD", "Adam"]

Params = List[Tuple[str, np.ndarray, np.ndarray]]


class SGD:
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self, params: Params) -> None:
        for name, value, grad in params:
            if self.momentum > 0:
                velocity = self._velocity.setdefault(name, np.zeros_like(value))
                velocity *= self.momentum
                velocity -= self.lr * grad
                value += velocity
            else:
                value -= self.lr * grad


class Adam:
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, params: Params) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for name, value, grad in params:
            m = self._m.setdefault(name, np.zeros_like(value))
            v = self._v.setdefault(name, np.zeros_like(value))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            value -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
