"""Foundation-model adaptation: fine-tuning and model merging.

Section V: "Foundation models, pretrained on a very large volume of data,
can be further adapted for a host of new tasks and applications via fine
tuning, requiring relatively less amount of data", and the ML pipeline
"will evolve to facilitate model merging, data efficient learning".
Both are implemented here for the RICC autoencoder:

* :func:`fine_tune` — continue training on a small adaptation set with
  the first encoder layers *frozen* (the transfer-learning recipe: keep
  generic low-level features, adapt the head);
* :func:`merge_models` — weighted parameter averaging of models sharing
  an architecture ("model soup" merging), the simplest robust merge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.ricc.autoencoder import RotationInvariantAutoencoder, TrainRecord

__all__ = ["fine_tune", "merge_models"]


def fine_tune(
    model: RotationInvariantAutoencoder,
    tiles: np.ndarray,
    freeze_encoder_layers: int = 1,
    epochs: int = 5,
    batch_size: int = 16,
    lr: float = 5e-4,
    seed: int = 0,
) -> List[TrainRecord]:
    """Adapt a pretrained model on a small dataset, freezing early layers.

    ``freeze_encoder_layers`` counts *Dense* layers from the input side
    whose weights stay fixed.  Freezing is implemented through the
    training loop's ``grad_hook`` extension point: frozen parameters'
    gradients are zeroed inside the optimizer step, so Adam moments never
    accumulate for them either.
    """
    if freeze_encoder_layers < 0:
        raise ValueError("freeze count must be non-negative")
    dense_indices = [
        index
        for index, layer in enumerate(model.encoder.layers)
        if hasattr(layer, "w")
    ]
    if freeze_encoder_layers > len(dense_indices):
        raise ValueError(
            f"cannot freeze {freeze_encoder_layers} dense layers; encoder has "
            f"{len(dense_indices)}"
        )
    frozen_prefixes = {
        f"enc.layer{index}." for index in dense_indices[:freeze_encoder_layers]
    }

    def freeze_hook(params) -> None:
        for name, _value, grad in params:
            if any(name.startswith(prefix) for prefix in frozen_prefixes):
                grad[:] = 0.0

    before = {
        name: value.copy()
        for name, value, _ in model._all_params()
        if any(name.startswith(prefix) for prefix in frozen_prefixes)
    }
    history = model.train(
        tiles, epochs=epochs, batch_size=batch_size, lr=lr, seed=seed,
        grad_hook=freeze_hook,
    )
    # Defensive: frozen weights must be bit-identical after training.
    for name, value, _ in model._all_params():
        if name in before and not np.array_equal(value, before[name]):
            raise AssertionError(f"frozen parameter {name!r} moved during fine-tune")
    return history


def merge_models(
    models: Sequence[RotationInvariantAutoencoder],
    weights: Optional[Sequence[float]] = None,
) -> RotationInvariantAutoencoder:
    """Weighted parameter average of architecture-identical models.

    Returns a *new* model; inputs are untouched.  Raises on architecture
    mismatch.  Plain averaging is meaningful for models fine-tuned from a
    common ancestor (linear mode connectivity), which is exactly the
    periodic-retraining lineage Section V describes.
    """
    if not models:
        raise ValueError("need at least one model to merge")
    if weights is None:
        weights = [1.0 / len(models)] * len(models)
    if len(weights) != len(models):
        raise ValueError("one weight per model required")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    weights = [w / total for w in weights]

    reference = models[0]
    states: List[Dict[str, np.ndarray]] = [m.state_dict() for m in models]
    for index, state in enumerate(states[1:], start=1):
        if set(state) != set(states[0]):
            raise ValueError(f"model {index} has a different parameter set")
        for key in state:
            if state[key].shape != states[0][key].shape:
                raise ValueError(
                    f"model {index} parameter {key!r} shaped {state[key].shape}, "
                    f"expected {states[0][key].shape}"
                )

    hidden = []
    layer_index = 0
    while f"enc.layer{layer_index}.w" in states[0]:
        hidden.append(states[0][f"enc.layer{layer_index}.w"].shape[1])
        layer_index += 2
    hidden = hidden[:-1]
    merged = RotationInvariantAutoencoder(
        reference.tile_shape,
        latent_dim=reference.latent_dim,
        hidden=tuple(hidden),
        lambda_inv=reference.lambda_inv,
        lambda_rec=reference.lambda_rec,
    )
    merged_state = {
        key: sum(weight * state[key] for weight, state in zip(weights, states))
        for key in states[0]
    }
    merged.load_state_dict(merged_state)
    return merged
