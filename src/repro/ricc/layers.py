"""Minimal neural-network layers with explicit backpropagation.

TensorFlow is unavailable offline, so the RICC autoencoder (Section II-B)
is implemented directly in NumPy.  The layer set is deliberately small —
dense affine layers plus elementwise activations — because the model that
matters here is the *rotationally invariant training objective*, not a
particular architecture; the original RICC's convolutional encoder is
approximated by an MLP over flattened tiles, which preserves the
latent-clustering behaviour at the tile sizes this reproduction uses.

All layers implement ``forward(x)`` and ``backward(grad)`` (returning the
gradient w.r.t. the input and accumulating parameter gradients), and
expose ``params()`` as a list of (name, value, grad) triples for the
optimizer.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["Dense", "Activation", "Sequential", "ACTIVATIONS"]


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return (x > 0).astype(x.dtype)


def _tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _tanh_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return 1.0 - y * y


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    expx = np.exp(x[~positive])
    out[~positive] = expx / (1.0 + expx)
    return out


def _sigmoid_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return y * (1.0 - y)


def _linear(x: np.ndarray) -> np.ndarray:
    return x


def _linear_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


ACTIVATIONS = {
    "relu": (_relu, _relu_grad),
    "tanh": (_tanh, _tanh_grad),
    "sigmoid": (_sigmoid, _sigmoid_grad),
    "linear": (_linear, _linear_grad),
}


class Dense:
    """Affine layer ``y = x W + b`` with He/Xavier-style init."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator, scale: Optional[float] = None):
        if in_dim < 1 or out_dim < 1:
            raise ValueError("layer dimensions must be positive")
        if scale is None:
            scale = np.sqrt(2.0 / in_dim)
        self.w = rng.normal(0.0, scale, size=(in_dim, out_dim)).astype(np.float64)
        self.b = np.zeros(out_dim, dtype=np.float64)
        self.grad_w = np.zeros_like(self.w)
        self.grad_b = np.zeros_like(self.b)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        if x.dtype == np.float32:
            # Dtype-preserving inference path: casting the (small) weight
            # matrix down keeps the (large) batch matmul in float32 —
            # half the memory traffic and twice the SIMD width — instead
            # of NumPy silently upcasting the whole batch to float64.
            # Training always feeds float64, so gradients are unaffected.
            return x @ self.w.astype(np.float32) + self.b.astype(np.float32)
        return x @ self.w + self.b

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward before forward")
        self.grad_w += self._x.T @ grad
        self.grad_b += grad.sum(axis=0)
        return grad @ self.w.T

    def params(self) -> List[Tuple[str, np.ndarray, np.ndarray]]:
        return [("w", self.w, self.grad_w), ("b", self.b, self.grad_b)]

    def zero_grad(self) -> None:
        self.grad_w[:] = 0.0
        self.grad_b[:] = 0.0


class Activation:
    """Elementwise activation layer."""

    def __init__(self, kind: str):
        if kind not in ACTIVATIONS:
            raise ValueError(f"unknown activation {kind!r}; known: {sorted(ACTIVATIONS)}")
        self.kind = kind
        self._fn, self._grad_fn = ACTIVATIONS[kind]
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        self._y = self._fn(x)
        return self._y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None or self._y is None:
            raise RuntimeError("backward before forward")
        return grad * self._grad_fn(self._x, self._y)

    def params(self) -> List[Tuple[str, np.ndarray, np.ndarray]]:
        return []

    def zero_grad(self) -> None:
        pass


class Sequential:
    """A stack of layers with forward/backward passes."""

    def __init__(self, layers: List):
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params(self) -> List[Tuple[str, np.ndarray, np.ndarray]]:
        out = []
        for index, layer in enumerate(self.layers):
            for name, value, grad in layer.params():
                out.append((f"layer{index}.{name}", value, grad))
        return out

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)
