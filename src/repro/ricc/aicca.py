"""AICCA: the AI-driven Cloud Classification Atlas.

Ties the RICC pieces together the way Section II-B describes: train the
rotationally invariant autoencoder on ocean-cloud tiles, cluster the
latent representations agglomeratively, freeze the centroids, and assign
one of ``num_classes`` (42 in the paper) labels to any new tile by
nearest centroid.  Class statistics associate labels with cloud physical
properties (mean optical thickness, cloud-top pressure, cloud fraction)
— the association AICCA derives from the MOD06 product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.modis.constants import AICCA_NUM_CLASSES
from repro.ricc.autoencoder import RotationInvariantAutoencoder, TrainRecord
from repro.ricc.cluster import AgglomerativeClustering
from repro.ricc.evaluate import QualityReport, quality_report

__all__ = ["ClassStatistics", "AICCAModel"]


@dataclass(frozen=True)
class ClassStatistics:
    """Physical-property summary of one cloud class."""

    label: int
    count: int
    mean_optical_thickness: float
    mean_cloud_top_pressure: float
    mean_cloud_fraction: float


class AICCAModel:
    """A trained atlas: encoder + frozen centroids + label assignment."""

    def __init__(
        self,
        autoencoder: RotationInvariantAutoencoder,
        clustering: AgglomerativeClustering,
    ):
        if clustering.centroids_ is None:
            raise ValueError("clustering must be fitted before building an AICCAModel")
        if clustering.centroids_.shape[1] != autoencoder.latent_dim:
            raise ValueError("centroid dimensionality does not match the encoder latent")
        self.autoencoder = autoencoder
        self.clustering = clustering

    @property
    def num_classes(self) -> int:
        return self.clustering.centroids_.shape[0]  # type: ignore[union-attr]

    # -- construction ------------------------------------------------------------

    @classmethod
    def train(
        cls,
        tiles: np.ndarray,
        num_classes: int = AICCA_NUM_CLASSES,
        latent_dim: int = 16,
        hidden: Sequence[int] = (256, 64),
        epochs: int = 20,
        batch_size: int = 32,
        lr: float = 1e-3,
        lambda_inv: float = 1.0,
        linkage: str = "ward",
        seed: int = 0,
        verbose: bool = False,
    ) -> Tuple["AICCAModel", List[TrainRecord]]:
        """Stage-2 of the original workflow: RICC training + clustering.

        Returns the model and the training history.
        """
        if tiles.ndim != 4:
            raise ValueError("training tiles must be (N, H, W, C)")
        autoencoder = RotationInvariantAutoencoder(
            tile_shape=tiles.shape[1:],
            latent_dim=latent_dim,
            hidden=hidden,
            lambda_inv=lambda_inv,
            seed=seed,
        )
        history = autoencoder.train(
            tiles, epochs=epochs, batch_size=batch_size, lr=lr, seed=seed, verbose=verbose
        )
        # Training numerics are pinned to float64 (the float32 encode
        # path is reserved for inference throughput): centroids must not
        # depend on the storage dtype of the training tiles.
        latents = autoencoder.encode(np.asarray(tiles, dtype=np.float64))
        clustering = AgglomerativeClustering(n_clusters=num_classes, linkage=linkage)
        clustering.fit(latents)
        return cls(autoencoder, clustering), history

    # -- inference ------------------------------------------------------------

    def assign(self, tiles: np.ndarray) -> np.ndarray:
        """Stage-4 label assignment: tiles -> AICCA class labels.

        Float32 tiles are encoded in float32 (the inference fast path);
        the nearest-centroid argmin itself always runs in float64.
        """
        return self.clustering.predict(self.autoencoder.encode(tiles))

    def assign_with_margin(self, tiles: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Labels plus per-tile assignment margins (centroid-gap).

        The margin quantifies how decisively a tile landed in its class;
        the progressive-fidelity pass refines only tiles whose margin
        falls below ``inference.refine_threshold``.
        """
        return self.clustering.predict_with_margin(self.autoencoder.encode(tiles))

    def evaluate(
        self,
        tiles: np.ndarray,
        truth: Optional[np.ndarray] = None,
        seed: int = 0,
    ) -> QualityReport:
        """Stage-3 cluster evaluation on held-out tiles."""
        latents = self.autoencoder.encode(tiles)
        labels = self.clustering.predict(latents)

        def refit(subset: np.ndarray) -> np.ndarray:
            model = AgglomerativeClustering(
                n_clusters=min(self.num_classes, max(2, subset.shape[0] // 2)),
                linkage=self.clustering.linkage,
            )
            return model.fit_predict(subset)

        return quality_report(latents, labels, refit, truth=truth, seed=seed)

    def class_statistics(
        self,
        labels: np.ndarray,
        properties: Dict[str, np.ndarray],
    ) -> List[ClassStatistics]:
        """Per-class physical-property means from MOD06-derived fields.

        ``properties`` must contain per-tile ``optical_thickness``,
        ``cloud_top_pressure``, ``cloud_fraction`` arrays aligned with
        ``labels``.
        """
        required = ("optical_thickness", "cloud_top_pressure", "cloud_fraction")
        for key in required:
            if key not in properties:
                raise KeyError(f"properties lacks {key!r}")
            if np.asarray(properties[key]).shape != labels.shape:
                raise ValueError(f"property {key!r} misaligned with labels")
        stats = []
        for label in np.unique(labels):
            mask = labels == label
            stats.append(
                ClassStatistics(
                    label=int(label),
                    count=int(mask.sum()),
                    mean_optical_thickness=float(properties["optical_thickness"][mask].mean()),
                    mean_cloud_top_pressure=float(properties["cloud_top_pressure"][mask].mean()),
                    mean_cloud_fraction=float(properties["cloud_fraction"][mask].mean()),
                )
            )
        return stats

    # -- persistence ------------------------------------------------------------

    def save(self, path: str) -> None:
        np.savez(
            path,
            tile_shape=np.array(self.autoencoder.tile_shape),
            latent_dim=np.array([self.autoencoder.latent_dim]),
            centroids=self.clustering.centroids_,
            linkage=np.array([self.clustering.linkage]),
            **{f"model.{k}": v for k, v in self.autoencoder.state_dict().items()},
        )

    @classmethod
    def load(cls, path: str) -> "AICCAModel":
        data = np.load(path)
        tile_shape = tuple(int(v) for v in data["tile_shape"])
        latent_dim = int(data["latent_dim"][0])
        hidden = []
        index = 0
        while f"model.enc.layer{index}.w" in data:
            hidden.append(data[f"model.enc.layer{index}.w"].shape[1])
            index += 2
        hidden = hidden[:-1]
        autoencoder = RotationInvariantAutoencoder(
            tile_shape, latent_dim=latent_dim, hidden=tuple(hidden)
        )
        autoencoder.load_state_dict(
            {k[len("model."):]: data[k] for k in data.files if k.startswith("model.")}
        )
        centroids = data["centroids"]
        clustering = AgglomerativeClustering(
            n_clusters=centroids.shape[0], linkage=str(data["linkage"][0])
        )
        clustering.centroids_ = centroids
        return cls(autoencoder, clustering)
