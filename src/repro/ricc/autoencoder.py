"""The rotationally invariant autoencoder (RICC's trainable core).

Architecture: a dense encoder/decoder over flattened (H, W, C) tiles.
Training minimizes

    L = lambda_rec * L_restore + lambda_inv * L_invariance

where ``L_restore`` is the *minimum* reconstruction error against any
dihedral transform of the input (the decoder may restore any orientation)
and ``L_invariance`` is the latent variance across the dihedral transforms
of each tile (zero for an exactly rotation-invariant encoder).  This is
the loss structure of Kurihana et al. (2021) adapted to the dense
architecture; the ablation benchmark compares it against a plain
autoencoder (lambda_inv = 0) on rotated test sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ricc.layers import Activation, Dense, Sequential
from repro.ricc.optim import Adam
from repro.ricc.rotinv import NUM_TRANSFORMS, transform_batch

__all__ = ["RotationInvariantAutoencoder", "TrainRecord"]


@dataclass(frozen=True)
class TrainRecord:
    """Per-epoch training metrics."""

    epoch: int
    loss: float
    restore_loss: float
    invariance_loss: float


class RotationInvariantAutoencoder:
    """Dense RI autoencoder over square multi-channel tiles."""

    def __init__(
        self,
        tile_shape: Tuple[int, int, int],
        latent_dim: int = 16,
        hidden: Sequence[int] = (256, 64),
        lambda_inv: float = 1.0,
        lambda_rec: float = 1.0,
        seed: int = 0,
    ):
        height, width, channels = tile_shape
        if height != width:
            raise ValueError("tiles must be square")
        if latent_dim < 1:
            raise ValueError("latent dimension must be positive")
        self.tile_shape = (height, width, channels)
        self.input_dim = height * width * channels
        self.latent_dim = latent_dim
        self.lambda_inv = lambda_inv
        self.lambda_rec = lambda_rec
        rng = np.random.default_rng(seed)

        enc_layers: List = []
        dims = [self.input_dim, *hidden]
        for in_dim, out_dim in zip(dims, dims[1:]):
            enc_layers += [Dense(in_dim, out_dim, rng), Activation("relu")]
        enc_layers.append(Dense(dims[-1], latent_dim, rng))
        self.encoder = Sequential(enc_layers)

        dec_layers: List = []
        rev = [latent_dim, *reversed(hidden)]
        for in_dim, out_dim in zip(rev, rev[1:]):
            dec_layers += [Dense(in_dim, out_dim, rng), Activation("relu")]
        dec_layers.append(Dense(rev[-1], self.input_dim, rng))
        self.decoder = Sequential(dec_layers)
        self.trained_epochs = 0

    # -- inference ------------------------------------------------------------

    def _flatten(self, tiles: np.ndarray, dtype: Optional[np.dtype] = None) -> np.ndarray:
        if dtype is None:
            # Dtype-preserving: float32 batches stay float32 end to end
            # (the inference fast path); everything else upcasts to the
            # float64 the training loop requires.
            dtype = tiles.dtype if tiles.dtype in (np.float32, np.float64) else np.float64
        if tiles.ndim == 4:
            if tiles.shape[1:] != self.tile_shape:
                raise ValueError(f"tiles shaped {tiles.shape[1:]}, model expects {self.tile_shape}")
            return tiles.reshape(tiles.shape[0], -1).astype(dtype, copy=False)
        if tiles.ndim == 2 and tiles.shape[1] == self.input_dim:
            return tiles.astype(dtype, copy=False)
        raise ValueError(f"cannot interpret tile array of shape {tiles.shape}")

    def encode(self, tiles: np.ndarray) -> np.ndarray:
        """Latent codes (N, latent_dim); preserves a float32 input dtype."""
        return self.encoder.forward(self._flatten(tiles))

    def reconstruct(self, tiles: np.ndarray) -> np.ndarray:
        flat = self._flatten(tiles)
        return self.decoder.forward(self.encoder.forward(flat))

    def reconstruction_error(self, tiles: np.ndarray) -> float:
        # An evaluation metric, not a throughput path: pin to float64 so
        # reported errors do not depend on the caller's storage dtype.
        flat = self._flatten(tiles, dtype=np.float64)
        recon = self.decoder.forward(self.encoder.forward(flat))
        return float(np.mean((recon - flat) ** 2))

    # -- training ------------------------------------------------------------

    def train(
        self,
        tiles: np.ndarray,
        epochs: int = 20,
        batch_size: int = 32,
        lr: float = 1e-3,
        transforms_per_batch: int = 4,
        seed: int = 0,
        verbose: bool = False,
        grad_hook=None,
    ) -> List[TrainRecord]:
        """Train on (N, H, W, C) tiles; returns per-epoch records.

        ``transforms_per_batch`` samples that many dihedral transforms
        (always including at least two) for the invariance term each step,
        trading fidelity for speed exactly like the original's rotation
        sampling.
        """
        if tiles.ndim != 4:
            raise ValueError("training tiles must be (N, H, W, C)")
        if tiles.shape[0] < 2:
            raise ValueError("need at least two training tiles")
        transforms_per_batch = int(np.clip(transforms_per_batch, 2, NUM_TRANSFORMS))
        rng = np.random.default_rng(seed)
        optimizer = Adam(lr=lr)
        n = tiles.shape[0]
        history: List[TrainRecord] = []

        for epoch in range(epochs):
            order = rng.permutation(n)
            epoch_rec, epoch_inv, batches = 0.0, 0.0, 0
            for start in range(0, n, batch_size):
                batch = tiles[order[start : start + batch_size]]
                record = self._train_step(batch, optimizer, rng, transforms_per_batch, grad_hook)
                epoch_rec += record[0]
                epoch_inv += record[1]
                batches += 1
            record = TrainRecord(
                epoch=self.trained_epochs,
                restore_loss=epoch_rec / batches,
                invariance_loss=epoch_inv / batches,
                loss=(self.lambda_rec * epoch_rec + self.lambda_inv * epoch_inv) / batches,
            )
            history.append(record)
            self.trained_epochs += 1
            if verbose:
                print(
                    f"epoch {record.epoch:3d}  loss {record.loss:.5f}  "
                    f"restore {record.restore_loss:.5f}  inv {record.invariance_loss:.5f}"
                )
        return history

    def _train_step(
        self,
        batch: np.ndarray,
        optimizer: Adam,
        rng: np.random.Generator,
        transforms_per_batch: int,
        grad_hook=None,
    ) -> Tuple[float, float]:
        flat = batch.reshape(batch.shape[0], -1).astype(np.float64)
        n, d = flat.shape
        self.encoder.zero_grad()
        self.decoder.zero_grad()

        # --- restoration term: min over transforms of ||dec(enc(x)) - T(x)||^2
        latent = self.encoder.forward(flat)
        recon = self.decoder.forward(latent)
        best_err: Optional[np.ndarray] = None
        best_target = None
        for index in range(NUM_TRANSFORMS):
            target = transform_batch(batch, index).reshape(n, -1)
            err = ((recon - target) ** 2).mean(axis=1)
            if best_err is None:
                best_err, best_target = err, target
            else:
                better = err < best_err
                best_err = np.where(better, err, best_err)
                best_target = np.where(better[:, None], target, best_target)
        restore_loss = float(best_err.mean())
        grad_recon = (2.0 / (n * d)) * (recon - best_target) * self.lambda_rec
        grad_latent = self.decoder.backward(grad_recon)
        self.encoder.backward(grad_latent)

        # --- invariance term over a sampled transform subset
        chosen = rng.choice(NUM_TRANSFORMS, size=transforms_per_batch, replace=False)
        flats = [transform_batch(batch, int(index)).reshape(n, -1) for index in chosen]
        codes = [self.encoder.forward(f) for f in flats]
        stack = np.stack(codes)  # (T, N, Z)
        mean_code = stack.mean(axis=0)
        deviations = stack - mean_code
        t_count = len(codes)
        inv_loss = float((deviations**2).mean())
        scale = 2.0 / deviations.size * self.lambda_inv
        for f, deviation in zip(flats, deviations):
            self.encoder.forward(f)  # restore this transform's caches
            self.encoder.backward(scale * deviation)

        params = self._all_params()
        if grad_hook is not None:
            # Extension point: continual learning (EWC) injects its
            # quadratic-penalty gradient here, inside the same step.
            grad_hook(params)
        optimizer.step(params)
        return restore_loss, inv_loss

    def _all_params(self):
        # Distinct names across the two nets: Adam keys its moment
        # buffers by name, so "enc."/"dec." prefixes are load-bearing.
        return [
            (f"{prefix}.{name}", value, grad)
            for prefix, net in (("enc", self.encoder), ("dec", self.decoder))
            for name, value, grad in net.params()
        ]

    # -- persistence ------------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for prefix, net in (("enc", self.encoder), ("dec", self.decoder)):
            for name, value, _grad in net.params():
                state[f"{prefix}.{name}"] = value.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for prefix, net in (("enc", self.encoder), ("dec", self.decoder)):
            for name, value, _grad in net.params():
                key = f"{prefix}.{name}"
                if key not in state:
                    raise KeyError(f"missing parameter {key!r}")
                if state[key].shape != value.shape:
                    raise ValueError(f"shape mismatch for {key!r}")
                value[:] = state[key]

    def save(self, path: str) -> None:
        np.savez(
            path,
            tile_shape=np.array(self.tile_shape),
            latent_dim=np.array([self.latent_dim]),
            **self.state_dict(),
        )

    @classmethod
    def load(cls, path: str, **kwargs) -> "RotationInvariantAutoencoder":
        data = np.load(path)
        tile_shape = tuple(int(v) for v in data["tile_shape"])
        latent_dim = int(data["latent_dim"][0])
        hidden = kwargs.pop("hidden", None)
        if hidden is None:
            # Recover hidden widths from the encoder weight shapes.
            hidden = []
            index = 0
            while f"enc.layer{index}.w" in data:
                hidden.append(data[f"enc.layer{index}.w"].shape[1])
                index += 2
            hidden = hidden[:-1]  # last dense maps to the latent
        model = cls(tile_shape, latent_dim=latent_dim, hidden=tuple(hidden), **kwargs)
        model.load_state_dict({k: data[k] for k in data.files if "." in k})
        return model
