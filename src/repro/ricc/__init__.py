"""RICC + AICCA: rotationally invariant cloud clustering in pure NumPy."""

from repro.ricc.adaptation import fine_tune, merge_models
from repro.ricc.aicca import AICCAModel, ClassStatistics
from repro.ricc.autoencoder import RotationInvariantAutoencoder, TrainRecord
from repro.ricc.cluster import AgglomerativeClustering, Merge
from repro.ricc.continual import EWCTrainer
from repro.ricc.evaluate import (
    QualityReport,
    adjusted_rand_index,
    cluster_stability,
    quality_report,
    silhouette_score,
)
from repro.ricc.rotinv import (
    NUM_TRANSFORMS,
    dihedral_transforms,
    invariance_gap,
    transform_batch,
)

__all__ = [
    "RotationInvariantAutoencoder",
    "TrainRecord",
    "AgglomerativeClustering",
    "Merge",
    "AICCAModel",
    "ClassStatistics",
    "EWCTrainer",
    "fine_tune",
    "merge_models",
    "silhouette_score",
    "adjusted_rand_index",
    "cluster_stability",
    "quality_report",
    "QualityReport",
    "dihedral_transforms",
    "transform_batch",
    "invariance_gap",
    "NUM_TRANSFORMS",
]
