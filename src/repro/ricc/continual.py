"""Continual learning for the RICC model (the paper's future-work item).

Section V: "AI applications are continually trained periodically on new
data without catastrophically forgetting what had been learned
previously."  We implement Elastic Weight Consolidation (Kirkpatrick et
al. 2017): after training on a data batch, estimate each parameter's
importance as the diagonal Fisher information (squared gradients of the
restoration loss), then penalize movement of important parameters while
training on new data:

    L_total = L_new + (lambda / 2) * sum_i F_i (theta_i - theta*_i)^2

The penalty gradient is injected into the autoencoder's optimizer step
through the ``grad_hook`` extension point.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.ricc.autoencoder import RotationInvariantAutoencoder, TrainRecord

__all__ = ["EWCTrainer"]


class EWCTrainer:
    """Sequential-task trainer with an EWC forgetting penalty."""

    def __init__(self, model: RotationInvariantAutoencoder, ewc_lambda: float = 50.0):
        if ewc_lambda < 0:
            raise ValueError("ewc lambda must be non-negative")
        self.model = model
        self.ewc_lambda = ewc_lambda
        self._fisher: Optional[Dict[str, np.ndarray]] = None
        self._anchor: Optional[Dict[str, np.ndarray]] = None
        self.tasks_consolidated = 0

    # -- consolidation ------------------------------------------------------------

    def consolidate(self, tiles: np.ndarray, batch_size: int = 32) -> None:
        """Estimate Fisher importance on ``tiles`` and anchor the weights.

        Called after finishing a task; subsequent :meth:`train_task` calls
        are penalized for drifting from this anchor.  Repeated calls
        accumulate Fisher mass (online EWC with unit decay).
        """
        fisher: Dict[str, np.ndarray] = {
            name: np.zeros_like(value) for name, value, _ in self.model._all_params()
        }
        n = tiles.shape[0]
        batches = 0
        for start in range(0, n, batch_size):
            batch = tiles[start : start + batch_size]
            flat = batch.reshape(batch.shape[0], -1).astype(np.float64)
            self.model.encoder.zero_grad()
            self.model.decoder.zero_grad()
            latent = self.model.encoder.forward(flat)
            recon = self.model.decoder.forward(latent)
            grad = (2.0 / recon.size) * (recon - flat)
            grad_latent = self.model.decoder.backward(grad)
            self.model.encoder.backward(grad_latent)
            for name, _value, param_grad in self.model._all_params():
                fisher[name] += param_grad**2
            batches += 1
        for name in fisher:
            fisher[name] /= max(batches, 1)
        # Normalize to unit max: raw squared-gradient magnitudes near an
        # optimum are vanishingly small (~grad^2), which would make the
        # penalty a no-op at any reasonable lambda.  After normalization
        # lambda is interpretable as "stiffness of the most important
        # weight", the common practical EWC convention.
        peak = max(float(values.max()) for values in fisher.values())
        if peak > 0:
            for name in fisher:
                fisher[name] /= peak
        if self._fisher is None:
            self._fisher = fisher
        else:
            for name in fisher:
                self._fisher[name] += fisher[name]
        self._anchor = {name: value.copy() for name, value, _ in self.model._all_params()}
        self.tasks_consolidated += 1

    # -- penalized training ------------------------------------------------------

    def _hook(self, params) -> None:
        assert self._fisher is not None and self._anchor is not None
        for name, value, grad in params:
            grad += self.ewc_lambda * self._fisher[name] * (value - self._anchor[name])

    def train_task(
        self,
        tiles: np.ndarray,
        epochs: int = 10,
        batch_size: int = 32,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> List[TrainRecord]:
        """Train on a new data batch, with the EWC penalty when armed."""
        hook = self._hook if self._fisher is not None and self.ewc_lambda > 0 else None
        return self.model.train(
            tiles, epochs=epochs, batch_size=batch_size, lr=lr, seed=seed, grad_hook=hook
        )

    def penalty(self) -> float:
        """Current value of (lambda/2) sum F (theta - theta*)^2."""
        if self._fisher is None or self._anchor is None:
            return 0.0
        total = 0.0
        for name, value, _grad in self.model._all_params():
            total += float((self._fisher[name] * (value - self._anchor[name]) ** 2).sum())
        return 0.5 * self.ewc_lambda * total
