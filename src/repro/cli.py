"""Command-line interface for the EO-ML workflow system.

The accessibility goal of Section V-A — "democratizes access,
accommodating users of varying levels of expertise" — starts with a CLI:

    repro run workflow.yaml            # the real five-stage pipeline
    repro simulate --granules 40       # the simulated ACE twin (Figs. 6-7)
    repro figures fig4 table1 ...      # regenerate evaluation artifacts
    repro catalog MOD02 2022-01-01     # query the archive model
    repro info                         # system inventory

Multi-facility mode (the control plane of :mod:`repro.server`):

    repro serve --db runs.db           # central run service
    repro submit workflow.yaml --server URL   # register a run
    repro status [RUN] --server URL    # watch runs / one run's units
    repro agent --server URL --site S  # facility worker loop

Exit codes: 0 success, 1 failure reported by the work itself (including
a server that answered with an error), 2 usage/connectivity problems.

Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.util.units import format_bytes

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-facility EO-ML workflow (SC'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the real five-stage workflow from a YAML config")
    run.add_argument("config", help="workflow YAML file")
    run.add_argument("--no-provenance", action="store_true", help="skip lineage recording")
    run.add_argument(
        "--resume",
        action="store_true",
        help="replay the run journal and skip work whose artifacts still verify "
             "(crash-consistent restart of an interrupted run)",
    )
    run.add_argument(
        "--chaos",
        metavar="PLAN",
        help="YAML file with a fault-injection plan (a chaos: section or bare "
             "enabled/seed/faults mapping); overrides the config's chaos section",
    )
    run.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="run download/preprocess/inference across N worker processes "
             "(overrides runtime.workers; 1 = single-process)",
    )
    run.add_argument(
        "--chaos-seed",
        type=int,
        metavar="N",
        help="re-seed the active chaos plan (requires a plan via config or --chaos)",
    )

    simulate = sub.add_parser("simulate", help="run the simulated multi-facility twin")
    simulate.add_argument("--granules", type=int, default=24, help="granule sets to process")
    simulate.add_argument("--seed", type=int, default=0)

    figures = sub.add_parser("figures", help="regenerate paper figures/tables")
    figures.add_argument(
        "targets",
        nargs="+",
        choices=["fig3", "fig4", "fig5", "fig6", "fig7", "table1", "headline"],
        help="which artifacts to regenerate",
    )
    figures.add_argument("--repeats", type=int, default=3)

    catalog = sub.add_parser("catalog", help="query an instrument's archive model")
    catalog.add_argument("product", help="e.g. MOD02, MOD03, MOD06 (or ABI-L1b for --instrument abi)")
    catalog.add_argument("date", help="ISO date, e.g. 2022-01-01")
    catalog.add_argument("--limit", type=int, default=10)
    catalog.add_argument("--instrument", default="modis",
                         help="registered instrument whose archive to query "
                              "(default: %(default)s)")

    sub.add_parser("info", help="print the system inventory")

    serve = sub.add_parser("serve", help="run the multi-facility control plane")
    serve.add_argument("--db", default="control_plane.db",
                       help="SQLite file for the run store (default: %(default)s)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)

    submit = sub.add_parser("submit", help="submit a workflow to the control plane")
    submit.add_argument("config", help="workflow YAML file")
    submit.add_argument("--server", required=True, metavar="URL",
                        help="control-plane base URL, e.g. http://host:8642")
    submit.add_argument("--name", default="", help="run name (default: config name)")

    status = sub.add_parser("status", help="show control-plane runs")
    status.add_argument("run", nargs="?", help="run id for per-unit detail")
    status.add_argument("--server", required=True, metavar="URL")
    status.add_argument("--events", action="store_true",
                        help="also print the run's event log (needs a run id)")

    agent = sub.add_parser("agent", help="run a site agent against the control plane")
    agent.add_argument("--server", required=True, metavar="URL")
    agent.add_argument("--name", default="", help="agent name (default: host-pid)")
    agent.add_argument("--site", default="", help="facility label, e.g. alcf, nersc")
    agent.add_argument("--ttl", type=float, default=15.0, help="lease TTL seconds")
    agent.add_argument("--poll-interval", type=float, default=1.0,
                       help="seconds between empty polls")
    agent.add_argument("--max-units", type=int, default=None,
                       help="exit after executing N units")
    agent.add_argument("--drain", action="store_true",
                       help="exit once several consecutive polls find no work")
    agent.add_argument("--outbox", default=None, metavar="PATH",
                       help="durable spool for results that could not be "
                            "delivered during a partition (JSONL)")
    agent.add_argument("--reconnect-limit", type=int, default=3,
                       help="reconnect probes before giving up when the "
                            "server is unreachable (negative: probe forever)")

    cache = sub.add_parser(
        "cache", help="inspect or garbage-collect the content-addressed cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser("stats", help="object counts, bytes, counters")
    cache_stats.add_argument("--dir", default=None, metavar="DIR",
                             help="cache directory (default: from --config)")
    cache_stats.add_argument("--config", default=None, metavar="YAML",
                             help="workflow config whose cache: section names the dir")
    cache_gc = cache_sub.add_parser(
        "gc", help="evict least-recently-used unpinned objects down to a budget"
    )
    cache_gc.add_argument("--dir", default=None, metavar="DIR",
                          help="cache directory (default: from --config)")
    cache_gc.add_argument("--config", default=None, metavar="YAML",
                          help="workflow config whose cache: section names the dir "
                               "and budget")
    cache_gc.add_argument("--budget-bytes", type=int, default=None, metavar="N",
                          help="evict down to N bytes (overrides the config budget)")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.chaos import load_plan
    from repro.core import EOMLWorkflow, load_config

    with open(args.config) as handle:
        config = load_config(handle.read())
    if args.chaos:
        with open(args.chaos) as handle:
            config = dataclasses.replace(config, chaos=load_plan(handle.read()))
    if args.chaos_seed is not None:
        if config.chaos is None:
            print("--chaos-seed needs a chaos plan (config chaos: section or --chaos)",
                  file=sys.stderr)
            return 2
        config = dataclasses.replace(config, chaos=config.chaos.with_seed(args.chaos_seed))
    if args.workers is not None:
        if args.workers < 1:
            print("--workers must be at least 1", file=sys.stderr)
            return 2
        config = dataclasses.replace(config, runtime_workers=args.workers)
    print(f"running workflow {config.name!r} "
          f"({config.start_date} .. {config.end_date}, products {config.products})")
    if len(config.instruments) > 1 or len(config.models) > 1:
        from repro.core.branches import expand_branches

        branches = [f"{inst}+{mdl}" for inst, mdl in expand_branches(config)]
        print(f"fan-out:    {len(branches)} branch(es): {', '.join(branches)}")
    if config.chaos is not None and config.chaos.active:
        print(f"chaos:      seed {config.chaos.seed}, "
              f"{len(config.chaos.faults)} fault spec(s) over stages "
              f"{list(config.chaos.stages())}")
    if args.resume:
        print(f"resume:     replaying journal at {config.journal_dir}")
    if config.runtime_workers > 1 or config.elastic.enabled:
        policy = config.elastic
        span = (f"{policy.min_workers}..{policy.max_workers} (elastic)"
                if policy.enabled else str(config.runtime_workers))
        print(f"scale-out:  {span} worker process(es)")
    report = EOMLWorkflow(config).run(
        provenance=not args.no_provenance, resume=args.resume
    )
    print(f"download:   {report.download.files} files "
          f"({format_bytes(report.download.nbytes)}), "
          f"{report.download.skipped} skipped, {report.download.resumed} resumed, "
          f"{report.download.retried} retried")
    print(f"preprocess: {report.total_tiles} tiles "
          f"({report.preprocess.throughput_tiles_per_s:.1f} tiles/s)")
    print(f"inference:  {report.labelled_tiles} tiles labelled")
    if report.shipment:
        print(f"shipment:   {len(report.shipment.moved)} files delivered")
    if report.provenance:
        summary = report.provenance.summary()
        print(f"provenance: {summary['entities']} entities, "
              f"{summary['activities']} activities recorded")
    if report.chaos is not None:
        print(f"chaos:      {report.chaos['faults_injected']} faults injected "
              f"{report.chaos['by_kind']}, {report.quarantined} item(s) quarantined")
    if report.journal is not None:
        print(f"journal:    {report.resumed_items} resumed, "
              f"{report.replayed_items} replayed, "
              f"{report.manifest_mismatches} manifest mismatch(es)")
    if report.scaleout.get("enabled"):
        print(f"scale-out:  {report.scaleout['units_executed']} units over "
              f"{report.scaleout['workers_launched']} worker(s), "
              f"{report.scaleout['requeues']} requeue(s), "
              f"+{report.scaleout['scale_out_events']}/"
              f"-{report.scaleout['scale_in_events']} scale events")
    if report.cache.get("enabled"):
        print(f"cache:      {report.cache['hits']} hit(s) / "
              f"{report.cache['misses']} miss(es), "
              f"{report.cache['stores']} stored, "
              f"{format_bytes(int(report.cache['bytes_saved']))} saved "
              f"({report.cache['download_cached']} download / "
              f"{report.cache['preprocess_cached']} preprocess / "
              f"{report.cache['shipment_deduped']} shipment short-circuits)")
        if report.cache.get("refined_tiles"):
            print(f"fidelity:   {report.cache['refined_tiles']} tile(s) refined "
                  f"to full resolution")
    if report.errors:
        print(f"errors: {report.errors}", file=sys.stderr)
        return 1
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analysis import automation_timeline, latency_breakdown, render_table
    from repro.core import SimWorkflowParams

    params = SimWorkflowParams(num_granule_sets=args.granules, seed=args.seed)
    timeline = automation_timeline(params)
    print(timeline.render())
    breakdown = latency_breakdown(params)
    print(render_table(
        ["stage", "seconds"],
        [(name, round(seconds, 3)) for name, seconds in breakdown.rows()],
        title="latency breakdown",
    ))
    print(f"makespan {breakdown.makespan_s:.1f}s for {args.granules} granule sets")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro import analysis

    repeats = args.repeats
    for target in args.targets:
        print(f"=== {target} ===")
        if target == "fig3":
            points = analysis.download_sweep(iterations=repeats)
            rows = [
                (f"{p.batch_bytes / 1e9:.1f}GB", p.workers, round(p.mean_speed_mb_s, 2),
                 round(p.std_speed_mb_s, 2))
                for p in points
            ]
            print(analysis.render_table(["batch", "workers", "MB/s", "std"], rows))
        elif target == "fig4":
            sw = analysis.strong_scaling_workers(repeats=repeats)
            print(analysis.render_comparison(
                "workers", sw.throughput_map(), analysis.TABLE1_STRONG_WORKERS))
            sn = analysis.strong_scaling_nodes(repeats=repeats)
            print(analysis.render_comparison(
                "nodes", sn.throughput_map(), analysis.TABLE1_STRONG_NODES))
        elif target == "fig5":
            ww = analysis.weak_scaling_workers(repeats=repeats)
            print(analysis.render_comparison(
                "workers", ww.throughput_map(), analysis.TABLE1_WEAK_WORKERS))
            wn = analysis.weak_scaling_nodes(repeats=repeats)
            print(analysis.render_comparison(
                "nodes", wn.throughput_map(), analysis.TABLE1_WEAK_NODES))
        elif target == "fig6":
            from repro.core import SimWorkflowParams

            print(analysis.automation_timeline(SimWorkflowParams(num_granule_sets=40)).render())
        elif target == "fig7":
            breakdown = analysis.latency_breakdown()
            print(analysis.render_table(
                ["stage", "seconds"],
                [(name, round(seconds, 3)) for name, seconds in breakdown.rows()],
            ))
        elif target == "table1":
            sw = analysis.strong_scaling_workers(repeats=repeats)
            sn = analysis.strong_scaling_nodes(repeats=repeats)
            print(analysis.render_comparison(
                "workers", sw.throughput_map(), analysis.TABLE1_STRONG_WORKERS))
            print(analysis.render_comparison(
                "nodes", sn.throughput_map(), analysis.TABLE1_STRONG_NODES))
        elif target == "headline":
            point = analysis.headline_run(repeats=repeats)
            print(f"{point.tiles} tiles in {point.mean_seconds:.1f}s "
                  f"+/- {point.std_seconds:.1f} (paper: 44s)")
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    import datetime as dt

    from repro.instruments import get_instrument

    try:
        instrument = get_instrument(args.instrument)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    archive = instrument.build_archive(seed=0)
    refs = archive.query(args.product, dt.date.fromisoformat(args.date),
                         max_per_day=args.limit)
    for ref in refs:
        print(f"{ref.filename}  {format_bytes(ref.nbytes)}")
    total = archive.query(args.product, dt.date.fromisoformat(args.date))
    print(f"-- day total: {len(total)} granules, "
          f"{format_bytes(archive.total_bytes(total))}")
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    import repro

    print(f"repro {repro.__version__} — "
          "'Scalable Multi-Facility Workflows for AI Applications in Climate Research' "
          "(SC 2024) reproduction")
    print(repro.__doc__)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import serve

    serve(args.db, host=args.host, port=args.port,
          announce=lambda url: print(f"control plane listening on {url} (db {args.db})"))
    return 0


def _client(args: argparse.Namespace):
    from repro.server import ControlPlaneClient

    return ControlPlaneClient(args.server)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.server import RequestFailed, ServerUnavailable
    from repro.util.yamlish import loads

    with open(args.config) as handle:
        raw = loads(handle.read())
    if not isinstance(raw, dict):
        print(f"{args.config}: expected a YAML mapping", file=sys.stderr)
        return 2
    try:
        run = _client(args).submit(raw, name=args.name)
    except ServerUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RequestFailed as exc:
        print(f"submission rejected: {exc.message}", file=sys.stderr)
        return 1
    print(f"submitted {run.run_id} ({run.name}): "
          f"{len(run.units)} unit(s) {[u.name for u in run.units]}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.server import RequestFailed, ServerUnavailable

    client = _client(args)
    try:
        if args.run is None:
            runs = client.runs()
            if not runs:
                print("no runs")
                return 0
            for run in runs:
                suffix = f"  error: {run.error}" if run.error else ""
                print(f"{run.run_id}  {run.status:<10} {run.name}{suffix}")
            return 0
        run = client.run(args.run)
        print(f"{run.run_id}  {run.status}  {run.name}")
        for unit in run.units:
            owner = f"  @{unit.agent}" if unit.agent else ""
            note = f"  error: {unit.error}" if unit.error else ""
            print(f"  {unit.name:<12} {unit.status:<10} "
                  f"attempts={unit.attempts} requeues={unit.requeues}{owner}{note}")
        if args.events:
            for event in client.events(args.run):
                print(f"  [{event['seq']}] {event['kind']}: {event['detail']}")
        return 0 if run is None or run.status != "failed" else 1
    except ServerUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RequestFailed as exc:
        print(f"error: {exc.message}", file=sys.stderr)
        return 1


def _cmd_agent(args: argparse.Namespace) -> int:
    import os
    import socket

    from repro.server import ControlPlaneClient, ServerUnavailable, SiteAgent

    name = args.name or f"{socket.gethostname()}-{os.getpid()}"
    client = ControlPlaneClient(args.server)
    agent = SiteAgent(
        client, name=name, site=args.site, ttl=args.ttl,
        poll_interval=args.poll_interval, outbox=args.outbox,
        reconnect_limit=None if args.reconnect_limit < 0 else args.reconnect_limit,
    )
    print(f"agent {name} (site {args.site or '-'}) polling {args.server}")
    try:
        stats = agent.run(
            max_units=args.max_units,
            idle_exit_after=5 if args.drain else None,
        )
    except ServerUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        stats = agent.stats
    print(f"agent {name}: {stats.completed} completed, {stats.failed} failed, "
          f"{stats.lost_leases} lost lease(s), {stats.idle_polls} idle poll(s)")
    if stats.disconnects:
        print(f"agent {name}: {stats.disconnects} disconnect(s), "
              f"{stats.reconnect_attempts} reconnect attempt(s), "
              f"{stats.outbox_replayed} spooled record(s) replayed")
    return 0 if stats.failed == 0 else 1


def _cache_store(args: argparse.Namespace):
    """Resolve the CAS directory (and budget) the subcommand targets."""
    from repro.cas import CASStore

    cache_dir = args.dir
    budget = getattr(args, "budget_bytes", None)
    if args.config is not None:
        from repro.core import load_config

        with open(args.config) as handle:
            config = load_config(handle.read())
        cache_dir = cache_dir or config.cache_dir
        if budget is None:
            budget = config.cache_budget_bytes
    if cache_dir is None:
        print("cache: need --dir or --config to locate the store", file=sys.stderr)
        return None
    return CASStore(cache_dir, budget_bytes=budget)


def _cmd_cache(args: argparse.Namespace) -> int:
    store = _cache_store(args)
    if store is None:
        return 2
    if args.cache_command == "stats":
        stats = store.stats()
        print(f"cache root: {stats['root']}")
        print(f"objects:    {stats['objects']} "
              f"({format_bytes(stats['total_bytes'])}), "
              f"{stats['pinned_objects']} pinned")
        budget = stats["budget_bytes"]
        print(f"budget:     "
              f"{format_bytes(budget) if budget is not None else 'unbounded'}")
        for key in ("hits", "misses", "stores", "dedup_stores",
                    "corrupt_evictions", "evicted_objects"):
            print(f"{key + ':':<12}{stats[key]}")
        return 0
    # gc
    sweep = store.gc()
    budget = sweep["budget_bytes"]
    print(f"evicted {sweep['evicted']} object(s), "
          f"freed {format_bytes(sweep['evicted_bytes'])} "
          f"(scanned {sweep['scanned']}, now {format_bytes(sweep['total_bytes'])}, "
          f"budget {format_bytes(budget) if budget is not None else 'unbounded'})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "simulate": _cmd_simulate,
        "figures": _cmd_figures,
        "catalog": _cmd_catalog,
        "info": _cmd_info,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "agent": _cmd_agent,
        "cache": _cmd_cache,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
