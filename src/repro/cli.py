"""Command-line interface for the EO-ML workflow system.

The accessibility goal of Section V-A — "democratizes access,
accommodating users of varying levels of expertise" — starts with a CLI:

    repro run workflow.yaml            # the real five-stage pipeline
    repro simulate --granules 40       # the simulated ACE twin (Figs. 6-7)
    repro figures fig4 table1 ...      # regenerate evaluation artifacts
    repro catalog MOD02 2022-01-01     # query the archive model
    repro info                         # system inventory

Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.util.units import format_bytes

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-facility EO-ML workflow (SC'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the real five-stage workflow from a YAML config")
    run.add_argument("config", help="workflow YAML file")
    run.add_argument("--no-provenance", action="store_true", help="skip lineage recording")
    run.add_argument(
        "--resume",
        action="store_true",
        help="replay the run journal and skip work whose artifacts still verify "
             "(crash-consistent restart of an interrupted run)",
    )
    run.add_argument(
        "--chaos",
        metavar="PLAN",
        help="YAML file with a fault-injection plan (a chaos: section or bare "
             "enabled/seed/faults mapping); overrides the config's chaos section",
    )
    run.add_argument(
        "--chaos-seed",
        type=int,
        metavar="N",
        help="re-seed the active chaos plan (requires a plan via config or --chaos)",
    )

    simulate = sub.add_parser("simulate", help="run the simulated multi-facility twin")
    simulate.add_argument("--granules", type=int, default=24, help="granule sets to process")
    simulate.add_argument("--seed", type=int, default=0)

    figures = sub.add_parser("figures", help="regenerate paper figures/tables")
    figures.add_argument(
        "targets",
        nargs="+",
        choices=["fig3", "fig4", "fig5", "fig6", "fig7", "table1", "headline"],
        help="which artifacts to regenerate",
    )
    figures.add_argument("--repeats", type=int, default=3)

    catalog = sub.add_parser("catalog", help="query the LAADS archive model")
    catalog.add_argument("product", help="e.g. MOD02, MOD03, MOD06")
    catalog.add_argument("date", help="ISO date, e.g. 2022-01-01")
    catalog.add_argument("--limit", type=int, default=10)

    sub.add_parser("info", help="print the system inventory")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.chaos import load_plan
    from repro.core import EOMLWorkflow, load_config

    with open(args.config) as handle:
        config = load_config(handle.read())
    if args.chaos:
        with open(args.chaos) as handle:
            config = dataclasses.replace(config, chaos=load_plan(handle.read()))
    if args.chaos_seed is not None:
        if config.chaos is None:
            print("--chaos-seed needs a chaos plan (config chaos: section or --chaos)",
                  file=sys.stderr)
            return 2
        config = dataclasses.replace(config, chaos=config.chaos.with_seed(args.chaos_seed))
    print(f"running workflow {config.name!r} "
          f"({config.start_date} .. {config.end_date}, products {config.products})")
    if config.chaos is not None and config.chaos.active:
        print(f"chaos:      seed {config.chaos.seed}, "
              f"{len(config.chaos.faults)} fault spec(s) over stages "
              f"{list(config.chaos.stages())}")
    if args.resume:
        print(f"resume:     replaying journal at {config.journal_dir}")
    report = EOMLWorkflow(config).run(
        provenance=not args.no_provenance, resume=args.resume
    )
    print(f"download:   {report.download.files} files "
          f"({format_bytes(report.download.nbytes)}), "
          f"{report.download.skipped} skipped, {report.download.resumed} resumed, "
          f"{report.download.retried} retried")
    print(f"preprocess: {report.total_tiles} tiles "
          f"({report.preprocess.throughput_tiles_per_s:.1f} tiles/s)")
    print(f"inference:  {report.labelled_tiles} tiles labelled")
    if report.shipment:
        print(f"shipment:   {len(report.shipment.moved)} files delivered")
    if report.provenance:
        summary = report.provenance.summary()
        print(f"provenance: {summary['entities']} entities, "
              f"{summary['activities']} activities recorded")
    if report.chaos is not None:
        print(f"chaos:      {report.chaos['faults_injected']} faults injected "
              f"{report.chaos['by_kind']}, {report.quarantined} item(s) quarantined")
    if report.journal is not None:
        print(f"journal:    {report.resumed_items} resumed, "
              f"{report.replayed_items} replayed, "
              f"{report.manifest_mismatches} manifest mismatch(es)")
    if report.errors:
        print(f"errors: {report.errors}", file=sys.stderr)
        return 1
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analysis import automation_timeline, latency_breakdown, render_table
    from repro.core import SimWorkflowParams

    params = SimWorkflowParams(num_granule_sets=args.granules, seed=args.seed)
    timeline = automation_timeline(params)
    print(timeline.render())
    breakdown = latency_breakdown(params)
    print(render_table(
        ["stage", "seconds"],
        [(name, round(seconds, 3)) for name, seconds in breakdown.rows()],
        title="latency breakdown",
    ))
    print(f"makespan {breakdown.makespan_s:.1f}s for {args.granules} granule sets")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro import analysis

    repeats = args.repeats
    for target in args.targets:
        print(f"=== {target} ===")
        if target == "fig3":
            points = analysis.download_sweep(iterations=repeats)
            rows = [
                (f"{p.batch_bytes / 1e9:.1f}GB", p.workers, round(p.mean_speed_mb_s, 2),
                 round(p.std_speed_mb_s, 2))
                for p in points
            ]
            print(analysis.render_table(["batch", "workers", "MB/s", "std"], rows))
        elif target == "fig4":
            sw = analysis.strong_scaling_workers(repeats=repeats)
            print(analysis.render_comparison(
                "workers", sw.throughput_map(), analysis.TABLE1_STRONG_WORKERS))
            sn = analysis.strong_scaling_nodes(repeats=repeats)
            print(analysis.render_comparison(
                "nodes", sn.throughput_map(), analysis.TABLE1_STRONG_NODES))
        elif target == "fig5":
            ww = analysis.weak_scaling_workers(repeats=repeats)
            print(analysis.render_comparison(
                "workers", ww.throughput_map(), analysis.TABLE1_WEAK_WORKERS))
            wn = analysis.weak_scaling_nodes(repeats=repeats)
            print(analysis.render_comparison(
                "nodes", wn.throughput_map(), analysis.TABLE1_WEAK_NODES))
        elif target == "fig6":
            from repro.core import SimWorkflowParams

            print(analysis.automation_timeline(SimWorkflowParams(num_granule_sets=40)).render())
        elif target == "fig7":
            breakdown = analysis.latency_breakdown()
            print(analysis.render_table(
                ["stage", "seconds"],
                [(name, round(seconds, 3)) for name, seconds in breakdown.rows()],
            ))
        elif target == "table1":
            sw = analysis.strong_scaling_workers(repeats=repeats)
            sn = analysis.strong_scaling_nodes(repeats=repeats)
            print(analysis.render_comparison(
                "workers", sw.throughput_map(), analysis.TABLE1_STRONG_WORKERS))
            print(analysis.render_comparison(
                "nodes", sn.throughput_map(), analysis.TABLE1_STRONG_NODES))
        elif target == "headline":
            point = analysis.headline_run(repeats=repeats)
            print(f"{point.tiles} tiles in {point.mean_seconds:.1f}s "
                  f"+/- {point.std_seconds:.1f} (paper: 44s)")
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    import datetime as dt

    from repro.modis import LaadsArchive

    archive = LaadsArchive()
    refs = archive.query(args.product, dt.date.fromisoformat(args.date),
                         max_per_day=args.limit)
    for ref in refs:
        print(f"{ref.filename}  {format_bytes(ref.nbytes)}")
    total = archive.query(args.product, dt.date.fromisoformat(args.date))
    print(f"-- day total: {len(total)} granules, "
          f"{format_bytes(archive.total_bytes(total))}")
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    import repro

    print(f"repro {repro.__version__} — "
          "'Scalable Multi-Facility Workflows for AI Applications in Climate Research' "
          "(SC 2024) reproduction")
    print(repro.__doc__)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "simulate": _cmd_simulate,
        "figures": _cmd_figures,
        "catalog": _cmd_catalog,
        "info": _cmd_info,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
