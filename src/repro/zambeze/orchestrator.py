"""The campaign orchestrator: dependency-driven cross-facility dispatch.

Runs a :class:`~repro.zambeze.campaign.Campaign` over the message bus:
ready activities are dispatched to a facility agent that offers the
required capability (pinned facility respected), status messages update
the campaign, failures retry up to the activity's budget, and the run
ends when every activity is terminal or the campaign is blocked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.util.logging import EventLog
from repro.zambeze.agent import FacilityAgent
from repro.zambeze.bus import Message, MessageBus
from repro.zambeze.campaign import ActivityStatus, Campaign, CampaignActivity

__all__ = ["Orchestrator", "CampaignReport"]


@dataclass
class CampaignReport:
    """Outcome of one campaign run."""

    campaign: str
    succeeded: bool
    statuses: Dict[str, str]
    dispatches: int
    retries: int
    errors: Dict[str, str] = field(default_factory=dict)
    results: Dict[str, object] = field(default_factory=dict)


class Orchestrator:
    """Dispatches campaigns to registered facility agents."""

    def __init__(
        self,
        bus: MessageBus,
        credentials: Optional[Dict[str, str]] = None,
        log: Optional[EventLog] = None,
    ):
        self.bus = bus
        self.credentials = dict(credentials or {})
        self.log = log or EventLog()
        self.agents: Dict[str, FacilityAgent] = {}
        self._campaign: Optional[Campaign] = None
        self._dispatches = 0
        self._retries = 0
        self._clock = 0.0
        bus.subscribe("status", "orchestrator", self._on_status)

    def register_agent(self, agent: FacilityAgent) -> None:
        if agent.facility in self.agents:
            raise ValueError(f"duplicate agent for facility {agent.facility!r}")
        self.agents[agent.facility] = agent

    # -- placement ------------------------------------------------------------

    def _place(self, activity: CampaignActivity) -> FacilityAgent:
        if activity.facility is not None:
            agent = self.agents.get(activity.facility)
            if agent is None:
                raise LookupError(f"no agent registered for facility {activity.facility!r}")
            if activity.capability not in agent.capabilities:
                raise LookupError(
                    f"facility {activity.facility!r} lacks capability "
                    f"{activity.capability!r}"
                )
            return agent
        candidates = [
            agent for agent in self.agents.values()
            if activity.capability in agent.capabilities
        ]
        if not candidates:
            raise LookupError(
                f"no facility offers capability {activity.capability!r} "
                f"(agents: {sorted(self.agents)})"
            )
        # Least-loaded placement keeps multi-facility work spread out.
        return min(candidates, key=lambda agent: agent.executed)

    def _dispatch(self, activity: CampaignActivity) -> None:
        agent = self._place(activity)
        activity.status = ActivityStatus.DISPATCHED
        activity.attempts += 1
        self._dispatches += 1
        self._clock += 1.0
        self.log.emit(self._clock, "zambeze", "dispatch",
                      activity=activity.name, facility=agent.facility,
                      attempt=activity.attempts)
        self.bus.publish(
            f"dispatch.{agent.facility}",
            "orchestrator",
            activity=activity.name,
            capability=activity.capability,
            parameters=activity.parameters,
            credential=self.credentials.get(agent.facility, ""),
        )

    # -- status handling ------------------------------------------------------

    def _on_status(self, message: Message) -> None:
        if self._campaign is None:
            return
        payload = message.payload
        activity = self._campaign.activities.get(payload["activity"])
        if activity is None or activity.status.terminal:
            return
        status = payload["status"]
        self._clock += 1.0
        self.log.emit(self._clock, "zambeze", "status",
                      activity=activity.name, status=status)
        if status == "running":
            activity.status = ActivityStatus.RUNNING
        elif status == "succeeded":
            activity.status = ActivityStatus.SUCCEEDED
            activity.result = payload.get("result")
        elif status == "failed":
            activity.error = payload.get("error", "unknown failure")
            if activity.attempts <= activity.max_retries:
                self._retries += 1
                self._dispatch(activity)
            else:
                activity.status = ActivityStatus.FAILED

    # -- the run ------------------------------------------------------------

    def run(self, campaign: Campaign, max_rounds: int = 10_000) -> CampaignReport:
        """Execute a campaign to completion (or to a blocked state)."""
        self._campaign = campaign
        self._dispatches = 0
        self._retries = 0
        rounds = 0
        try:
            while not campaign.done:
                rounds += 1
                if rounds > max_rounds:
                    raise RuntimeError(f"campaign {campaign.name!r} exceeded {max_rounds} rounds")
                for activity in campaign.ready():
                    try:
                        self._dispatch(activity)
                    except LookupError as exc:
                        activity.status = ActivityStatus.FAILED
                        activity.error = str(exc)
                self.bus.pump(max_messages=100_000)
                if campaign.blocked:
                    break
        finally:
            self._campaign = None
        return CampaignReport(
            campaign=campaign.name,
            succeeded=campaign.succeeded,
            statuses={name: a.status.value for name, a in campaign.activities.items()},
            dispatches=self._dispatches,
            retries=self._retries,
            errors={
                name: a.error for name, a in campaign.activities.items() if a.error
            },
            results={
                name: a.result
                for name, a in campaign.activities.items()
                if a.status is ActivityStatus.SUCCEEDED
            },
        )
