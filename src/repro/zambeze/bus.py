"""An in-process message bus (the Zambeze-style communication fabric).

Section V-A: "we plan to use the Zambeze orchestration framework to
facilitate remote configuration, invocation, and monitoring of workflow
components" across facilities whose orchestration "is fragmented".
Zambeze's architecture is agents exchanging messages over a queue
(NATS/RabbitMQ); this module provides that shape in-process: named
topics, durable per-subscriber queues, and an explicit ``pump`` step so
delivery order is deterministic and testable.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Tuple

__all__ = ["Message", "MessageBus"]


@dataclass(frozen=True)
class Message:
    """One bus message."""

    message_id: int
    topic: str
    sender: str
    payload: Dict[str, Any] = field(default_factory=dict)


class MessageBus:
    """Topic-based pub/sub with explicit, deterministic delivery."""

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[Tuple[str, Callable[[Message], None]]]] = {}
        self._pending: Deque[Message] = deque()
        self._ids = itertools.count(1)
        self.delivered = 0

    def subscribe(self, topic: str, name: str, handler: Callable[[Message], None]) -> None:
        """Register ``handler`` for ``topic``; names make logs readable."""
        self._subscribers.setdefault(topic, []).append((name, handler))

    def publish(self, topic: str, sender: str, **payload: Any) -> Message:
        """Queue a message; it is delivered on the next :meth:`pump`."""
        message = Message(
            message_id=next(self._ids), topic=topic, sender=sender, payload=dict(payload)
        )
        self._pending.append(message)
        return message

    def pump(self, max_messages: int | None = None) -> int:
        """Deliver queued messages (and any they trigger) in FIFO order.

        Returns the number delivered.  ``max_messages`` bounds a single
        pump so runaway publish loops surface as a clear failure rather
        than a hang.
        """
        count = 0
        while self._pending:
            if max_messages is not None and count >= max_messages:
                raise RuntimeError(
                    f"bus pump exceeded {max_messages} messages; "
                    "likely a publish loop between agents"
                )
            message = self._pending.popleft()
            for _name, handler in self._subscribers.get(message.topic, []):
                handler(message)
            self.delivered += 1
            count += 1
        return count

    @property
    def queued(self) -> int:
        return len(self._pending)
