"""Facility agents: the per-site adapters Zambeze deploys.

Each agent represents one facility's execution adapter ("developing
adapters for cross-facility communication", Section V-A): it advertises
capabilities, authenticates dispatches with a facility credential, runs
the matching plugin, and reports status messages back over the bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.zambeze.bus import Message, MessageBus

__all__ = ["FacilityAgent", "AuthError"]


class AuthError(RuntimeError):
    """Dispatch carried a missing or wrong facility credential."""


Plugin = Callable[[Dict[str, Any]], Any]


@dataclass
class FacilityAgent:
    """One facility's activity executor.

    ``plugins`` map capability names to callables receiving the activity
    parameters; ``credential`` is the shared secret dispatches must carry
    (the paper's near-term "manual user authentication, credential
    management").
    """

    facility: str
    bus: MessageBus
    credential: str
    plugins: Dict[str, Plugin] = field(default_factory=dict)
    executed: int = 0
    rejected: int = 0

    def __post_init__(self) -> None:
        self.bus.subscribe(f"dispatch.{self.facility}", f"agent:{self.facility}", self._on_dispatch)

    def register_plugin(self, capability: str, plugin: Plugin) -> None:
        self.plugins[capability] = plugin

    @property
    def capabilities(self) -> set:
        return set(self.plugins)

    # -- dispatch handling ------------------------------------------------------

    def _on_dispatch(self, message: Message) -> None:
        payload = message.payload
        name = payload["activity"]
        try:
            self._authenticate(payload)
            plugin = self._resolve(payload["capability"])
        except (AuthError, KeyError) as exc:
            self.rejected += 1
            self.bus.publish(
                "status", f"agent:{self.facility}",
                activity=name, status="failed", error=str(exc),
            )
            return
        self.bus.publish(
            "status", f"agent:{self.facility}", activity=name, status="running"
        )
        try:
            result = plugin(dict(payload.get("parameters", {})))
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            self.bus.publish(
                "status", f"agent:{self.facility}",
                activity=name, status="failed", error=str(exc),
            )
            return
        self.executed += 1
        self.bus.publish(
            "status", f"agent:{self.facility}",
            activity=name, status="succeeded", result=result,
        )

    def _authenticate(self, payload: Dict[str, Any]) -> None:
        token = payload.get("credential")
        if token != self.credential:
            raise AuthError(
                f"facility {self.facility!r} rejected dispatch: bad credential"
            )

    def _resolve(self, capability: str) -> Plugin:
        if capability not in self.plugins:
            raise KeyError(
                f"facility {self.facility!r} has no capability {capability!r}; "
                f"offers {sorted(self.plugins)}"
            )
        return self.plugins[capability]
