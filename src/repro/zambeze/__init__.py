"""Zambeze-like cross-facility orchestration: bus, agents, campaigns."""

from repro.zambeze.agent import AuthError, FacilityAgent
from repro.zambeze.bus import Message, MessageBus
from repro.zambeze.campaign import (
    ActivityKind,
    ActivityStatus,
    Campaign,
    CampaignActivity,
)
from repro.zambeze.orchestrator import CampaignReport, Orchestrator
from repro.zambeze.pipeline import (
    campaign_from_plan,
    register_plan_plugins,
    run_plan_with_zambeze,
)

__all__ = [
    "campaign_from_plan",
    "register_plan_plugins",
    "run_plan_with_zambeze",
    "MessageBus",
    "Message",
    "FacilityAgent",
    "AuthError",
    "Campaign",
    "CampaignActivity",
    "ActivityKind",
    "ActivityStatus",
    "Orchestrator",
    "CampaignReport",
]
