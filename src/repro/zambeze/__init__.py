"""Zambeze-like cross-facility orchestration: bus, agents, campaigns."""

from repro.zambeze.agent import AuthError, FacilityAgent
from repro.zambeze.bus import Message, MessageBus
from repro.zambeze.campaign import (
    ActivityKind,
    ActivityStatus,
    Campaign,
    CampaignActivity,
)
from repro.zambeze.orchestrator import CampaignReport, Orchestrator

__all__ = [
    "MessageBus",
    "Message",
    "FacilityAgent",
    "AuthError",
    "Campaign",
    "CampaignActivity",
    "ActivityKind",
    "ActivityStatus",
    "Orchestrator",
    "CampaignReport",
]
