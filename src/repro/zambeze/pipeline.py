"""Run a runtime :class:`PipelinePlan` as a zambeze campaign.

The plan's ``after`` edges become campaign ``depends_on`` edges, so the
orchestrator's own scheduler decides dispatch order under the same
barriers the local :class:`PlanRunner` honours.  ``stream`` edges also
become dependencies here: the campaign scheduler runs one activity at a
time, so a consumer dispatched before its producer would read an empty
channel — sequencing producer before consumer makes the (relaxed,
unbounded) channel a buffered hand-off with identical node bodies.
``overlaps`` edges are deliberately *not* dependencies — an overlap is a
concurrency window, not an ordering constraint — the window opens inside
:meth:`PlanExecution.run_node` whichever engine drives it.  Facility
agents execute nodes through ``runtime:<name>`` capability plugins that
delegate to the shared execution — same plan, third engine.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.runtime import PipelinePlan, PlanExecution
from repro.zambeze.agent import FacilityAgent
from repro.zambeze.bus import MessageBus
from repro.zambeze.campaign import ActivityKind, Campaign, CampaignActivity
from repro.zambeze.orchestrator import CampaignReport, Orchestrator

__all__ = [
    "CAPABILITY_PREFIX",
    "campaign_from_plan",
    "register_plan_plugins",
    "run_plan_with_zambeze",
]

CAPABILITY_PREFIX = "runtime:"


def campaign_from_plan(
    plan: PipelinePlan, name: str = "pipeline", facility: Optional[str] = None
) -> Campaign:
    """One COMPUTE activity per node; ``after`` + ``stream`` edges become
    ``depends_on`` (stream producers must run first under a sequential
    scheduler; the relaxed channel buffers the hand-off)."""
    return Campaign(
        name,
        [
            CampaignActivity(
                name=node.name,
                kind=ActivityKind.COMPUTE,
                facility=facility,
                capability=CAPABILITY_PREFIX + node.name,
                depends_on=list(node.after)
                + [dep for dep in node.stream if dep not in node.after],
            )
            for node in plan.nodes
        ],
    )


def register_plan_plugins(agent: FacilityAgent, execution: PlanExecution) -> None:
    """Give ``agent`` a ``runtime:<name>`` plugin per plan node."""
    for node in execution.plan.nodes:
        def plugin(params: Dict[str, Any], name: str = node.name) -> Any:
            return execution.run_node(name)

        agent.register_plugin(CAPABILITY_PREFIX + node.name, plugin)


def run_plan_with_zambeze(
    plan: PipelinePlan,
    state: Optional[Dict[str, Any]] = None,
    facility: str = "olcf",
    campaign_name: str = "pipeline",
) -> Tuple[CampaignReport, PlanExecution]:
    """Execute a plan end-to-end through a one-facility campaign.

    Builds the bus + credentialed agent + orchestrator, registers a
    plugin per node, and runs the generated campaign; returns (report,
    execution) with node values in ``execution.state``.
    """
    bus = MessageBus()
    credential = f"token-{facility}"
    agent = FacilityAgent(facility=facility, bus=bus, credential=credential)
    orchestrator = Orchestrator(bus, credentials={facility: credential})
    orchestrator.register_agent(agent)
    execution = PlanExecution(plan, state=state)
    register_plan_plugins(agent, execution)
    try:
        report = orchestrator.run(campaign_from_plan(plan, name=campaign_name))
    finally:
        execution.close()
    return report, execution
