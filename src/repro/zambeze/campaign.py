"""Campaigns: DAGs of cross-facility activities.

Zambeze's unit of work is the *activity* (compute something, move data);
a *campaign* is a set of activities with dependencies.  The EO-ML
workflow maps naturally: download and preprocess run at OLCF, analysis
may run at another facility, transfers bridge them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ActivityKind", "ActivityStatus", "CampaignActivity", "Campaign"]


class ActivityKind(enum.Enum):
    COMPUTE = "compute"
    TRANSFER = "transfer"
    CONTROL = "control"


class ActivityStatus(enum.Enum):
    PENDING = "pending"
    DISPATCHED = "dispatched"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (ActivityStatus.SUCCEEDED, ActivityStatus.FAILED)


@dataclass
class CampaignActivity:
    """One activity: what to do, where it may run, what it needs first."""

    name: str
    kind: ActivityKind
    facility: Optional[str] = None        # None = any facility with capability
    capability: str = ""                  # e.g. "preprocess", "laads-download"
    parameters: Dict[str, Any] = field(default_factory=dict)
    depends_on: List[str] = field(default_factory=list)
    max_retries: int = 0
    status: ActivityStatus = ActivityStatus.PENDING
    attempts: int = 0
    result: Any = None
    error: Optional[str] = None


class Campaign:
    """A validated DAG of activities."""

    def __init__(self, name: str, activities: Sequence[CampaignActivity]):
        self.name = name
        self.activities: Dict[str, CampaignActivity] = {}
        for activity in activities:
            if activity.name in self.activities:
                raise ValueError(f"duplicate activity name {activity.name!r}")
            self.activities[activity.name] = activity
        for activity in activities:
            for dep in activity.depends_on:
                if dep not in self.activities:
                    raise ValueError(
                        f"activity {activity.name!r} depends on unknown {dep!r}"
                    )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        state: Dict[str, int] = {}

        def visit(name: str) -> None:
            if state.get(name) == 1:
                raise ValueError(f"campaign has a dependency cycle through {name!r}")
            if state.get(name) == 2:
                return
            state[name] = 1
            for dep in self.activities[name].depends_on:
                visit(dep)
            state[name] = 2

        for name in self.activities:
            visit(name)

    def ready(self) -> List[CampaignActivity]:
        """Pending activities whose dependencies have all succeeded."""
        out = []
        for activity in self.activities.values():
            if activity.status is not ActivityStatus.PENDING:
                continue
            deps = [self.activities[d] for d in activity.depends_on]
            if all(d.status is ActivityStatus.SUCCEEDED for d in deps):
                out.append(activity)
        return out

    @property
    def done(self) -> bool:
        return all(a.status.terminal for a in self.activities.values())

    @property
    def succeeded(self) -> bool:
        return all(a.status is ActivityStatus.SUCCEEDED for a in self.activities.values())

    @classmethod
    def from_yaml(cls, text: str) -> "Campaign":
        """Author a campaign in YAML.

        ::

            name: eo-ml
            activities:
              - name: download
                kind: compute
                facility: olcf
                capability: laads-download
                parameters: {files: 6}
              - name: preprocess
                kind: compute
                capability: preprocess
                depends_on: [download]
                max_retries: 1
        """
        from repro.util.yamlish import loads as yaml_loads

        doc = yaml_loads(text)
        if not isinstance(doc, dict) or "activities" not in doc:
            raise ValueError("campaign YAML needs 'name' and 'activities'")
        activities = []
        for index, item in enumerate(doc["activities"] or []):
            if not isinstance(item, dict) or "name" not in item:
                raise ValueError(f"activity {index} needs a 'name'")
            kind_text = str(item.get("kind", "compute")).lower()
            try:
                kind = ActivityKind(kind_text)
            except ValueError as exc:
                raise ValueError(
                    f"activity {item['name']!r}: unknown kind {kind_text!r}"
                ) from exc
            activities.append(
                CampaignActivity(
                    name=item["name"],
                    kind=kind,
                    facility=item.get("facility"),
                    capability=item.get("capability", ""),
                    parameters=dict(item.get("parameters") or {}),
                    depends_on=list(item.get("depends_on") or []),
                    max_retries=int(item.get("max_retries", 0)),
                )
            )
        return cls(doc.get("name", "campaign"), activities)

    @property
    def blocked(self) -> bool:
        """True when nothing can make progress but the campaign isn't done
        (a dependency failed permanently)."""
        if self.done:
            return False
        if self.ready():
            return False
        return not any(
            a.status in (ActivityStatus.DISPATCHED, ActivityStatus.RUNNING)
            for a in self.activities.values()
        )
