"""MODIS as a registered :class:`~repro.instruments.Instrument`.

The adapter over the existing package: product resolution delegates to
:func:`repro.modis.constants.resolve_product`, the archive is the
synthetic :class:`LaadsArchive`, and :meth:`load_scene` performs the
exact read-validate-decode sequence the preprocess stage historically
inlined (MOD02 radiances + MOD03 geolocation + MOD06 cloud/land
product), so the golden corpus is unchanged by the indirection.
"""

from __future__ import annotations

from typing import Any

from repro.core.contracts import GRANULE_MOD02, GRANULE_MOD03, GRANULE_MOD06
from repro.instruments.base import Instrument, SceneInputs
from repro.instruments.registry import register_instrument
from repro.modis.archive import LaadsArchive
from repro.modis.constants import (
    GRANULE_MINUTES,
    GRANULES_PER_DAY,
    MINI_SWATH,
    resolve_product,
)
from repro.netcdf import read as nc_read

__all__ = ["ModisInstrument"]


class ModisInstrument(Instrument):
    """Polar-orbiting swath imager, 5-minute granules via LAADS DAAC."""

    name = "modis"
    title = "MODIS (Terra/Aqua) via LAADS DAAC"
    archive_host = "laads"
    default_products = ("MOD021KM", "MOD03", "MOD06_L2")
    granules_per_day = GRANULES_PER_DAY
    cadence_minutes = GRANULE_MINUTES
    default_tile_size = MINI_SWATH.tile_size

    def resolve_product(self, name: str) -> str:
        return resolve_product(name).short_name

    def build_archive(self, seed: int = 0) -> LaadsArchive:
        return LaadsArchive(seed=seed)

    def load_scene(self, granules: Any) -> SceneInputs:
        mod02 = nc_read(granules.path_for("021KM"))
        mod03 = nc_read(granules.path_for("03"))
        mod06 = nc_read(granules.path_for("06_L2"))
        # Interface validation (published contracts, Section V-A): reject
        # malformed inputs at the stage boundary.
        GRANULE_MOD02.validate(mod02)
        GRANULE_MOD03.validate(mod03)
        GRANULE_MOD06.validate(mod06)
        return SceneInputs(
            radiance=mod02["radiance"].data,
            cloud_mask=mod06["cloud_mask"].data.astype(bool),
            land_mask=mod06["land_mask"].data.astype(bool),
            latitude=mod03["latitude"].data,
            longitude=mod03["longitude"].data,
            optical_thickness=mod06["cloud_optical_thickness"].data,
            cloud_top_pressure=mod06["cloud_top_pressure"].data,
            attrs={"true_regime": str(mod02.get_attr("true_regime", "unknown"))},
        )


register_instrument(ModisInstrument())
