"""Solar geometry: zenith angles and the day/night granule split.

MODIS reflective bands (6, 7) carry signal only on the day side; the
paper notes preprocessing time varies with "the availability of certain
information bands during nighttime hours" (Section III).  This module
computes per-pixel solar zenith angles with the standard declination /
hour-angle formulas, classifies granules as day, night, or terminator,
and provides the reflective-band attenuation factor used by the radiance
generator.
"""

from __future__ import annotations

import datetime as dt
from typing import Tuple

import numpy as np

__all__ = [
    "solar_declination",
    "solar_zenith",
    "day_fraction",
    "classify_day_night",
    "reflective_attenuation",
]


def solar_declination(date: dt.date) -> float:
    """Solar declination (degrees) via the Cooper approximation."""
    day_of_year = date.timetuple().tm_yday
    return 23.44 * np.sin(np.deg2rad(360.0 * (284 + day_of_year) / 365.0))


def solar_zenith(
    lat: np.ndarray,
    lon: np.ndarray,
    date: dt.date,
    utc_hours: float,
) -> np.ndarray:
    """Solar zenith angle (degrees) for each (lat, lon) at a UTC time.

    cos(SZA) = sin(lat) sin(dec) + cos(lat) cos(dec) cos(hour angle),
    with the hour angle from local solar time = UTC + lon / 15.
    """
    if not 0.0 <= utc_hours < 24.0:
        raise ValueError(f"utc_hours must be in [0, 24), got {utc_hours}")
    lat_r = np.deg2rad(np.asarray(lat, dtype=np.float64))
    dec_r = np.deg2rad(solar_declination(date))
    local_solar_hours = (utc_hours + np.asarray(lon, dtype=np.float64) / 15.0) % 24.0
    hour_angle = np.deg2rad(15.0 * (local_solar_hours - 12.0))
    cos_sza = np.sin(lat_r) * np.sin(dec_r) + np.cos(lat_r) * np.cos(dec_r) * np.cos(hour_angle)
    return np.rad2deg(np.arccos(np.clip(cos_sza, -1.0, 1.0)))


def day_fraction(sza: np.ndarray, terminator_deg: float = 85.0) -> float:
    """Fraction of pixels on the day side (SZA below the terminator)."""
    sza = np.asarray(sza)
    if sza.size == 0:
        raise ValueError("empty zenith array")
    return float((sza < terminator_deg).mean())


def classify_day_night(sza: np.ndarray, terminator_deg: float = 85.0) -> str:
    """'day' (>90% lit), 'night' (<10% lit), else 'terminator'."""
    lit = day_fraction(sza, terminator_deg)
    if lit > 0.9:
        return "day"
    if lit < 0.1:
        return "night"
    return "terminator"


def reflective_attenuation(sza: np.ndarray, terminator_deg: float = 85.0) -> np.ndarray:
    """Reflective-band illumination factor in [0, 1].

    cos(SZA) on the day side (the first-order irradiance scaling), zero
    past the terminator — night pixels carry no solar signal.
    """
    sza = np.asarray(sza, dtype=np.float64)
    factor = np.cos(np.deg2rad(np.clip(sza, 0.0, 90.0)))
    return np.where(sza < terminator_deg, np.clip(factor, 0.0, 1.0), 0.0)
