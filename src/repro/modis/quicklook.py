"""Quicklook imagery: swath composites and tile-class maps (Fig. 1).

Fig. 1 of the paper shows (a) a MODIS true-colour swath off South America
and (b) the same swath with each ocean-cloud tile coloured by its AICCA
class.  This module renders both from our synthetic data as portable
pixmaps (binary PPM/PGM — zero dependencies, viewable everywhere):

* :func:`swath_composite` — an RGB composite from the generated bands
  (reflective band for brightness, thermal band for cold-top tinting);
* :func:`class_map` — the Fig. 1b analog: the swath grid with selected
  tiles filled in their class colour;
* :func:`class_palette` — 42 visually-spread colours via the golden-ratio
  hue walk;
* :func:`write_ppm` / :func:`write_pgm` — the image writers.
"""

from __future__ import annotations

import colorsys
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "write_ppm",
    "write_pgm",
    "class_palette",
    "swath_composite",
    "class_map",
]


def write_pgm(path: str, gray: np.ndarray) -> int:
    """Write a (H, W) array scaled to 8-bit as binary PGM; returns bytes."""
    gray = np.asarray(gray, dtype=np.float64)
    if gray.ndim != 2:
        raise ValueError("PGM needs a 2-D array")
    lo, hi = float(gray.min()), float(gray.max())
    scaled = np.zeros_like(gray) if hi == lo else (gray - lo) / (hi - lo)
    data = (scaled * 255).astype(np.uint8)
    header = f"P5\n{gray.shape[1]} {gray.shape[0]}\n255\n".encode()
    payload = header + data.tobytes()
    with open(path, "wb") as handle:
        handle.write(payload)
    return len(payload)


def write_ppm(path: str, rgb: np.ndarray) -> int:
    """Write a (H, W, 3) uint8 array as binary PPM; returns bytes."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError("PPM needs a (H, W, 3) array")
    if rgb.dtype != np.uint8:
        rgb = np.clip(rgb, 0, 255).astype(np.uint8)
    header = f"P6\n{rgb.shape[1]} {rgb.shape[0]}\n255\n".encode()
    payload = header + rgb.tobytes()
    with open(path, "wb") as handle:
        handle.write(payload)
    return len(payload)


def class_palette(num_classes: int = 42) -> np.ndarray:
    """(num_classes, 3) uint8 colours, maximally spread hues.

    The golden-ratio hue walk keeps any two nearby class ids visually
    distinct — important when 42 classes share one map.
    """
    if num_classes < 1:
        raise ValueError("need at least one class")
    colors = []
    hue = 0.0
    golden = 0.61803398875
    for index in range(num_classes):
        hue = (hue + golden) % 1.0
        saturation = 0.85 if index % 2 == 0 else 0.6
        value = 0.95 if index % 3 else 0.75
        colors.append(colorsys.hsv_to_rgb(hue, saturation, value))
    return (np.array(colors) * 255).astype(np.uint8)


def swath_composite(
    radiance: np.ndarray,
    band_list: Sequence[int],
    land_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """An RGB (H, W, 3) composite from the generated band stack.

    Reflective band 6 drives brightness (clouds bright), thermal band 31
    drives a blue-cold tint (high tops bluer), land is tinted green-brown
    when a mask is available — a recognisable true-colour-like quicklook.
    """
    radiance = np.asarray(radiance)
    if radiance.ndim != 3:
        raise ValueError("radiance must be (band, line, pixel)")
    bands = list(band_list)
    if len(bands) != radiance.shape[0]:
        raise ValueError("band_list length does not match the band axis")

    def band(number: int) -> np.ndarray:
        if number not in bands:
            raise KeyError(f"band {number} not in granule bands {bands}")
        return radiance[bands.index(number)].astype(np.float64)

    bright = np.clip(band(6), 0.0, 1.0)
    thermal = band(31)
    t_lo, t_hi = float(thermal.min()), float(thermal.max())
    cold = 1.0 - (thermal - t_lo) / (t_hi - t_lo) if t_hi > t_lo else np.zeros_like(thermal)

    red = 0.15 + 0.85 * bright
    green = 0.18 + 0.82 * bright
    blue = 0.25 + 0.60 * bright + 0.15 * cold
    rgb = np.stack([red, green, blue], axis=-1)
    if land_mask is not None:
        land = np.asarray(land_mask, dtype=bool)
        clear_land = land & (bright < 0.3)
        rgb[clear_land] = rgb[clear_land] * 0.4 + np.array([0.25, 0.30, 0.12])
    return np.clip(rgb * 255, 0, 255).astype(np.uint8)


def class_map(
    shape: Tuple[int, int],
    tile_size: int,
    tile_labels: Dict[Tuple[int, int], int],
    num_classes: int = 42,
    background: int = 25,
) -> np.ndarray:
    """The Fig. 1b analog: the swath grid with classified tiles coloured.

    ``tile_labels`` maps (row, col) grid positions to class ids;
    unclassified tiles stay dark.  Grid lines are drawn at tile borders
    so tile extents are visible.
    """
    lines, pixels = shape
    if tile_size < 1:
        raise ValueError("tile size must be >= 1")
    palette = class_palette(num_classes)
    rgb = np.full((lines, pixels, 3), background, dtype=np.uint8)
    for (row, col), label in tile_labels.items():
        y0, x0 = row * tile_size, col * tile_size
        if y0 + tile_size > lines or x0 + tile_size > pixels:
            raise ValueError(f"tile ({row}, {col}) exceeds the raster")
        if not 0 <= label < num_classes:
            raise ValueError(f"label {label} outside [0, {num_classes})")
        rgb[y0 : y0 + tile_size, x0 : x0 + tile_size] = palette[label]
        # A darker border makes adjacent same-class tiles separable.
        rgb[y0, x0 : x0 + tile_size] = rgb[y0, x0 : x0 + tile_size] // 2
        rgb[y0 : y0 + tile_size, x0] = rgb[y0 : y0 + tile_size, x0] // 2
    return rgb
