"""Synthetic cloud scenes and a deterministic synthetic planet.

The paper's data substrate is 850 TB of real MODIS imagery, which is not
available offline.  What the workflow actually *consumes* is the joint
structure of (radiance texture, cloud mask, land/ocean mask): tiles are
selected by ocean/cloud fraction and clustered by texture.  This module
synthesizes that structure:

* :func:`gaussian_random_field` — power-law Gaussian random fields via
  FFT, the standard stochastic model for cloud texture;
* :data:`CLOUD_REGIMES` — a set of physically-motivated cloud regimes
  (closed/open-cell stratocumulus, cirrus, deep convection, ...), each a
  distinct point in (spectral slope, coverage, optical thickness, cloud
  top pressure) space, so downstream clustering has real classes to find;
* :func:`synthesize_scene` — one granule's latent cloud state;
* :func:`land_fraction` / :func:`land_mask` — a fixed synthetic planet
  (deterministic continents from a frozen spherical Fourier series), so
  ocean-only tile selection is stable across the whole system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "gaussian_random_field",
    "CloudRegime",
    "CLOUD_REGIMES",
    "REGIME_NAMES",
    "synthesize_scene",
    "Scene",
    "land_fraction",
    "land_mask",
]


def gaussian_random_field(
    shape: Tuple[int, int],
    spectral_index: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """A standardized 2-D Gaussian random field with power spectrum k^-beta.

    ``spectral_index`` (beta) controls texture: ~1.5 gives choppy,
    cellular fields; ~3.5 gives smooth, large-scale structure.  Output has
    zero mean and unit variance.
    """
    if spectral_index < 0:
        raise ValueError("spectral index must be non-negative")
    ny, nx = shape
    if ny < 2 or nx < 2:
        raise ValueError("field must be at least 2x2")
    ky = np.fft.fftfreq(ny)[:, None]
    kx = np.fft.rfftfreq(nx)[None, :]
    k = np.hypot(ky, kx)
    k[0, 0] = np.inf  # zero the DC mode
    amplitude = k ** (-spectral_index / 2.0)
    noise = rng.normal(size=(ny, kx.shape[1])) + 1j * rng.normal(size=(ny, kx.shape[1]))
    field = np.fft.irfft2(noise * amplitude, s=shape)
    field -= field.mean()
    std = field.std()
    if std < 1e-12:
        return np.zeros(shape)
    return field / std


@dataclass(frozen=True)
class CloudRegime:
    """A canonical cloud regime: one generator mode for scene synthesis.

    The regimes are separated in a four-dimensional parameter space so the
    42-way AICCA clustering has genuine structure to recover; they loosely
    follow the marine cloud taxonomy the AICCA paper discusses
    (stratocumulus variants, cumulus, cirrus, deep convection).
    """

    name: str
    spectral_index: float       # texture slope of the latent field
    coverage: float             # target cloud fraction in [0, 1]
    tau_scale: float            # optical thickness scale (dimensionless)
    ctp_hpa: float              # representative cloud-top pressure
    ctp_spread: float           # CTP modulation amplitude


CLOUD_REGIMES: Dict[str, CloudRegime] = {
    regime.name: regime
    for regime in (
        CloudRegime("closed_cell_sc", 3.2, 0.85, 14.0, 850.0, 40.0),
        CloudRegime("open_cell_sc", 1.8, 0.45, 8.0, 840.0, 60.0),
        CloudRegime("shallow_cumulus", 1.4, 0.25, 4.0, 800.0, 80.0),
        CloudRegime("stratus", 3.8, 0.95, 20.0, 900.0, 25.0),
        CloudRegime("cirrus", 2.6, 0.40, 1.5, 280.0, 50.0),
        CloudRegime("deep_convection", 2.9, 0.70, 45.0, 250.0, 90.0),
        CloudRegime("frontal_multilayer", 2.4, 0.65, 18.0, 550.0, 150.0),
        CloudRegime("broken_trade_cu", 1.6, 0.35, 6.0, 780.0, 70.0),
    )
}

REGIME_NAMES = tuple(CLOUD_REGIMES)


@dataclass(frozen=True)
class Scene:
    """The latent cloud state of one granule (before instrument sampling).

    ``cloud_mask`` is boolean; ``tau`` (optical thickness) and ``ctp``
    (cloud-top pressure, hPa) are only meaningful where the mask is set.
    ``regime`` records the dominant generating regime (ground truth that
    tests and evaluation can check clustering against).
    """

    cloud_mask: np.ndarray
    tau: np.ndarray
    ctp: np.ndarray
    effective_radius: np.ndarray
    regime: str

    @property
    def cloud_fraction(self) -> float:
        return float(self.cloud_mask.mean())


def synthesize_scene(
    shape: Tuple[int, int],
    rng: np.random.Generator,
    regime: str | None = None,
) -> Scene:
    """Generate one latent cloud scene of the given raster shape.

    If ``regime`` is None one is drawn uniformly; a secondary regime is
    blended in ~30 % of scenes to create the ambiguous transitional cases
    real swaths contain.
    """
    if regime is None:
        regime = REGIME_NAMES[int(rng.integers(len(REGIME_NAMES)))]
    if regime not in CLOUD_REGIMES:
        raise KeyError(f"unknown cloud regime {regime!r}; known: {list(REGIME_NAMES)}")
    primary = CLOUD_REGIMES[regime]

    field = gaussian_random_field(shape, primary.spectral_index, rng)
    if rng.uniform() < 0.3:
        other = CLOUD_REGIMES[REGIME_NAMES[int(rng.integers(len(REGIME_NAMES)))]]
        blend = gaussian_random_field(shape, other.spectral_index, rng)
        weight = rng.uniform(0.15, 0.4)
        field = (1 - weight) * field + weight * blend
        field /= max(field.std(), 1e-12)

    # Threshold the latent field at the quantile that realizes the target
    # coverage (exactly, up to the pixel count).
    coverage = float(np.clip(primary.coverage + rng.normal(0.0, 0.05), 0.02, 0.98))
    threshold = np.quantile(field, 1.0 - coverage)
    cloud_mask = field > threshold

    # Optical thickness: lognormal modulation of the latent excess.
    excess = np.clip(field - threshold, 0.0, None)
    tau = primary.tau_scale * (0.3 + excess) * np.exp(rng.normal(0.0, 0.2))
    tau = np.where(cloud_mask, tau, 0.0)

    # Cloud-top pressure: regime level modulated by the field (thicker
    # cloud tends to higher tops = lower pressure).
    ctp = primary.ctp_hpa - primary.ctp_spread * np.tanh(excess)
    ctp = np.where(cloud_mask, ctp, 1013.25)

    # Effective radius (um): marine Sc ~ 10-15 um; grows weakly with tau.
    reff = 8.0 + 4.0 * np.tanh(tau / 10.0) + rng.normal(0.0, 0.5, size=shape)
    reff = np.where(cloud_mask, np.clip(reff, 4.0, 30.0), 0.0)

    return Scene(
        cloud_mask=cloud_mask,
        tau=tau.astype(np.float32),
        ctp=ctp.astype(np.float32),
        effective_radius=reff.astype(np.float32),
        regime=regime,
    )


# ---------------------------------------------------------------------------
# The synthetic planet: a frozen low-order spherical Fourier surface.
# ---------------------------------------------------------------------------

_PLANET_SEED = 20240101
_PLANET_MODES = 10


def _planet_coefficients() -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    rng = np.random.default_rng(_PLANET_SEED)
    orders_lat = rng.integers(1, 5, size=_PLANET_MODES)
    orders_lon = rng.integers(1, 6, size=_PLANET_MODES)
    phases = rng.uniform(0.0, 2 * np.pi, size=_PLANET_MODES)
    phases_lat = rng.uniform(0.0, 2 * np.pi, size=_PLANET_MODES)
    amplitudes = rng.uniform(0.3, 1.0, size=_PLANET_MODES) / np.sqrt(orders_lat + orders_lon)
    return orders_lat, orders_lon, phases, phases_lat, amplitudes


_COEFS = _planet_coefficients()
# Threshold chosen so land covers ~29 % of the globe (like Earth).
_LAND_THRESHOLD = 0.62


def land_fraction(lat: np.ndarray, lon: np.ndarray) -> np.ndarray:
    """A smooth "elevation" in [0, 1]; >= threshold means land.

    Purely a function of position: every component of the system (scene
    synthesis, preprocessing, evaluation) sees the same planet.
    """
    lat = np.asarray(lat, dtype=np.float64)
    lon = np.asarray(lon, dtype=np.float64)
    lat_r = np.deg2rad(lat)
    lon_r = np.deg2rad(lon)
    orders_lat, orders_lon, phases, phases_lat, amplitudes = _COEFS
    surface = np.zeros(np.broadcast(lat_r, lon_r).shape)
    for m_lat, m_lon, phase, phase_lat, amp in zip(
        orders_lat, orders_lon, phases, phases_lat, amplitudes
    ):
        surface = surface + amp * np.sin(m_lon * lon_r + phase) * np.cos(m_lat * lat_r + phase_lat)
    # Squash to [0, 1]; suppress land near the poles a little (oceanic
    # high southern latitudes, like Earth's Southern Ocean).
    squashed = 0.5 * (1.0 + np.tanh(surface))
    polar = 0.15 * np.cos(lat_r) ** 2
    return np.clip(squashed + polar - 0.075, 0.0, 1.0)


def land_mask(lat: np.ndarray, lon: np.ndarray) -> np.ndarray:
    """Boolean land mask on the synthetic planet."""
    return land_fraction(lat, lon) >= _LAND_THRESHOLD
