"""A LAADS-DAAC-like archive: catalog queries and granule retrieval.

NASA's LAADS DAAC serves MODIS granules over HTTPS with a query interface
(product, time span).  :class:`LaadsArchive` reproduces the interface the
workflow needs:

* :meth:`query` — list granule references (name + byte size) for a
  product over a date range, as the download stage's work units;
* :meth:`fetch` — materialize a granule's synthetic content (used by the
  real, laptop-scale execution path);
* byte sizes follow the paper's per-day product volumes, so the simulated
  network path (Fig. 3) sees realistic file-size distributions without
  materializing any data.

An optional :class:`repro.net.http.HttpServer` attachment gives the
archive a simulated NIC so concurrent downloads contend for bandwidth.
"""

from __future__ import annotations

import datetime as dt
import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.modis.constants import GRANULES_PER_DAY, SwathSpec, MINI_SWATH, resolve_product
from repro.modis.granule import EPOCH, GranuleId, generate_granule
from repro.netcdf import Dataset

__all__ = ["GranuleRef", "LaadsArchive"]


@dataclass(frozen=True)
class GranuleRef:
    """A catalog entry: enough to plan and execute a download."""

    gid: GranuleId
    nbytes: int

    @property
    def filename(self) -> str:
        return self.gid.filename


class LaadsArchive:
    """The archive facade.

    ``seed`` fixes both granule content and the size distribution;
    ``swath`` sets the raster scale at which :meth:`fetch` materializes
    content (tests/examples use :data:`MINI_SWATH`; simulations never call
    :meth:`fetch` and work at paper-scale byte counts).
    """

    def __init__(self, seed: int = 0, swath: SwathSpec = MINI_SWATH):
        self.seed = int(seed)
        self.swath = swath

    # -- catalog ------------------------------------------------------------

    def _size_draw(self, gid: GranuleId) -> float:
        digest = hashlib.sha256(f"{self.seed}:size:{gid.key}".encode()).digest()
        return int.from_bytes(digest[:8], "little") / 2**64

    def granule_ref(self, gid: GranuleId) -> GranuleRef:
        spec = resolve_product(gid.product)
        return GranuleRef(gid=gid, nbytes=spec.granule_bytes(self._size_draw(gid)))

    def query(
        self,
        product: str,
        start: dt.date,
        end: Optional[dt.date] = None,
        max_per_day: Optional[int] = None,
    ) -> List[GranuleRef]:
        """Catalog granules of ``product`` with dates in [start, end].

        ``max_per_day`` truncates each day's 288 granules (the benchmarks
        use this to build batches of a target byte size).
        """
        spec = resolve_product(product)
        end = end or start
        if end < start:
            raise ValueError("end date before start date")
        if start < EPOCH:
            raise ValueError(f"archive begins at {EPOCH.isoformat()}")
        per_day = GRANULES_PER_DAY if max_per_day is None else min(max_per_day, GRANULES_PER_DAY)
        refs: List[GranuleRef] = []
        day = start
        while day <= end:
            for index in range(per_day):
                gid = GranuleId(product=spec.short_name, date=day, index=index)
                refs.append(self.granule_ref(gid))
            day += dt.timedelta(days=1)
        return refs

    def query_batch_by_bytes(
        self,
        products: Sequence[str],
        start: dt.date,
        target_bytes_per_product: int,
    ) -> List[GranuleRef]:
        """Granules of each product from ``start`` onward until each
        product batch reaches ``target_bytes_per_product``.

        This is the workload generator for the Fig. 3 download sweep
        ("file sizes starting from 100MB ... to 30GB" per product).
        """
        refs: List[GranuleRef] = []
        for product in products:
            total = 0
            day = start
            while total < target_bytes_per_product:
                for index in range(GRANULES_PER_DAY):
                    gid = GranuleId(product=resolve_product(product).short_name, date=day, index=index)
                    ref = self.granule_ref(gid)
                    refs.append(ref)
                    total += ref.nbytes
                    if total >= target_bytes_per_product:
                        break
                day += dt.timedelta(days=1)
        return refs

    # -- retrieval ------------------------------------------------------------

    def fetch(self, ref: GranuleRef, bands: Optional[Iterable[int]] = None) -> Dataset:
        """Materialize a granule's content (the laptop-scale 'download')."""
        return generate_granule(
            ref.gid, self.swath, seed=self.seed, bands=tuple(bands) if bands else None
        )

    def total_bytes(self, refs: Iterable[GranuleRef]) -> int:
        return sum(ref.nbytes for ref in refs)
