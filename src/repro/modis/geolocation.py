"""MOD03-style geolocation: latitude/longitude grids for each granule.

A circular sun-synchronous orbit model (inclination 98.2 deg, period
~98.9 min — Terra/Aqua class) is propagated to get the ground track; each
swath line's pixels are laid out cross-track on the sphere.  The result is
a plausible (lat, lon) grid per 5-minute granule with the real
products' key properties: pole-to-pole coverage, westward drift of
successive orbits, and a ~2330 km cross-track extent.

Everything is a pure function of (granule index, day), so geolocation is
reproducible and consistent between the MOD02/MOD06 generators that share
it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.modis.constants import GRANULE_MINUTES, GRANULES_PER_DAY, SwathSpec

__all__ = ["orbit_track", "granule_geolocation", "SWATH_HALF_WIDTH_KM"]

EARTH_RADIUS_KM = 6371.0
ORBIT_PERIOD_S = 98.88 * 60.0
INCLINATION_DEG = 98.2
EARTH_ROT_RATE = 2.0 * np.pi / 86164.0  # sidereal day
SWATH_HALF_WIDTH_KM = 2330.0 / 2.0


def orbit_track(times_s: np.ndarray, ascending_node_lon_deg: float = 0.0) -> Tuple[np.ndarray, np.ndarray]:
    """Sub-satellite (lat, lon) in degrees at the given times (seconds).

    Standard circular-orbit ground-track equations; the retrograde
    inclination (> 90 deg) yields the sun-synchronous westward regression.
    """
    times_s = np.asarray(times_s, dtype=np.float64)
    incline = np.deg2rad(INCLINATION_DEG)
    theta = 2.0 * np.pi * times_s / ORBIT_PERIOD_S  # argument from ascending node
    lat = np.arcsin(np.clip(np.sin(incline) * np.sin(theta), -1.0, 1.0))
    lon = (
        np.deg2rad(ascending_node_lon_deg)
        + np.arctan2(np.cos(incline) * np.sin(theta), np.cos(theta))
        - EARTH_ROT_RATE * times_s
    )
    lon = (lon + np.pi) % (2.0 * np.pi) - np.pi
    return np.rad2deg(lat), np.rad2deg(lon)


def _bearing(lat1: np.ndarray, lon1: np.ndarray, lat2: np.ndarray, lon2: np.ndarray) -> np.ndarray:
    """Initial great-circle bearing (radians) from point 1 to point 2."""
    phi1, phi2 = np.deg2rad(lat1), np.deg2rad(lat2)
    dlon = np.deg2rad(lon2 - lon1)
    y = np.sin(dlon) * np.cos(phi2)
    x = np.cos(phi1) * np.sin(phi2) - np.sin(phi1) * np.cos(phi2) * np.cos(dlon)
    return np.arctan2(y, x)


def _offset(lat: np.ndarray, lon: np.ndarray, bearing: np.ndarray, distance_km: np.ndarray):
    """Destination point after moving ``distance_km`` along ``bearing``."""
    delta = distance_km / EARTH_RADIUS_KM
    phi = np.deg2rad(lat)
    lam = np.deg2rad(lon)
    sin_phi2 = np.sin(phi) * np.cos(delta) + np.cos(phi) * np.sin(delta) * np.cos(bearing)
    sin_phi2 = np.clip(sin_phi2, -1.0, 1.0)
    phi2 = np.arcsin(sin_phi2)
    lam2 = lam + np.arctan2(
        np.sin(bearing) * np.sin(delta) * np.cos(phi),
        np.cos(delta) - np.sin(phi) * sin_phi2,
    )
    lam2 = (lam2 + np.pi) % (2.0 * np.pi) - np.pi
    return np.rad2deg(phi2), np.rad2deg(lam2)


def granule_geolocation(
    granule_index: int,
    spec: SwathSpec,
    day_offset: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """(lat, lon) float32 grids of shape (lines, pixels) for one granule.

    ``granule_index`` in [0, 288) selects the 5-minute window within the
    day; ``day_offset`` shifts the ascending-node longitude so different
    days sample different ground tracks (like the real 16-day repeat).
    """
    if not 0 <= granule_index < GRANULES_PER_DAY:
        raise ValueError(f"granule index must be in [0, {GRANULES_PER_DAY}), got {granule_index}")
    start_s = granule_index * GRANULE_MINUTES * 60.0
    line_times = start_s + np.linspace(0.0, GRANULE_MINUTES * 60.0, spec.lines, endpoint=False)
    # Daily node drift: ~ -25.5 deg/orbit * 14.56 orbits/day modulo 360.
    node_lon = (-360.0 * (86400.0 / ORBIT_PERIOD_S) * day_offset * (ORBIT_PERIOD_S / 86400.0)) % 360.0
    node_lon += 7.9 * day_offset  # small extra drift for track diversity
    center_lat, center_lon = orbit_track(line_times, ascending_node_lon_deg=node_lon)

    # Heading along track via a small forward difference.
    ahead_lat, ahead_lon = orbit_track(line_times + 1.0, ascending_node_lon_deg=node_lon)
    heading = _bearing(center_lat, center_lon, ahead_lat, ahead_lon)

    # Cross-track sample positions, symmetric about nadir.
    cross_km = np.linspace(-SWATH_HALF_WIDTH_KM, SWATH_HALF_WIDTH_KM, spec.pixels)
    perp = heading[:, None] + np.pi / 2.0
    lat_grid, lon_grid = _offset(
        center_lat[:, None],
        center_lon[:, None],
        perp,
        cross_km[None, :],
    )
    return lat_grid.astype(np.float32), lon_grid.astype(np.float32)
