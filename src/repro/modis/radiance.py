"""MOD02-style calibrated radiance synthesis.

Maps a latent cloud :class:`~repro.modis.synthesis.Scene` plus the surface
(land/ocean, latitude-dependent surface temperature) to per-band imagery:

* **Reflective bands** (1.6 um band 6, 2.1 um band 7): cloud reflectance
  grows with optical thickness tau as tau / (tau + gamma) over a dark ocean
  / brighter land background, with band-dependent gamma (band 7 saturates
  faster, giving tau-dependent band ratios like real liquid clouds);
* **Emissive bands** (3.75 um band 20, 6.7-8.5 um bands 28/29, 11 um band
  31): brightness temperature follows cloud-top pressure through a
  standard-atmosphere lapse, so high cloud is cold and low cloud is warm.

The texture of the output therefore carries the regime signal (coverage,
slope, tau, CTP) that the RICC clustering downstream must recover.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.modis.constants import AICCA_BANDS, BAND_WAVELENGTHS_UM
from repro.modis.synthesis import Scene

__all__ = ["band_radiance", "scene_radiances", "brightness_temperature_from_ctp"]

_REFLECTIVE_GAMMA = {6: 8.0, 7: 5.0}
_OCEAN_ALBEDO = {6: 0.04, 7: 0.03}
_LAND_ALBEDO = {6: 0.22, 7: 0.18}
_EMISSIVE_OFFSET = {20: 6.0, 27: -28.0, 28: -22.0, 29: -4.0, 31: 0.0, 32: -1.5}

SCALE_HEIGHT_KM = 8.4
LAPSE_K_PER_KM = 6.5
SURFACE_T0 = 288.15
SURFACE_P0 = 1013.25


def brightness_temperature_from_ctp(ctp_hpa: np.ndarray) -> np.ndarray:
    """Approximate cloud-top temperature (K) from cloud-top pressure (hPa).

    Standard-atmosphere inversion: z = -H ln(p / p0), T = T0 - Gamma z,
    clipped at the tropopause (~216 K).
    """
    ctp = np.clip(np.asarray(ctp_hpa, dtype=np.float64), 50.0, SURFACE_P0)
    z_km = -SCALE_HEIGHT_KM * np.log(ctp / SURFACE_P0)
    return np.clip(SURFACE_T0 - LAPSE_K_PER_KM * z_km, 216.0, SURFACE_T0)


def _surface_temperature(lat: np.ndarray) -> np.ndarray:
    """Zonally symmetric surface temperature (K): warm tropics, cold poles."""
    return 301.0 - 45.0 * np.sin(np.deg2rad(np.abs(lat))) ** 2


def band_radiance(
    band: int,
    scene: Scene,
    land: np.ndarray,
    lat: np.ndarray,
    rng: np.random.Generator,
    illumination: np.ndarray | None = None,
) -> np.ndarray:
    """Synthesize one band's imagery (float32, arbitrary calibrated units).

    Reflective bands return reflectance-like values in [0, ~1]; emissive
    bands return brightness temperatures scaled to a comparable range
    (T/300), keeping all channels O(1) for the autoencoder.

    ``illumination`` (from :func:`repro.modis.solar.reflective_attenuation`)
    scales the solar bands: zero on the night side, cos(SZA) by day.
    Emissive bands are unaffected — exactly the day/night band-availability
    asymmetry the paper's preprocessing contends with.
    """
    if band not in BAND_WAVELENGTHS_UM:
        raise KeyError(f"unknown MODIS band {band}")
    mask = scene.cloud_mask
    if band in _REFLECTIVE_GAMMA:
        gamma = _REFLECTIVE_GAMMA[band]
        background = np.where(land, _LAND_ALBEDO[band], _OCEAN_ALBEDO[band])
        cloud_reflectance = scene.tau / (scene.tau + gamma)
        image = np.where(mask, np.maximum(cloud_reflectance, background), background)
        if illumination is not None:
            image = image * illumination
        noise_scale = 0.01
    elif band in _EMISSIVE_OFFSET or BAND_WAVELENGTHS_UM[band] > 3.0:
        offset = _EMISSIVE_OFFSET.get(band, 0.0)
        surface_t = _surface_temperature(lat) + np.where(land, 4.0, 0.0)
        cloud_t = brightness_temperature_from_ctp(scene.ctp)
        # Thin cloud is semi-transparent in the window bands: blend by
        # emissivity 1 - exp(-tau).
        emissivity = 1.0 - np.exp(-np.clip(scene.tau, 0.0, 50.0))
        top = emissivity * cloud_t + (1.0 - emissivity) * surface_t
        image = (np.where(mask, top, surface_t) + offset) / 300.0
        noise_scale = 0.003
    else:
        # Other solar bands: generic reflectance model.
        background = np.where(land, 0.2, 0.05)
        image = np.where(mask, np.maximum(scene.tau / (scene.tau + 10.0), background), background)
        noise_scale = 0.01
    image = image + rng.normal(0.0, noise_scale, size=image.shape)
    return image.astype(np.float32)


def scene_radiances(
    scene: Scene,
    land: np.ndarray,
    lat: np.ndarray,
    rng: np.random.Generator,
    bands: Sequence[int] = AICCA_BANDS,
    illumination: np.ndarray | None = None,
) -> Dict[int, np.ndarray]:
    """All requested bands for one scene, keyed by band number."""
    return {
        band: band_radiance(band, scene, land, lat, rng, illumination=illumination)
        for band in bands
    }
