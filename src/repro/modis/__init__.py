"""Synthetic MODIS products and a LAADS-DAAC-like archive.

Substitutes for the paper's NASA data dependency: deterministic synthetic
swaths (cloud scenes + geolocation + derived cloud products) with the real
products' structure, naming, and byte-size distributions.
"""

from repro.modis.archive import GranuleRef, LaadsArchive
from repro.modis.constants import (
    AICCA_BANDS,
    AICCA_NUM_CLASSES,
    GRANULES_PER_DAY,
    MINI_SWATH,
    OCEAN_CLOUD_THRESHOLD,
    PAPER_SWATH,
    PRODUCTS,
    SwathSpec,
    TILE_SIZE,
    resolve_product,
)
from repro.modis.geolocation import granule_geolocation, orbit_track
from repro.modis.granule import EPOCH, GranuleId, generate_granule
from repro.modis.solar import (
    classify_day_night,
    day_fraction,
    reflective_attenuation,
    solar_declination,
    solar_zenith,
)
from repro.modis.synthesis import (
    CLOUD_REGIMES,
    REGIME_NAMES,
    Scene,
    gaussian_random_field,
    land_fraction,
    land_mask,
    synthesize_scene,
)

__all__ = [
    "LaadsArchive",
    "GranuleRef",
    "GranuleId",
    "generate_granule",
    "EPOCH",
    "SwathSpec",
    "PAPER_SWATH",
    "MINI_SWATH",
    "TILE_SIZE",
    "AICCA_BANDS",
    "AICCA_NUM_CLASSES",
    "GRANULES_PER_DAY",
    "OCEAN_CLOUD_THRESHOLD",
    "PRODUCTS",
    "resolve_product",
    "granule_geolocation",
    "orbit_track",
    "synthesize_scene",
    "Scene",
    "gaussian_random_field",
    "land_fraction",
    "land_mask",
    "CLOUD_REGIMES",
    "REGIME_NAMES",
    "solar_zenith",
    "solar_declination",
    "classify_day_night",
    "day_fraction",
    "reflective_attenuation",
]
