"""MODIS instrument, product, and AICCA constants.

Values follow Section II of the paper and the underlying AICCA/RICC
publications: the MODIS instruments image a ~2330 km x 2030 km swath in 36
spectral bands (0.4-14.4 um), binned into 5-minute granules (up to 288 per
day); AICCA consumes 128 x 128-pixel, 6-channel ocean-cloud tiles and
assigns one of 42 cloud classes.

Per-day product volumes (MOD02 ~= 32 GB, MOD03 ~= 8.4 GB, MOD06 ~= 18 GB;
Section III "Data download") give the per-granule size model used by the
archive and network simulators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "SWATH_LINES",
    "SWATH_PIXELS",
    "NUM_BANDS",
    "TILE_SIZE",
    "AICCA_BANDS",
    "AICCA_NUM_CLASSES",
    "GRANULES_PER_DAY",
    "GRANULE_MINUTES",
    "OCEAN_CLOUD_THRESHOLD",
    "BAND_WAVELENGTHS_UM",
    "ProductSpec",
    "PRODUCTS",
    "SwathSpec",
    "PAPER_SWATH",
    "MINI_SWATH",
]

# Full MODIS L1B swath geometry (1 km resolution).
SWATH_LINES = 2030
SWATH_PIXELS = 1354
NUM_BANDS = 36

# AICCA tile geometry: 128 x 128 pixels x 6 channels (Section II-B).
TILE_SIZE = 128
# The six MODIS bands used by RICC/AICCA (Kurihana et al. 2022): two
# shortwave window bands, one mid-IR, two water-vapour, one thermal window.
AICCA_BANDS: Tuple[int, ...] = (6, 7, 20, 28, 29, 31)
AICCA_NUM_CLASSES = 42

# Five-minute granules; 24 h * 60 / 5 = 288 per instrument-day.
GRANULES_PER_DAY = 288
GRANULE_MINUTES = 5

# "ocean cloud tile selection defined as > 30% cloud pixels over only
# ocean regions" (Section II-B).  The constant itself lives with the
# instrument-neutral interfaces (the criterion applies to every source);
# re-exported here for backward compatibility.
from repro.instruments.base import OCEAN_CLOUD_THRESHOLD  # noqa: E402,F401

# Centre wavelengths (um) for the 36 bands (nominal values).
BAND_WAVELENGTHS_UM: Dict[int, float] = {
    1: 0.645, 2: 0.858, 3: 0.469, 4: 0.555, 5: 1.240, 6: 1.640, 7: 2.130,
    8: 0.412, 9: 0.443, 10: 0.488, 11: 0.531, 12: 0.551, 13: 0.667,
    14: 0.678, 15: 0.748, 16: 0.869, 17: 0.905, 18: 0.936, 19: 0.940,
    20: 3.750, 21: 3.959, 22: 3.959, 23: 4.050, 24: 4.465, 25: 4.515,
    26: 1.375, 27: 6.715, 28: 7.325, 29: 8.550, 30: 9.730, 31: 11.030,
    32: 12.020, 33: 13.335, 34: 13.635, 35: 13.935, 36: 14.235,
}


@dataclass(frozen=True)
class ProductSpec:
    """One MODIS product family as served by LAADS DAAC."""

    short_name: str          # e.g. "MOD021KM" (Terra) / "MYD021KM" (Aqua)
    description: str
    mean_granule_bytes: int  # derived from the paper's per-day volumes
    granule_bytes_cv: float  # coefficient of variation of granule size

    def granule_bytes(self, u: float) -> int:
        """Deterministic size for a granule given a uniform draw ``u``.

        A simple two-sided triangular spread around the mean keeps sizes
        positive and reproducible without needing a stateful RNG.
        """
        spread = self.mean_granule_bytes * self.granule_bytes_cv
        return max(1, int(self.mean_granule_bytes + (2.0 * u - 1.0) * spread))


def _per_granule(day_bytes: float) -> int:
    return int(day_bytes / GRANULES_PER_DAY)


# Per-day volumes from Section III: MOD02 ~ 32 GB, MOD03 ~ 8.4 GB,
# MOD06 ~ 18 GB.  MYD* (Aqua) mirror the Terra sizes.
PRODUCTS: Dict[str, ProductSpec] = {}
for _terra, _aqua, _day_gb, _desc in (
    ("MOD021KM", "MYD021KM", 32.0, "Level-1B calibrated radiances, 1 km"),
    ("MOD03", "MYD03", 8.4, "Geolocation fields, 1 km"),
    ("MOD06_L2", "MYD06_L2", 18.0, "Atmosphere Level-2 cloud product"),
):
    for _name in (_terra, _aqua):
        PRODUCTS[_name] = ProductSpec(
            short_name=_name,
            description=_desc,
            mean_granule_bytes=_per_granule(_day_gb * 10**9),
            granule_bytes_cv=0.25,
        )

#: Canonical short aliases used throughout the paper's text.
PRODUCT_ALIASES = {
    "MOD02": "MOD021KM",
    "MYD02": "MYD021KM",
    "MOD03": "MOD03",
    "MYD03": "MYD03",
    "MOD06": "MOD06_L2",
    "MYD06": "MYD06_L2",
}


def resolve_product(name: str) -> ProductSpec:
    """Look up a product by canonical or alias name."""
    canonical = PRODUCT_ALIASES.get(name, name)
    if canonical not in PRODUCTS:
        raise KeyError(
            f"unknown MODIS product {name!r}; known: {sorted(PRODUCTS)} "
            f"(aliases: {sorted(PRODUCT_ALIASES)})"
        )
    return PRODUCTS[canonical]


@dataclass(frozen=True)
class SwathSpec:
    """Swath raster geometry, parameterized so tests can run downscaled.

    ``PAPER_SWATH`` is the real instrument geometry; ``MINI_SWATH`` keeps
    the same aspect and tile divisibility at 1/8 linear scale for fast
    tests and examples.
    """

    lines: int
    pixels: int
    tile_size: int

    def __post_init__(self) -> None:
        if self.lines < self.tile_size or self.pixels < self.tile_size:
            raise ValueError("swath smaller than one tile")
        if self.tile_size < 2:
            raise ValueError("tile size must be >= 2")

    @property
    def tile_rows(self) -> int:
        """Number of whole tile rows (partial edge tiles are discarded)."""
        return self.lines // self.tile_size

    @property
    def tile_cols(self) -> int:
        return self.pixels // self.tile_size

    @property
    def max_tiles(self) -> int:
        return self.tile_rows * self.tile_cols


PAPER_SWATH = SwathSpec(lines=SWATH_LINES, pixels=SWATH_PIXELS, tile_size=TILE_SIZE)
MINI_SWATH = SwathSpec(lines=256, pixels=176, tile_size=16)
