"""Granule identity, naming, and product file generation.

LAADS DAAC names granules ``<PRODUCT>.A<YYYY><DDD>.<HHMM>.<CCC>.<PROD>.hdf``
(e.g. ``MOD021KM.A2022001.0000.061.2022002183245.hdf``).  This module
implements that naming plus the generation of the three product files the
workflow consumes — MOD02 (radiances), MOD03 (geolocation), MOD06 (cloud
product) — as :class:`repro.netcdf.Dataset` objects whose *content* is
synthesized deterministically from (product, date, granule index, seed).

Determinism contract: the latent cloud scene depends on (date, index,
seed) but **not** on the product, so MOD02 and MOD06 for the same granule
are physically consistent — exactly the property preprocessing relies on
when it fuses the three products (Section III, stage 2).
"""

from __future__ import annotations

import datetime as dt
import hashlib
import re
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.modis import solar, synthesis
from repro.modis.constants import (
    AICCA_BANDS,
    GRANULE_MINUTES,
    GRANULES_PER_DAY,
    SwathSpec,
    resolve_product,
)
from repro.modis.geolocation import granule_geolocation
from repro.modis.radiance import scene_radiances
from repro.netcdf import Dataset

__all__ = ["GranuleId", "generate_granule", "EPOCH"]

EPOCH = dt.date(2000, 2, 24)  # Terra first-light, the archive's first day

_FILENAME_RE = re.compile(
    r"^(?P<product>[A-Z0-9_]+)\.A(?P<year>\d{4})(?P<doy>\d{3})\.(?P<hhmm>\d{4})"
    r"\.(?P<collection>\d{3})\.(?P<proc>\d{13})\.hdf$"
)


@dataclass(frozen=True, order=True)
class GranuleId:
    """Identity of one 5-minute granule of one product."""

    product: str
    date: dt.date
    index: int  # 0..287 within the day
    collection: str = "061"

    def __post_init__(self) -> None:
        resolve_product(self.product)  # validates
        if not 0 <= self.index < GRANULES_PER_DAY:
            raise ValueError(f"granule index out of range: {self.index}")

    @property
    def hhmm(self) -> str:
        minutes = self.index * GRANULE_MINUTES
        return f"{minutes // 60:02d}{minutes % 60:02d}"

    @property
    def day_of_year(self) -> int:
        return self.date.timetuple().tm_yday

    @property
    def filename(self) -> str:
        # The processing timestamp is deterministic: two days after
        # acquisition at a pseudo-random-but-fixed second of day.
        proc_date = self.date + dt.timedelta(days=2)
        digest = int(hashlib.sha256(self.key.encode()).hexdigest()[:6], 16)
        proc_s = digest % 86400
        proc = (
            f"{proc_date.year:04d}{proc_date.timetuple().tm_yday:03d}"
            f"{proc_s // 3600:02d}{(proc_s % 3600) // 60:02d}{proc_s % 60:02d}"
        )
        return (
            f"{self.product}.A{self.date.year:04d}{self.day_of_year:03d}"
            f".{self.hhmm}.{self.collection}.{proc}.hdf"
        )

    @property
    def key(self) -> str:
        """A stable identity string (product + acquisition time)."""
        return f"{self.product}.A{self.date.isoformat()}.{self.index:03d}"

    @property
    def satellite(self) -> str:
        """'terra' for MOD* products, 'aqua' for MYD*."""
        return "aqua" if self.product.startswith("MY") else "terra"

    @property
    def scene_key(self) -> str:
        """Identity of the underlying observed scene.

        Product-independent (MOD02/MOD03/MOD06 of one acquisition share
        it) but satellite-*dependent*: Terra and Aqua cross the equator
        three hours apart, so the same 5-minute slot sees different
        scenes on the two instruments.
        """
        return f"scene.{self.satellite}.{self.date.isoformat()}.{self.index:03d}"

    @classmethod
    def parse(cls, filename: str) -> "GranuleId":
        match = _FILENAME_RE.match(filename)
        if match is None:
            raise ValueError(f"not a LAADS granule filename: {filename!r}")
        year = int(match.group("year"))
        date = dt.date(year, 1, 1) + dt.timedelta(days=int(match.group("doy")) - 1)
        hhmm = match.group("hhmm")
        index = (int(hhmm[:2]) * 60 + int(hhmm[2:])) // GRANULE_MINUTES
        return cls(
            product=match.group("product"),
            date=date,
            index=index,
            collection=match.group("collection"),
        )


def _scene_rng(gid: GranuleId, seed: int) -> np.random.Generator:
    digest = hashlib.sha256(f"{seed}:{gid.scene_key}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def _product_rng(gid: GranuleId, seed: int, purpose: str) -> np.random.Generator:
    digest = hashlib.sha256(f"{seed}:{gid.key}:{purpose}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def generate_granule(
    gid: GranuleId,
    spec: SwathSpec,
    seed: int = 0,
    bands: Optional[Sequence[int]] = None,
) -> Dataset:
    """Materialize one product granule as a NetCDF dataset.

    The family of ``gid.product`` decides the layout:

    * ``*021KM``: float32 ``radiance`` (band, line, pixel) for the AICCA
      bands (or ``bands`` if given), band list in attribute ``band_list``;
    * ``*03``: float32 ``latitude`` / ``longitude`` (line, pixel);
    * ``*06_L2``: int8 ``cloud_mask``, float32 ``cloud_optical_thickness``,
      ``cloud_top_pressure``, ``cloud_effective_radius``.

    Every dataset carries global attributes recording identity and the
    ground-truth generating regime (used only by evaluation/tests, the way
    a labelled validation set would be).
    """
    family = gid.product.lstrip("MYOD")  # "021KM", "03", "06_L2"
    day_offset = (gid.date - EPOCH).days
    lat, lon = granule_geolocation(gid.index, spec, day_offset=day_offset)
    scene = synthesis.synthesize_scene((spec.lines, spec.pixels), _scene_rng(gid, seed))
    land = synthesis.land_mask(lat, lon)
    utc_hours = (gid.index * GRANULE_MINUTES) / 60.0
    sza = solar.solar_zenith(lat, lon, gid.date, utc_hours)

    ds = Dataset()
    ds.create_dimension("line", spec.lines)
    ds.create_dimension("pixel", spec.pixels)
    ds.set_attr("granule", gid.filename)
    ds.set_attr("product", gid.product)
    ds.set_attr("acquisition_date", gid.date.isoformat())
    ds.set_attr("granule_index", gid.index)
    ds.set_attr("true_regime", scene.regime)
    ds.set_attr("day_night", solar.classify_day_night(sza))
    ds.set_attr("day_fraction", float(solar.day_fraction(sza)))

    if family == "021KM":
        use_bands = tuple(bands) if bands is not None else AICCA_BANDS
        ds.create_dimension("band", len(use_bands))
        rng = _product_rng(gid, seed, "radiance")
        images = scene_radiances(
            scene, land, lat, rng, bands=use_bands,
            illumination=solar.reflective_attenuation(sza),
        )
        stack = np.stack([images[b] for b in use_bands])
        ds.create_variable(
            "radiance",
            "f4",
            ("band", "line", "pixel"),
            stack,
            attributes={"units": "scaled", "long_name": "calibrated scaled radiance"},
        )
        ds.set_attr("band_list", np.array(use_bands, dtype=np.int32))
    elif family == "03":
        ds.create_variable(
            "latitude", "f4", ("line", "pixel"), lat, attributes={"units": "degrees_north"}
        )
        ds.create_variable(
            "longitude", "f4", ("line", "pixel"), lon, attributes={"units": "degrees_east"}
        )
    elif family == "06_L2":
        ds.create_variable(
            "cloud_mask",
            "i1",
            ("line", "pixel"),
            scene.cloud_mask.astype(np.int8),
            attributes={"flag_meanings": "0=clear 1=cloudy"},
        )
        ds.create_variable(
            "cloud_optical_thickness", "f4", ("line", "pixel"), scene.tau,
            attributes={"units": "1"},
        )
        ds.create_variable(
            "cloud_top_pressure", "f4", ("line", "pixel"), scene.ctp,
            attributes={"units": "hPa"},
        )
        ds.create_variable(
            "cloud_effective_radius", "f4", ("line", "pixel"), scene.effective_radius,
            attributes={"units": "um"},
        )
        ds.create_variable(
            "land_mask",
            "i1",
            ("line", "pixel"),
            land.astype(np.int8),
            attributes={"flag_meanings": "0=ocean 1=land"},
        )
    else:
        raise ValueError(f"unknown product family for {gid.product!r}")
    return ds
