"""Telemetry metrics: counters, gauges, histograms, and snapshots.

Section V-A: "we will integrate advanced provenance tracking and
telemetry tools for real-time workflow insights."  Provenance answers
*where did this artifact come from*; telemetry answers *how is the system
behaving right now*.  This module implements the standard metric triad
with label support and deterministic snapshots — usable both under the
simulation clock and wall time.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelPair = Tuple[Tuple[str, str], ...]


def _labels(labels: Optional[Dict[str, str]]) -> LabelPair:
    return tuple(sorted((labels or {}).items()))


class Counter:
    """A monotonically increasing count, optionally per label set.

    Increments are lock-guarded: concurrent stage threads (the streaming
    plan runner) share one registry, and a racy read-modify-write would
    silently lose counts.
    """

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._values: Dict[LabelPair, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        key = _labels(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_labels(labels), 0.0)

    @property
    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())


class Gauge:
    """A value that moves both ways (queue depth, active workers)."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._values: Dict[LabelPair, float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_labels(labels)] = float(value)

    def add(self, delta: float, **labels: str) -> float:
        key = _labels(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + delta
            return self._values[key]

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_labels(labels), 0.0)


class Histogram:
    """Fixed-bucket histogram with exact count/sum and quantile estimates."""

    DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0)

    def __init__(self, name: str, description: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("buckets must be strictly increasing")
        self.name = name
        self.description = description
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +inf bucket
        self.total = 0.0
        self.count = 0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        self.counts[index] += 1
        self.total += value
        self.count += 1
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no observations")
        return self.total / self.count

    def time(self) -> "_HistogramTimer":
        """Context manager observing the elapsed wall seconds of a block.

        The perf-harness and hot-path instrumentation idiom:

        >>> with registry.histogram("inference.batch_seconds").time():
        ...     run_batch()
        """
        return _HistogramTimer(self)

    def quantile(self, q: float) -> float:
        """Bucket-upper-bound quantile estimate (conservative)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            raise ValueError("no observations")
        target = q * self.count
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= target:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.maximum
        return self.maximum


class _HistogramTimer:
    """Times a ``with`` block into a histogram (see :meth:`Histogram.time`)."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


@dataclass
class MetricsRegistry:
    """A namespace of metrics with snapshot rendering."""

    prefix: str = ""
    _counters: Dict[str, Counter] = field(default_factory=dict)
    _gauges: Dict[str, Gauge] = field(default_factory=dict)
    _histograms: Dict[str, Histogram] = field(default_factory=dict)

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str, description: str = "") -> Counter:
        name = self._qualify(name)
        if name not in self._counters:
            self._counters[name] = Counter(name, description)
        return self._counters[name]

    def gauge(self, name: str, description: str = "") -> Gauge:
        name = self._qualify(name)
        if name not in self._gauges:
            self._gauges[name] = Gauge(name, description)
        return self._gauges[name]

    def histogram(self, name: str, description: str = "",
                  buckets: Sequence[float] = Histogram.DEFAULT_BUCKETS) -> Histogram:
        name = self._qualify(name)
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, description, buckets)
        return self._histograms[name]

    def timer(self, name: str, description: str = "",
              buckets: Sequence[float] = Histogram.DEFAULT_BUCKETS) -> _HistogramTimer:
        """Shorthand: ``registry.timer("x")`` == ``registry.histogram("x").time()``."""
        return self.histogram(name, description, buckets).time()

    def snapshot(self) -> Dict[str, float]:
        """A flat name -> value view (histograms expose count/mean/p95)."""
        out: Dict[str, float] = {}

        def flatten(name: str, values: Dict[LabelPair, float]) -> None:
            for key, value in sorted(values.items()):
                suffix = "{" + ",".join(f"{k}={v}" for k, v in key) + "}" if key else ""
                out[f"{name}{suffix}"] = value

        for name, counter in sorted(self._counters.items()):
            out[name] = counter.total
            if any(key for key in counter._values):
                # The bare name is the cross-label total; only genuinely
                # labelled series get their own {k=v} entries.  (A counter
                # registered at zero unlabelled and then incremented with
                # labels must not report the stale unlabelled zero.)
                flatten(
                    name, {k: v for k, v in counter._values.items() if k}
                )
        for name, gauge in sorted(self._gauges.items()):
            flatten(name, gauge._values)
        for name, histogram in sorted(self._histograms.items()):
            out[f"{name}.count"] = histogram.count
            if histogram.count:
                out[f"{name}.mean"] = histogram.mean
                out[f"{name}.p95"] = histogram.quantile(0.95)
        return out

    def render(self) -> str:
        lines = []
        for name, value in self.snapshot().items():
            lines.append(f"{name} {value:.6g}")
        return "\n".join(lines)
