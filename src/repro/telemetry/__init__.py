"""Telemetry: counters, gauges, histograms for workflow insight (S V-A)."""

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]
