"""Glue between the pipeline stages and the content-addressed store.

One place owns how the cache is opened from a workflow config, how the
stages' *logical* keys are spelled (the derived-key table of
:class:`repro.cas.store.CASStore`), and how a coarse tile file gets its
full-fidelity second pass.  Keeping the vocabulary here means the six
drivers, the pool workers, and the co-located site agents can never
disagree about what a cache entry means.

Key grammar (all digests are SHA-256 hex):

``granule:<instrument>:<seed>:<filename>``
    a download's content digest — the archive's deterministic granule,
    so any run of the same catalog query hits.
``tiles:<instrument>:<scene>:ts=..:ct=..:lf=..:cs=..:in=<digests>``
    a preprocess output, keyed by the tiler parameters and the sorted
    digests of the *input* granule files — a changed input or knob can
    never replay a stale tile file.
``refined:<instrument>:<scene>:ts=..:pos=<digest>``
    a full-fidelity re-extraction for one set of low-margin tile
    positions (the progressive-fidelity ladder's second rung).

This module deliberately imports nothing from the rest of
``repro.core`` — stages import it, never the reverse.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cas import CASStore
from repro.instruments.registry import get_instrument
from repro.instruments.tiling import FIDELITY_COARSE, extract_tiles
from repro.util.digest import digest_file

__all__ = [
    "open_store",
    "granule_key",
    "tiles_key",
    "input_digest",
    "parse_source_files",
    "TileRefiner",
]


def open_store(config: Any, chaos: Any = None) -> Optional[CASStore]:
    """The run's CAS, or ``None`` when caching is off.

    Durability follows the journal's knob: a test profile that skips
    fsyncs for speed skips them in the cache too.
    """
    if not getattr(config, "cache_enabled", False):
        return None
    return CASStore(
        config.cache_dir,
        budget_bytes=config.cache_budget_bytes,
        durable=bool(getattr(config, "journal_durable", True)),
        chaos=chaos,
    )


def granule_key(config: Any, filename: str) -> str:
    """Logical key of one archive granule's content."""
    return f"granule:{config.instrument}:{config.seed}:{filename}"


def tiles_key(
    instrument: str,
    scene_key: str,
    tile_size: int,
    cloud_threshold: float,
    max_land_fraction: float,
    coarse_stride: int,
    input_digests: Sequence[str],
) -> str:
    """Logical key of one scene's preprocess output."""
    inputs = ",".join(sorted(input_digests))
    return (
        f"tiles:{instrument}:{scene_key}:ts={tile_size}:ct={cloud_threshold!r}"
        f":lf={max_land_fraction!r}:cs={coarse_stride}:in={inputs}"
    )


def input_digest(path: str, journal: Any = None) -> str:
    """A file's digest, from the manifest when already observed."""
    if journal is not None:
        known = journal.expected_sha(path)
        if known:
            return known
    return digest_file(path)[0]


def parse_source_files(attr: str) -> Dict[str, str]:
    """Decode the tile-file ``source_files`` attribute (prod=path;...)."""
    out: Dict[str, str] = {}
    for part in attr.split(";"):
        product, sep, path = part.partition("=")
        if sep and product and path:
            out[product] = path
    return out


def _attr_str(ds: Any, name: str) -> str:
    value = ds.get_attr(name, "")
    return value if isinstance(value, str) else ""


class _SceneFiles:
    """The ``path_for``/``key`` duck an :class:`Instrument` decodes.

    Mirrors :class:`repro.core.download.GranuleSet` without importing it
    (this module sits below the stages).
    """

    def __init__(self, key: str, paths: Dict[str, str]):
        self.key = key
        self.paths = paths

    def path_for(self, family: str) -> str:
        for product, path in self.paths.items():
            if product.endswith(family):
                return path
        raise KeyError(f"granule set {self.key} has no product family {family!r}")


class TileRefiner:
    """Full-fidelity second pass for low-margin coarse tiles.

    Given a coarse tile file (``fidelity="coarse"`` with stamped
    ``source_files``) and the indices whose classifier margin fell below
    the refinement threshold, re-extract exactly those grid positions
    from the original granules at full resolution.  The refined stack is
    its own CAS object (distinct from the coarse tile file), so a rerun
    refines from the store instead of re-reading the scene.

    Refinement is strictly best-effort: missing source files, a moved
    scene, or any extraction error returns ``None`` and the coarse
    labels stand — same contract as every other cache path.
    """

    def __init__(self, config: Any, cas: Optional[CASStore] = None):
        self.config = config
        self.cas = cas
        self.refined_tiles = 0
        self.refine_failures = 0

    def refine(self, ds: Any, indices: np.ndarray) -> Optional[np.ndarray]:
        """Full-fidelity radiances for ``indices``, or ``None``."""
        try:
            stack = self._refine(ds, indices)
        except Exception:  # noqa: BLE001 - refinement may never sink a file
            stack = None
        if stack is None:
            self.refine_failures += 1
        else:
            self.refined_tiles += int(len(indices))
        return stack

    def _refine(self, ds: Any, indices: np.ndarray) -> Optional[np.ndarray]:
        if _attr_str(ds, "fidelity") != FIDELITY_COARSE:
            return None
        paths = parse_source_files(_attr_str(ds, "source_files"))
        scene_key = _attr_str(ds, "source_granule")
        if not paths or not scene_key:
            return None
        rows = np.asarray(ds["tile_row"].data)[indices].tolist()
        cols = np.asarray(ds["tile_col"].data)[indices].tolist()
        positions: List[Tuple[int, int]] = [
            (int(r), int(c)) for r, c in zip(rows, cols)
        ]
        radiance = np.asarray(ds["radiance"].data)
        tile_size = int(radiance.shape[1])
        bands = int(radiance.shape[3])
        cached = self._load_cached(scene_key, tile_size, bands, positions)
        if cached is not None:
            return cached
        if not all(os.path.exists(path) for path in paths.values()):
            return None
        scene = get_instrument(self.config.instrument).load_scene(
            _SceneFiles(scene_key, paths)
        )
        tiles = extract_tiles(
            radiance=scene.radiance,
            cloud_mask=scene.cloud_mask,
            land_mask=scene.land_mask,
            latitude=scene.latitude,
            longitude=scene.longitude,
            tile_size=tile_size,
            optical_thickness=scene.optical_thickness,
            cloud_top_pressure=scene.cloud_top_pressure,
            cloud_threshold=self.config.cloud_threshold,
            max_land_fraction=self.config.max_land_fraction,
            source=scene_key,
            only_positions=positions,
        )
        by_pos = {(tile.row, tile.col): tile.data for tile in tiles}
        if any(pos not in by_pos for pos in positions):
            return None
        stack = np.stack([by_pos[pos] for pos in positions]).astype(
            np.float32, copy=False
        )
        self._publish(scene_key, tile_size, positions, stack)
        return stack

    # -- the refined stack as its own CAS object ------------------------------

    def _refined_key(
        self, scene_key: str, tile_size: int, positions: Sequence[Tuple[int, int]]
    ) -> str:
        pos_digest = hashlib.sha256(repr(sorted(positions)).encode()).hexdigest()
        return (
            f"refined:{self.config.instrument}:{scene_key}"
            f":ts={tile_size}:pos={pos_digest}"
        )

    def _load_cached(
        self,
        scene_key: str,
        tile_size: int,
        bands: int,
        positions: Sequence[Tuple[int, int]],
    ) -> Optional[np.ndarray]:
        if self.cas is None:
            return None
        record = self.cas.get_key(self._refined_key(scene_key, tile_size, positions))
        if not record or not record.get("digest"):
            return None
        payload = self.cas.load_bytes(record["digest"])
        if payload is None:
            return None
        expected = len(positions) * tile_size * tile_size * bands * 4
        if len(payload) != expected:
            return None
        flat = np.frombuffer(payload, dtype="<f4")
        return flat.reshape(len(positions), tile_size, tile_size, bands).copy()

    def _publish(
        self,
        scene_key: str,
        tile_size: int,
        positions: Sequence[Tuple[int, int]],
        stack: np.ndarray,
    ) -> None:
        if self.cas is None:
            return
        payload = np.ascontiguousarray(stack, dtype="<f4").tobytes()
        digest = hashlib.sha256(payload).hexdigest()
        if self.cas.store_bytes(payload, digest) is not None:
            self.cas.put_key(
                self._refined_key(scene_key, tile_size, positions),
                {"digest": digest, "tiles": len(positions)},
            )
