"""The EO-ML workflow configuration (the user's YAML surface).

Section III: "users configure their workflow through a locally available
YAML file for their queries, specifying their compute endpoint, LAADS
credentials, MODIS product, time span, and local paths".  This module
defines that file's schema and parses it into a typed config object.
"""

from __future__ import annotations

import datetime as dt
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.chaos.plan import FaultPlan
from repro.instruments.base import OCEAN_CLOUD_THRESHOLD
from repro.instruments.registry import get_instrument, get_model
from repro.net.retry import BackoffPolicy
from repro.runtime.channel import DEFAULT_CAPACITY, StreamConfig
from repro.runtime.elastic import ElasticPolicy
from repro.util.config import (
    ConfigError,
    Field,
    Schema,
    boolean,
    integer,
    number,
    positive_int,
    string,
    string_list,
)
from repro.util.yamlish import loads as yaml_loads

__all__ = ["EOMLConfig", "StageWorkers", "load_config", "ConfigError"]


def _date(value: Any) -> dt.date:
    if isinstance(value, dt.date):
        return value
    if not isinstance(value, str):
        raise ValueError(f"expected an ISO date string, got {value!r}")
    return dt.date.fromisoformat(value)


def _fraction(value: Any) -> float:
    result = number(value)
    if not 0.0 <= result <= 1.0:
        raise ValueError(f"expected a fraction in [0, 1], got {result}")
    return result


_ARCHIVE = Schema(
    "archive",
    [
        # Which registered instrument(s) feed the plan.  ``instrument``
        # is the common single-source spelling; ``instruments`` (a list)
        # takes precedence and, with more than one entry, fans the plan
        # out per instrument.  ``products`` applies to the *primary*
        # (first) instrument; other instruments use their defaults.
        Field("instrument", string, required=False, default="modis"),
        Field("instruments", string_list, required=False, default=None),
        Field("products", string_list, required=False, default=None),
        Field("start_date", _date),
        Field("end_date", _date, required=False, default=None),
        Field("max_granules_per_day", positive_int, required=False, default=None),
        Field("seed", integer, required=False, default=0),
    ],
)

_PATHS = Schema(
    "paths",
    [
        Field("staging", string, required=False, default="data/raw"),
        Field("preprocessed", string, required=False, default="data/tiles"),
        Field("transfer_out", string, required=False, default="data/outbox"),
        Field("destination", string, required=False, default="data/orion"),
        Field("quarantine", string, required=False, default="data/quarantine"),
    ],
)

def _non_negative_int(value: Any) -> int:
    result = integer(value)
    if result < 0:
        raise ValueError(f"expected a non-negative integer, got {result}")
    return result


def _positive_or_none_int(value: Any) -> Optional[int]:
    if value is None:
        return None
    result = integer(value)
    if result <= 0:
        raise ValueError(f"expected a positive integer or null, got {result}")
    return result


def _positive_number(value: Any) -> float:
    result = number(value)
    if result <= 0:
        raise ValueError(f"expected a positive number, got {result}")
    return result


_DOWNLOAD = Schema(
    "download",
    [
        Field("workers", positive_int, required=False, default=3),
        Field("retries", _non_negative_int, required=False, default=2),
        Field("skip_existing", boolean, required=False, default=True),
        Field("backoff_base", _positive_number, required=False, default=0.05),
        Field("backoff_cap", _positive_number, required=False, default=2.0),
        Field("backoff_total", _positive_number, required=False, default=15.0),
        Field("breaker_threshold", positive_int, required=False, default=8),
        Field("breaker_reset", _positive_number, required=False, default=5.0),
        Field("on_exhausted", string, required=False, default="raise",
              choices=("raise", "skip")),
    ],
)

_PREPROCESS = Schema(
    "preprocess",
    [
        Field("workers", positive_int, required=False, default=32),
        Field("tile_size", positive_int, required=False, default=16),
        Field("cloud_threshold", _fraction, required=False, default=OCEAN_CLOUD_THRESHOLD),
        Field("max_land_fraction", _fraction, required=False, default=0.0),
        # Progressive fidelity: > 1 extracts tiles at a coarse
        # within-tile stride first; inference refines only the tiles
        # whose classifier margin falls below inference.refine_threshold.
        # 1 (the default) keeps the classic single-fidelity pipeline.
        Field("coarse_stride", positive_int, required=False, default=1),
    ],
)

_INFERENCE = Schema(
    "inference",
    [
        Field("workers", positive_int, required=False, default=1),
        # Which registered label model(s) run over the tiles.  ``model``
        # is the single-model spelling; ``models`` (a list) takes
        # precedence and, with more than one entry, fans the plan out
        # per instrument x model.
        Field("model", string, required=False, default="ricc"),
        Field("models", string_list, required=False, default=None),
        Field("num_classes", positive_int, required=False, default=42),
        Field("model_path", string, required=False, default=None),
        Field("poll_interval", number, required=False, default=0.2),
        Field("batch_files", positive_int, required=False, default=8),
        Field("drain_timeout", _positive_number, required=False, default=300.0),
        # Classifier-margin floor for the progressive-fidelity ladder:
        # coarse tiles whose assignment margin falls below this are
        # re-extracted at full fidelity and re-labelled.  None disables
        # refinement (every coarse label is accepted as final).
        Field("refine_threshold", number, required=False, default=None),
    ],
)

_CACHE = Schema(
    "cache",
    [
        Field("enabled", boolean, required=False, default=False),
        Field("dir", string, required=False, default=None),
        # Size budget for the GC sweep, in bytes; null = unbounded.
        Field("budget_bytes", _positive_or_none_int, required=False, default=None),
    ],
)

_JOURNAL = Schema(
    "journal",
    [
        Field("enabled", boolean, required=False, default=True),
        Field("dir", string, required=False, default=None),
        Field("durable", boolean, required=False, default=True),
    ],
)

_SHIPMENT = Schema(
    "shipment",
    [
        Field("enabled", boolean, required=False, default=True),
        Field("retries", _non_negative_int, required=False, default=2),
        Field("timeout", _positive_number, required=False, default=120.0),
        Field("backoff_base", _positive_number, required=False, default=0.02),
    ],
)

_RUNTIME = Schema(
    "runtime",
    [
        Field("stream", dict, required=False, default={}),
        Field("workers", positive_int, required=False, default=1),
        Field("elastic", dict, required=False, default={}),
    ],
)

_STREAM = Schema(
    "runtime.stream",
    [
        Field("enabled", boolean, required=False, default=False),
        Field("capacity", positive_int, required=False, default=DEFAULT_CAPACITY),
        Field("edges", dict, required=False, default={}),
    ],
)

_ELASTIC = Schema(
    "runtime.elastic",
    [
        Field("enabled", boolean, required=False, default=False),
        Field("min_workers", positive_int, required=False, default=1),
        Field("max_workers", positive_int, required=False, default=4),
        Field("tasks_per_worker_target", _positive_number, required=False, default=2.0),
        Field("idle_retire_seconds", _positive_number, required=False, default=0.5),
    ],
)

_TOP = Schema(
    "workflow",
    [
        Field("name", string, required=False, default="eo-ml"),
        Field("archive", dict, required=True),
        Field("paths", dict, required=False, default={}),
        Field("download", dict, required=False, default={}),
        Field("preprocess", dict, required=False, default={}),
        Field("inference", dict, required=False, default={}),
        Field("shipment", dict, required=False, default={}),
        Field("journal", dict, required=False, default={}),
        Field("runtime", dict, required=False, default={}),
        Field("cache", dict, required=False, default={}),
        Field("chaos", dict, required=False, default=None),
    ],
)


@dataclass(frozen=True)
class StageWorkers:
    """Fig. 6's stage-level worker allocation."""

    download: int
    preprocess: int
    inference: int


@dataclass(frozen=True)
class EOMLConfig:
    """Fully resolved workflow configuration."""

    name: str
    products: List[str]
    start_date: dt.date
    end_date: dt.date
    max_granules_per_day: Optional[int]
    seed: int
    staging: str
    preprocessed: str
    transfer_out: str
    destination: str
    workers: StageWorkers
    download_retries: int
    skip_existing: bool
    tile_size: int
    cloud_threshold: float
    max_land_fraction: float
    num_classes: int
    model_path: Optional[str]
    poll_interval: float
    ship: bool
    # Pluggable instruments & models (repro.instruments): which
    # registered instruments feed the plan and which label models run
    # over each instrument's tiles.  Single entries keep the classic
    # one-branch pipeline byte-identical; multiple entries fan the plan
    # out into one branch per instrument x model (core.branches).
    instruments: Tuple[str, ...] = ("modis",)
    models: Tuple[str, ...] = ("ricc",)
    # The branch tag of a derived per-branch config: the instrument
    # name, or "<instrument>+<model>"; "" on the root config.
    branch: str = ""
    quarantine: str = "data/quarantine"
    # Upper bound on queued tile files fused into one encoder/assign
    # call by the inference micro-batcher (1 disables cross-file fusion).
    inference_batch_files: int = 8
    download_backoff: BackoffPolicy = BackoffPolicy()
    download_on_exhausted: str = "raise"
    breaker_threshold: int = 8
    breaker_reset: float = 5.0
    shipment_retries: int = 2
    shipment_timeout: float = 120.0
    shipment_backoff: BackoffPolicy = BackoffPolicy(base=0.02, max_delay=1.0, max_total=5.0)
    # How long the workflow waits for queued inference work at shutdown.
    inference_drain_timeout: float = 300.0
    # Crash-consistent run journaling (repro.journal): WAL + manifests.
    journal_enabled: bool = True
    journal_dir: str = "data/journal"
    journal_durable: bool = True
    # Streaming dataflow between plan stages (runtime.stream): off by
    # default, so the plan degrades to the classic barrier pipeline.
    stream: StreamConfig = StreamConfig()
    # Horizontal scale-out (runtime.workers / runtime.elastic): number of
    # worker processes sharing the stage work; 1 keeps everything in the
    # parent process.  An enabled elastic policy overrides the fixed
    # count with queue-depth-driven scale-out/in.
    runtime_workers: int = 1
    elastic: ElasticPolicy = ElasticPolicy()
    # Content-addressed artifact cache (repro.cas): a store shared
    # across runs/tenants that short-circuits downloads, re-tiling, and
    # already-delivered shipments.  Off by default.
    cache_enabled: bool = False
    cache_dir: str = "data/cas"
    cache_budget_bytes: Optional[int] = None
    # Progressive fidelity: within-tile subsample stride for the coarse
    # pass (1 = full fidelity only) and the classifier-margin floor
    # below which coarse tiles are re-extracted at full fidelity.
    coarse_stride: int = 1
    refine_threshold: Optional[float] = None
    chaos: Optional[FaultPlan] = None
    raw: Dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def instrument(self) -> str:
        """The primary instrument (the one ``products`` applies to)."""
        return self.instruments[0]

    @property
    def model_name(self) -> str:
        """The primary label model."""
        return self.models[0]


def load_config(source: Mapping[str, Any] | str) -> EOMLConfig:
    """Parse a YAML string or pre-parsed mapping into an EOMLConfig."""
    if isinstance(source, str):
        parsed = yaml_loads(source)
        if not isinstance(parsed, Mapping):
            raise ConfigError("workflow", "configuration must be a mapping")
        raw: Mapping[str, Any] = parsed
    else:
        raw = source
    top = _TOP.validate(raw)
    archive = _ARCHIVE.validate(top["archive"], "archive")
    paths = _PATHS.validate(top["paths"] or {}, "paths")
    download = _DOWNLOAD.validate(top["download"] or {}, "download")
    preprocess = _PREPROCESS.validate(top["preprocess"] or {}, "preprocess")
    inference = _INFERENCE.validate(top["inference"] or {}, "inference")
    shipment = _SHIPMENT.validate(top["shipment"] or {}, "shipment")
    journal = _JOURNAL.validate(top["journal"] or {}, "journal")
    runtime = _RUNTIME.validate(top["runtime"] or {}, "runtime")
    cache = _CACHE.validate(top["cache"] or {}, "cache")
    stream_raw = _STREAM.validate(runtime["stream"] or {}, "runtime.stream")
    try:
        stream = StreamConfig.from_mapping(stream_raw)
    except ValueError as exc:
        raise ConfigError("runtime.stream", str(exc)) from exc
    elastic_raw = _ELASTIC.validate(runtime["elastic"] or {}, "runtime.elastic")
    try:
        elastic = ElasticPolicy.from_mapping(elastic_raw)
    except ValueError as exc:
        raise ConfigError("runtime.elastic", str(exc)) from exc

    end_date = archive["end_date"] or archive["start_date"]
    if end_date < archive["start_date"]:
        raise ConfigError("archive.end_date", "end date before start date")
    if inference["poll_interval"] <= 0:
        raise ConfigError("inference.poll_interval", "must be positive")

    # Resolve instruments and models through the registries: unknown
    # names fail here (with the available set in the message), not deep
    # inside a stage.  Duplicates collapse, order is preserved.
    instrument_key = "archive.instruments" if archive["instruments"] else "archive.instrument"
    instrument_names = list(
        dict.fromkeys(archive["instruments"] or [archive["instrument"]])
    )
    if not instrument_names:
        raise ConfigError("archive.instruments", "at least one instrument is required")
    try:
        resolved_instruments = [get_instrument(name) for name in instrument_names]
    except KeyError as exc:
        raise ConfigError(instrument_key, str(exc).strip('"')) from exc
    primary = resolved_instruments[0]

    model_key = "inference.models" if inference["models"] else "inference.model"
    model_names = list(dict.fromkeys(inference["models"] or [inference["model"]]))
    if not model_names:
        raise ConfigError("inference.models", "at least one model is required")
    try:
        for name in model_names:
            get_model(name)
    except KeyError as exc:
        raise ConfigError(model_key, str(exc).strip('"')) from exc

    # ``products`` names files of the *primary* instrument; unset means
    # the instrument's default scene composition.
    if archive["products"] is None:
        products = list(primary.default_products)
    else:
        if not archive["products"]:
            raise ConfigError("archive.products", "at least one product is required")
        try:
            products = [primary.resolve_product(name) for name in archive["products"]]
        except KeyError as exc:
            raise ConfigError("archive.products", str(exc).strip('"')) from exc

    chaos_plan: Optional[FaultPlan] = None
    if top["chaos"] is not None:
        chaos_plan = FaultPlan.from_mapping(top["chaos"], "chaos")

    # The journal lives beside the other data directories by default so
    # every run's state lands under the same root as its artifacts.
    journal_dir = journal["dir"] or os.path.join(
        os.path.dirname(paths["staging"].rstrip("/")) or ".", "journal",
    )
    # The CAS defaults beside the journal — but is *meant* to be pointed
    # at a volume shared across runs, where the hits come from.
    cache_dir = cache["dir"] or os.path.join(
        os.path.dirname(paths["staging"].rstrip("/")) or ".", "cas",
    )
    if preprocess["coarse_stride"] > 1 and preprocess["tile_size"] % preprocess["coarse_stride"]:
        raise ConfigError(
            "preprocess.coarse_stride",
            f"must divide tile_size ({preprocess['tile_size']}) so coarse and "
            f"full-fidelity tiles cover identical grids",
        )
    if inference["refine_threshold"] is not None and inference["refine_threshold"] < 0:
        raise ConfigError("inference.refine_threshold", "must be non-negative")

    return EOMLConfig(
        name=top["name"],
        products=products,
        instruments=tuple(instrument_names),
        models=tuple(model_names),
        start_date=archive["start_date"],
        end_date=end_date,
        max_granules_per_day=archive["max_granules_per_day"],
        seed=archive["seed"],
        staging=paths["staging"],
        preprocessed=paths["preprocessed"],
        transfer_out=paths["transfer_out"],
        destination=paths["destination"],
        workers=StageWorkers(
            download=download["workers"],
            preprocess=preprocess["workers"],
            inference=inference["workers"],
        ),
        download_retries=download["retries"],
        skip_existing=download["skip_existing"],
        tile_size=preprocess["tile_size"],
        cloud_threshold=preprocess["cloud_threshold"],
        max_land_fraction=preprocess["max_land_fraction"],
        num_classes=inference["num_classes"],
        model_path=inference["model_path"],
        poll_interval=float(inference["poll_interval"]),
        ship=shipment["enabled"],
        quarantine=paths["quarantine"],
        inference_batch_files=inference["batch_files"],
        download_backoff=BackoffPolicy(
            base=download["backoff_base"],
            max_delay=download["backoff_cap"],
            max_total=download["backoff_total"],
            seed=archive["seed"],
        ),
        download_on_exhausted=download["on_exhausted"],
        breaker_threshold=download["breaker_threshold"],
        breaker_reset=download["breaker_reset"],
        shipment_retries=shipment["retries"],
        shipment_timeout=shipment["timeout"],
        inference_drain_timeout=float(inference["drain_timeout"]),
        journal_enabled=journal["enabled"],
        journal_dir=journal_dir,
        journal_durable=journal["durable"],
        stream=stream,
        runtime_workers=runtime["workers"],
        elastic=elastic,
        cache_enabled=cache["enabled"],
        cache_dir=cache_dir,
        cache_budget_bytes=cache["budget_bytes"],
        coarse_stride=preprocess["coarse_stride"],
        refine_threshold=(
            None if inference["refine_threshold"] is None
            else float(inference["refine_threshold"])
        ),
        shipment_backoff=BackoffPolicy(
            base=shipment["backoff_base"],
            max_delay=1.0,
            max_total=10.0,
            seed=archive["seed"],
        ),
        chaos=chaos_plan,
        raw=dict(raw),
    )
