"""The simulated end-to-end EO-ML workflow (Figs. 6 and 7).

Wires every simulated substrate together the way Fig. 2 draws the system:

* LAADS HTTPS server + Globus-Compute download endpoint (3 workers),
* the download barrier, then Parsl-over-Slurm preprocessing on Defiant
  (32 workers across 4 nodes by default),
* an asynchronous monitor process that crawls the Lustre namespace and
  triggers a Globus Flow per batch of fresh tile files,
* the flow runs inference on a single-worker compute endpoint and moves
  labelled files to the transfer-out directory,
* Globus Transfer ships everything to Frontier's Orion.

The run returns the Fig. 6 worker-gauge timeline, the Fig. 7 stage spans
and flow-hop latency, and full event logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.flows import FlowsEngine
from repro.hpc import Facility, build_defiant, build_frontier
from repro.net import HttpServer, WanLink
from repro.compute import SimComputeEndpoint
from repro.pexec import SimHtexExecutor, SimTaskSpec
from repro.sim import Simulation, Tracer
from repro.telemetry import MetricsRegistry
from repro.transfer import SimTransferClient, TransferTask
from repro.util.logging import EventLog

__all__ = ["SimWorkflowParams", "SimWorkflowResult", "SimulatedEOMLWorkflow"]


@dataclass(frozen=True)
class SimWorkflowParams:
    """Knobs for the simulated day-slice run (defaults follow the paper's
    Fig. 6 demonstration: 3 download workers, 32 preprocess workers, 1
    inference worker)."""

    num_granule_sets: int = 24
    download_workers: int = 3
    preprocess_nodes: int = 4
    workers_per_node: int = 8
    inference_workers: int = 1
    tiles_per_file: int = 150
    base_tile_rate: float = 10.52          # tiles/s on one uncontended worker
    granule_set_bytes: int = 202_000_000   # MOD02+MOD03+MOD06 ~ (32+8.4+18)GB/288
    tile_file_bytes: int = 40_000_000
    download_launch_latency: float = 5.63  # Fig. 7: GC launch + LAADS connect + listing
    parsl_start_latency: float = 0.8
    slurm_alloc_latency: float = 1.5
    flow_action_latency: float = 0.05      # Fig. 7: ~50 ms
    inference_seconds_per_file: float = 0.35
    monitor_poll_interval: float = 1.0
    wan_bandwidth: float = 12.5e9
    seed: int = 0
    # Failure injection (0.0 = the paper's healthy-run scenario).
    download_failure_rate: float = 0.0
    download_max_retries: int = 5
    preprocess_failure_rate: float = 0.0
    preprocess_max_retries: int = 5
    # Demand-driven block scale-out (Fig. 6's adaptive allocation) instead
    # of one static block of preprocess_nodes.
    elastic: bool = False


@dataclass
class SimWorkflowResult:
    """Artifacts of one simulated end-to-end run."""

    makespan: float
    tracer: Tracer
    stage_spans: Dict[str, tuple]          # stage -> (start, end)
    flow_hop_latency: float
    tiles: int
    files_shipped: int
    transfer: Optional[TransferTask]
    log: EventLog
    flow_runs: int = 0
    stage_gaps: Dict[str, float] = field(default_factory=dict)
    metrics: Optional[MetricsRegistry] = None


class SimulatedEOMLWorkflow:
    """Builds and runs the full simulated pipeline on one Simulation."""

    def __init__(self, params: Optional[SimWorkflowParams] = None):
        self.params = params or SimWorkflowParams()

    def run(self) -> SimWorkflowResult:
        p = self.params
        sim = Simulation()
        log = EventLog()
        tracer = Tracer()
        metrics = MetricsRegistry(prefix="eo_ml")
        files_counter = metrics.counter("files", "files moved per stage")
        tiles_counter = metrics.counter("tiles", "tiles produced")
        bytes_counter = metrics.counter("bytes", "bytes moved per stage")
        stage_seconds = metrics.histogram(
            "stage_seconds", "per-stage durations",
            buckets=(0.1, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0),
        )

        defiant: Facility = build_defiant(sim, log=log, allocation_latency=p.slurm_alloc_latency)
        frontier: Facility = build_frontier(sim, log=log)
        laads = HttpServer(
            sim, log=log, failure_rate=p.download_failure_rate, seed=p.seed
        )
        link = WanLink(sim, "defiant", "frontier", bandwidth=p.wan_bandwidth, latency=0.01)
        transfer = SimTransferClient(
            sim,
            endpoints={"defiant": defiant.filesystem, "frontier": frontier.filesystem},
            links={("defiant", "frontier"): link},
        )
        download_ep = SimComputeEndpoint(
            sim, "download", max_workers=p.download_workers,
            startup_latency=0.0, task_overhead=0.05, tracer=tracer,
            gauge="workers:download", log=log,
        )
        preprocess = SimHtexExecutor(
            sim, defiant, workers_per_node=p.workers_per_node, tracer=tracer,
            gauge="workers:preprocess", seed=p.seed, log=log, label="preprocess",
            task_failure_rate=p.preprocess_failure_rate,
            max_task_retries=p.preprocess_max_retries,
        )
        inference_ep = SimComputeEndpoint(
            sim, "inference", max_workers=p.inference_workers,
            startup_latency=0.0, task_overhead=0.0, tracer=tracer,
            gauge="workers:inference", log=log,
        )

        flows = FlowsEngine(sim, action_latency=p.flow_action_latency, log=log)
        state = {
            "labelled": [],        # tile files that finished inference
            "flow_runs": 0,
            "spans": {},
            "transfer_task": None,
        }

        def infer_action(engine: FlowsEngine, params: dict):
            """Flow action: run inference for a batch of tile files."""
            paths = params["paths"]

            def task(ctx, path):
                yield ctx.sim.timeout(p.inference_seconds_per_file)
                return path

            futures = [inference_ep.submit(task, path) for path in paths]
            return sim.all_of(futures)

        def move_action(engine: FlowsEngine, params: dict):
            """Flow action: rename labelled files into the transfer-out dir
            (a metadata move, no data traffic — same filesystem)."""
            for path in params["paths"]:
                entry = defiant.filesystem.entry(path)
                out_path = path.replace("/preproc/", "/outbox/")
                entry.path = out_path
                defiant.filesystem.files[out_path] = entry
                del defiant.filesystem.files[path]
                state["labelled"].append(out_path)
            return len(params["paths"])

        flows.register_provider("infer", infer_action)
        flows.register_provider("move", move_action)

        inference_flow = {
            "StartAt": "Infer",
            "States": {
                "Infer": {
                    "Type": "Action", "ActionUrl": "infer",
                    "Parameters": {"paths": "$.paths"}, "ResultPath": "inferred",
                    "Next": "Move",
                },
                "Move": {
                    "Type": "Action", "ActionUrl": "move",
                    "Parameters": {"paths": "$.paths"}, "ResultPath": "moved",
                    "Next": "Done",
                },
                "Done": {"Type": "Succeed"},
            },
        }

        preprocess_done = sim.event()
        all_inferred = sim.event()
        finished = sim.event()
        hop_latencies: List[float] = []

        def download_task(ctx, index):
            attempts = 0
            while True:
                attempts += 1
                try:
                    result = yield laads.request(p.granule_set_bytes, label=f"set{index}")
                    break
                except Exception as exc:  # noqa: BLE001 - HttpError retried
                    if attempts > p.download_max_retries:
                        raise RuntimeError(
                            f"set{index} failed after {attempts} attempts: {exc}"
                        ) from exc
            yield defiant.filesystem.write(f"/staging/set{index}", p.granule_set_bytes)
            return result

        def driver() -> Generator:
            # (1) Download: Globus Compute launch + LAADS connection +
            # file-list configuration (Fig. 7's 5.63 s), then the pulls.
            state["spans"]["download_launch"] = (sim.now, sim.now + p.download_launch_latency)
            yield sim.timeout(p.download_launch_latency)
            dl_start = sim.now
            futures = [download_ep.submit(download_task, i) for i in range(p.num_granule_sets)]
            yield sim.all_of(futures)
            state["spans"]["download"] = (dl_start, sim.now)

            # (2) The barrier held: now preprocess.
            pre_start = sim.now
            yield sim.timeout(p.parsl_start_latency)  # Parsl DFK startup
            specs = [
                SimTaskSpec(
                    label=f"set{i}",
                    base_duration=p.tiles_per_file / p.base_tile_rate,
                    tiles=p.tiles_per_file,
                    output_bytes=p.tile_file_bytes,
                )
                for i in range(p.num_granule_sets)
            ]
            events = preprocess.submit_all(specs)
            if p.elastic:
                from repro.pexec import ElasticStrategy

                strategy = ElasticStrategy(
                    sim, preprocess, nodes_per_block=1,
                    max_blocks=p.preprocess_nodes, poll_interval=1.0,
                )
                strategy.start()
                yield sim.all_of(events)
                strategy.stop()
            else:
                preprocess.scale_out(num_nodes=p.preprocess_nodes)
                yield sim.all_of(events)
            state["spans"]["preprocess"] = (pre_start, sim.now)
            preprocess_done.succeed(None)

        def monitor() -> Generator:
            # (3) The asynchronous crawler: new closed files under /preproc
            # trigger one Flow per batch.
            last_seen = 0.0
            processed = 0
            pending_flows: List = []
            inf_started = None
            while True:
                fresh = defiant.filesystem.created_since("/preproc/", last_seen)
                if fresh:
                    last_seen = max(entry.closed_at for entry in fresh)
                    paths = [entry.path for entry in fresh]
                    processed += len(paths)
                    if inf_started is None:
                        inf_started = sim.now
                    run = flows.run(inference_flow, {"paths": paths})
                    state["flow_runs"] += 1
                    pending_flows.append(run)
                if preprocess_done.triggered and processed >= p.num_granule_sets:
                    break
                yield sim.timeout(p.monitor_poll_interval)
            for run in pending_flows:
                if not run.done.triggered:
                    yield run.done
                for record in run.history:
                    if record.state_type in ("Succeed", "Pass") and record.exited_at is not None:
                        hop_latencies.append(record.duration)
            state["spans"]["inference"] = (
                inf_started if inf_started is not None else sim.now,
                sim.now,
            )
            all_inferred.succeed(None)

        def shipper() -> Generator:
            # (5) Ship labelled files to Orion once inference completes.
            yield all_inferred
            ship_start = sim.now
            pairs = [
                (path, path.replace("/outbox/", "/orion/")) for path in state["labelled"]
            ]
            task = transfer.submit("defiant", "frontier", pairs, label="shipment")
            state["transfer_task"] = task
            yield task.done
            state["spans"]["shipment"] = (ship_start, sim.now)
            finished.succeed(None)

        sim.process(driver(), name="driver")
        sim.process(monitor(), name="monitor")
        sim.process(shipper(), name="shipper")
        sim.run(stop=finished)

        # Telemetry rollup from the finished run.
        for stage, (start, end) in state["spans"].items():
            stage_seconds.observe(end - start)
        files_counter.inc(p.num_granule_sets, stage="download")
        bytes_counter.inc(p.num_granule_sets * p.granule_set_bytes, stage="download")
        files_counter.inc(len(preprocess.results), stage="preprocess")
        tiles_counter.inc(sum(r.tiles for r in preprocess.results))
        files_counter.inc(len(state["labelled"]), stage="inference")
        if state["transfer_task"] is not None:
            bytes_counter.inc(state["transfer_task"].bytes_transferred, stage="shipment")
            files_counter.inc(state["transfer_task"].files_done, stage="shipment")

        return SimWorkflowResult(
            makespan=sim.now,
            tracer=tracer,
            stage_spans=dict(state["spans"]),
            flow_hop_latency=(
                sum(hop_latencies) / len(hop_latencies) if hop_latencies else 0.0
            ),
            tiles=sum(result.tiles for result in preprocess.results),
            files_shipped=len(state["labelled"]),
            transfer=state["transfer_task"],
            log=log,
            flow_runs=state["flow_runs"],
            stage_gaps=_gaps(state["spans"]),
            metrics=metrics,
        )


def _gaps(spans: Dict[str, tuple]) -> Dict[str, float]:
    """Inter-stage gaps in Fig. 7's chain order."""
    order = ["download_launch", "download", "preprocess", "inference", "shipment"]
    gaps: Dict[str, float] = {}
    previous = None
    for stage in order:
        if stage not in spans:
            continue
        if previous is not None:
            gaps[f"{previous}->{stage}"] = max(0.0, spans[stage][0] - spans[previous][1])
        previous = stage
    return gaps
