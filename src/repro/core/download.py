"""Stage 1 — Download: acquire MODIS granules onto the staging filesystem.

Real-execution flavour of Section III stage 1: the catalog query comes
from the workflow YAML (products + time span), downloads fan out over a
Globus-Compute-style worker pool, and each completed file lands in the
staging directory.  "Downloading" from the synthetic LAADS archive means
materializing the granule's deterministic content and writing it as
NetCDF — the same bytes a real pull would deliver, produced locally.

Files are written atomically (temp name + rename) so the downstream
barrier ("preprocessing is delayed until all downloads are complete")
guards against partially-written files exactly as the paper describes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.compute import LocalComputeEndpoint
from repro.core.config import EOMLConfig
from repro.modis import GranuleRef, LaadsArchive
from repro.netcdf import write as nc_write

__all__ = ["GranuleSet", "DownloadReport", "DownloadStage"]


@dataclass(frozen=True)
class GranuleSet:
    """The product files of one (date, granule-index) acquisition."""

    key: str                      # scene key: date + index
    paths: Dict[str, str]         # product short name -> local path

    def path_for(self, family: str) -> str:
        """Find the file of a product family ('021KM', '03', '06_L2')."""
        for product, path in self.paths.items():
            if product.endswith(family):
                return path
        raise KeyError(f"granule set {self.key} has no product family {family!r}")


@dataclass
class DownloadReport:
    """What the download stage produced."""

    granule_sets: List[GranuleSet]
    files: int
    nbytes: int
    seconds: float
    per_file_seconds: List[float] = field(default_factory=list)
    skipped: int = 0        # already present (resume)
    retried: int = 0        # transient fetch failures recovered


class DownloadStage:
    """Parallel downloads via a local worker pool."""

    def __init__(self, config: EOMLConfig, archive: Optional[LaadsArchive] = None):
        self.config = config
        self.archive = archive or LaadsArchive(seed=config.seed)

    def plan(self) -> List[GranuleRef]:
        """The catalog query: every product over the configured span."""
        refs: List[GranuleRef] = []
        for product in self.config.products:
            refs.extend(
                self.archive.query(
                    product,
                    self.config.start_date,
                    self.config.end_date,
                    max_per_day=self.config.max_granules_per_day,
                )
            )
        return refs

    def _fetch_one(self, ref: GranuleRef) -> Tuple[GranuleRef, str, int, float, str]:
        """Download one granule: resumable and retried.

        Returns (ref, path, nbytes, seconds, outcome) with outcome one of
        "fetched", "skipped" (already present from a prior run), or
        "retried" (fetched after >= 1 transient failure).
        """
        started = time.monotonic()
        final_path = os.path.join(self.config.staging, ref.filename + ".nc")
        if self.config.skip_existing and os.path.exists(final_path):
            return ref, final_path, os.path.getsize(final_path), 0.0, "skipped"
        attempts = 0
        while True:
            try:
                ds = self.archive.fetch(ref)
                break
            except (OSError, RuntimeError) as exc:
                attempts += 1
                if attempts > self.config.download_retries:
                    raise RuntimeError(
                        f"download of {ref.filename} failed after "
                        f"{attempts} attempts: {exc}"
                    ) from exc
        temp_path = final_path + ".part"
        nbytes = nc_write(ds, temp_path)
        os.replace(temp_path, final_path)  # atomic close: no partial reads
        outcome = "retried" if attempts else "fetched"
        return ref, final_path, nbytes, time.monotonic() - started, outcome

    def run(
        self,
        on_file: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None,
    ) -> DownloadReport:
        """Execute all downloads; returns the manifest grouped by granule."""
        os.makedirs(self.config.staging, exist_ok=True)
        refs = self.plan()
        started = time.monotonic()
        with LocalComputeEndpoint("download", workers or self.config.workers.download) as pool:
            futures = pool.map(self._fetch_one, refs)
            results = pool.gather(futures)
        by_scene: Dict[str, Dict[str, str]] = {}
        total_bytes = 0
        per_file = []
        skipped = 0
        retried = 0
        for ref, path, nbytes, seconds, outcome in results:
            by_scene.setdefault(ref.gid.scene_key, {})[ref.gid.product] = path
            total_bytes += nbytes
            per_file.append(seconds)
            skipped += outcome == "skipped"
            retried += outcome == "retried"
            if on_file is not None:
                on_file(path)
        granule_sets = [
            GranuleSet(key=key, paths=paths) for key, paths in sorted(by_scene.items())
        ]
        return DownloadReport(
            granule_sets=granule_sets,
            files=len(results),
            nbytes=total_bytes,
            seconds=time.monotonic() - started,
            per_file_seconds=per_file,
            skipped=skipped,
            retried=retried,
        )
