"""Stage 1 — Download: acquire MODIS granules onto the staging filesystem.

Real-execution flavour of Section III stage 1: the catalog query comes
from the workflow YAML (products + time span), downloads fan out over a
Globus-Compute-style worker pool, and each completed file lands in the
staging directory.  "Downloading" from the synthetic LAADS archive means
materializing the granule's deterministic content and writing it as
NetCDF — the same bytes a real pull would deliver, produced locally.

Files are written atomically (temp name + rename) so the downstream
barrier ("preprocessing is delayed until all downloads are complete")
guards against partially-written files exactly as the paper describes.

Each granule is one :class:`~repro.runtime.unit.WorkUnit` executed
through the shared stage runtime: the middleware stack supplies journal
resume/complete, retry with capped backoff, the per-host circuit
breaker, and quarantine policy (``download.on_exhausted``), so this
module only states *what* a download is — fetch + atomic write — and
its policies.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chaos.engine import FaultInjector
from repro.chaos.surfaces import ChaosArchive, chaos_atomic_write
from repro.compute import LocalComputeEndpoint
from repro.core.artifact_cache import granule_key
from repro.core.config import EOMLConfig
from repro.instruments.registry import get_instrument
from repro.journal import WorkflowJournal
from repro.net.retry import CircuitBreaker
from repro.runtime import (
    CACHED,
    FAILED,
    RESUMED,
    RETRIED,
    SKIPPED,
    CachePolicy,
    FailurePolicy,
    RetrySpec,
    UnitResult,
    WorkUnit,
    build_executor,
)
from repro.runtime.proc import ProcWorkerPool, WorkEnvelope

__all__ = ["GranuleSet", "DownloadReport", "DownloadStage"]

# The default archive host (the MODIS/LAADS breaker key); each
# instrument supplies its own via ``Instrument.archive_host``.
ARCHIVE_HOST = "laads"


@dataclass(frozen=True)
class GranuleSet:
    """The product files of one (date, granule-index) acquisition."""

    key: str                      # scene key: date + index
    paths: Dict[str, str]         # product short name -> local path

    def path_for(self, family: str) -> str:
        """Find the file of a product family ('021KM', '03', '06_L2')."""
        for product, path in self.paths.items():
            if product.endswith(family):
                return path
        raise KeyError(f"granule set {self.key} has no product family {family!r}")


@dataclass
class DownloadReport:
    """What the download stage produced."""

    granule_sets: List[GranuleSet]
    files: int
    nbytes: int
    seconds: float
    per_file_seconds: List[float] = field(default_factory=list)
    skipped: int = 0        # already present (skip_existing shortcut)
    resumed: int = 0        # journaled completion verified; zero work redone
    cached: int = 0         # materialized from the content-addressed store
    retried: int = 0        # files that recovered after >= 1 transient failure
    retry_attempts: int = 0  # total retry attempts across all files
    # Bytes that actually crossed the archive link (fetched + retried
    # only) — the honest "bytes moved" figure the cache benchmark gates
    # on; ``nbytes`` keeps counting every byte landed in staging.
    fetched_bytes: int = 0
    failed: List[str] = field(default_factory=list)       # exhausted-retry messages
    incomplete: List[str] = field(default_factory=list)   # scene keys dropped
    breaker_trips: int = 0


class DownloadStage:
    """Parallel downloads via a local worker pool."""

    def __init__(
        self,
        config: EOMLConfig,
        archive: Optional[Any] = None,
        chaos: Optional[FaultInjector] = None,
        sleeper: Callable[[float], None] = time.sleep,
        journal: Optional[WorkflowJournal] = None,
        cache: Optional[Any] = None,
    ):
        self.config = config
        self.chaos = chaos
        self.journal = journal
        self.cache = cache
        instrument = get_instrument(config.instrument)
        self.archive = archive or instrument.build_archive(seed=config.seed)
        self._host = instrument.archive_host
        # Scale-out envelopes carry the branch tag so pool workers
        # rebuild the right per-instrument context ("" = classic kind).
        self._kind = (
            f"download@{config.branch}" if config.branch else "download"
        )
        if chaos is not None:
            self.archive = ChaosArchive(self.archive, chaos, sleeper=sleeper)
        self.backoff = config.download_backoff
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            reset_after=config.breaker_reset,
        )
        self._sleeper = sleeper
        self._executor = build_executor(
            journal=journal, chaos=chaos, sleeper=sleeper, cache=cache
        )

    def plan(self) -> List[Any]:
        """The catalog query: every product over the configured span.

        Refs come back scene-major (all products of one acquisition
        before the next acquisition starts), so whole scenes complete as
        early as possible — a product-major order would finish every
        scene at roughly the same instant, which starves the streaming
        ``download -> preprocess`` hand-off of anything to overlap.
        """
        refs: List[Any] = []
        for product in self.config.products:
            refs.extend(
                self.archive.query(
                    product,
                    self.config.start_date,
                    self.config.end_date,
                    max_per_day=self.config.max_granules_per_day,
                )
            )
        refs.sort(key=lambda ref: (ref.gid.scene_key, ref.gid.product))
        return refs

    def _unit_for(self, ref: Any) -> WorkUnit:
        """One granule download as a work unit."""
        key = ref.filename
        final_path = os.path.join(self.config.staging, ref.filename + ".nc")

        def precheck(ctx) -> Optional[UnitResult]:
            # A replay decision means the file on disk (if any) cannot be
            # trusted: bypass the skip_existing shortcut and re-fetch.
            if not ctx.redo and self.config.skip_existing and os.path.exists(final_path):
                return UnitResult(
                    outcome=SKIPPED,
                    artifact=final_path,
                    value=os.path.getsize(final_path),
                )
            return None

        def body(ctx) -> UnitResult:
            ctx.begin()
            ds = self.archive.fetch(ref)
            nbytes, digest = chaos_atomic_write(
                ds, final_path, chaos=self.chaos, stage="download", key=key
            )
            return UnitResult(
                outcome="done",
                artifact=final_path,
                value=nbytes,
                payload={"sha256": digest, "nbytes": nbytes},
            )

        def cleanup() -> None:
            # Retry budget exhausted: remove any torn temp file so crashed
            # writes leave no litter for the barrier to trip on.
            temp_path = final_path + ".part"
            if os.path.exists(temp_path):
                os.remove(temp_path)

        cache_key = granule_key(self.config, ref.filename)

        def cache_lookup(ctx, cas) -> Optional[UnitResult]:
            # Let the precheck own an already-present file (preserves the
            # "skipped" accounting and does zero cache I/O for it).
            if not ctx.redo and self.config.skip_existing and os.path.exists(final_path):
                return None
            # A catalog-declared content digest wins; otherwise the
            # derived-key table remembers what a prior run fetched.
            digest = getattr(ref, "sha256", None)
            if not digest:
                record = cas.get_key(cache_key) or {}
                digest = record.get("digest")
            if not digest:
                return None
            nbytes = cas.materialize(digest, final_path)
            if nbytes is None:
                return None
            return UnitResult(
                outcome=CACHED,
                artifact=final_path,
                value=nbytes,
                payload={"sha256": digest, "nbytes": nbytes},
            )

        def cache_store(ctx, cas, result) -> None:
            if result.artifact is None:
                return
            payload = result.payload or {}
            digest = cas.store_file(result.artifact, digest=payload.get("sha256"))
            if digest:
                cas.put_key(cache_key, {"digest": digest})

        return WorkUnit(
            stage="download",
            key=key,
            body=body,
            precheck=precheck,
            cache=CachePolicy(lookup=cache_lookup, store=cache_store),
            retry=RetrySpec(
                retries=self.config.download_retries,
                backoff=self.backoff,
                breaker=self.breaker,
                host=self._host,
                retry_on=(OSError, RuntimeError),
                sleeper=self._sleeper,
            ),
            failure=FailurePolicy(
                on_exhausted=(
                    "record" if self.config.download_on_exhausted == "skip" else "raise"
                ),
                describe=lambda attempts, error: (
                    f"download of {ref.filename} failed after {attempts} attempts: {error}"
                ),
                cleanup=cleanup,
            ),
        )

    def _fetch_one(
        self, ref: Any
    ) -> Tuple[GranuleRef, Optional[str], int, float, str, int, Optional[str]]:
        """Download one granule through the stage runtime.

        Returns (ref, path, nbytes, seconds, outcome, retry_attempts,
        error) with outcome one of "fetched", "resumed" (journaled
        completion whose manifest entry verifies — zero work), "skipped"
        (already present from a prior run), "cached" (materialized from
        the content-addressed store instead of the archive), "retried"
        (fetched after >= 1 transient failure), or "failed" (budget
        exhausted, on_exhausted="skip").
        """
        started = time.monotonic()
        final_path = os.path.join(self.config.staging, ref.filename + ".nc")
        result = self._executor.execute(self._unit_for(ref))
        if result.outcome == RESUMED:
            nbytes = int(result.payload.get("nbytes", 0)) or os.path.getsize(final_path)
            return ref, final_path, nbytes, 0.0, "resumed", 0, None
        if result.outcome == SKIPPED:
            return ref, final_path, int(result.value), 0.0, "skipped", 0, None
        if result.outcome == CACHED:
            return ref, final_path, int(result.value), 0.0, "cached", 0, None
        seconds = time.monotonic() - started
        if result.outcome == FAILED:
            return ref, None, 0, seconds, "failed", result.attempts, result.error
        outcome = "retried" if result.outcome == RETRIED else "fetched"
        return ref, final_path, int(result.value), seconds, outcome, result.attempts, None

    def run(
        self,
        on_file: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None,
        on_planned: Optional[Callable[[List[str]], None]] = None,
        on_scene: Optional[Callable[[str, Optional[GranuleSet]], None]] = None,
        pool: Optional["ProcWorkerPool"] = None,
    ) -> DownloadReport:
        """Execute all downloads; returns the manifest grouped by granule.

        Only *complete* scenes (every configured product present) appear
        in ``granule_sets``; scenes that lost a product to a permanent
        failure are quarantined into ``incomplete`` so the preprocessing
        barrier never sees a partial acquisition.

        Streaming hooks: ``on_planned`` receives the sorted scene keys of
        the catalog query before any fetch completes; ``on_scene`` fires
        the moment a scene's last planned product settles — with the
        complete :class:`GranuleSet`, or ``None`` if the scene lost a
        product.  Scenes are announced in *completion* order (that is the
        point of streaming); ``granule_sets`` in the returned report stays
        sorted by scene key, same as barrier mode.
        """
        os.makedirs(self.config.staging, exist_ok=True)
        refs = self.plan()
        # A scene is complete when every product the catalog planned for
        # it arrived (Terra and Aqua scenes plan different product sets).
        planned: Dict[str, set] = {}
        for ref in refs:
            planned.setdefault(ref.gid.scene_key, set()).add(ref.gid.product)
        if on_planned is not None:
            on_planned(sorted(planned))
        started = time.monotonic()
        by_scene: Dict[str, Dict[str, str]] = {}
        settled_products: Dict[str, int] = {}
        total_bytes = 0
        files = 0
        per_file = []
        skipped = 0
        resumed = 0
        cached = 0
        retried = 0
        retry_attempts = 0
        fetched_bytes = 0
        failed: List[str] = []
        incomplete: List[str] = []
        granule_sets: List[GranuleSet] = []

        def settle(ref, path, nbytes, seconds, outcome, attempts, error) -> None:
            nonlocal total_bytes, files, skipped, resumed, cached, retried
            nonlocal retry_attempts, fetched_bytes
            scene_key = ref.gid.scene_key
            retry_attempts += attempts if outcome != "failed" else max(0, attempts - 1)
            if outcome == "failed":
                failed.append(error or f"download of {ref.filename} failed")
            else:
                by_scene.setdefault(scene_key, {})[ref.gid.product] = path
                files += 1
                total_bytes += nbytes
                per_file.append(seconds)
                skipped += outcome == "skipped"
                resumed += outcome == "resumed"
                cached += outcome == "cached"
                retried += outcome == "retried"
                if outcome in ("fetched", "retried"):
                    fetched_bytes += nbytes
                if on_file is not None:
                    on_file(path)
            settled_products[scene_key] = settled_products.get(scene_key, 0) + 1
            if settled_products[scene_key] < len(planned[scene_key]):
                return
            # The scene's last planned product just settled: hand it off.
            paths = by_scene.get(scene_key, {})
            if set(paths) < planned[scene_key]:
                incomplete.append(scene_key)
                if on_scene is not None:
                    on_scene(scene_key, None)
            else:
                granule_set = GranuleSet(key=scene_key, paths=paths)
                if on_scene is not None:
                    on_scene(scene_key, granule_set)

        if pool is not None:
            # Scale-out path: each granule is one envelope, sharded by
            # filename across the process pool.  settle() is
            # order-independent, so completion order does not matter.
            futures = [
                pool.submit(WorkEnvelope(self._kind, ref.filename, ref))
                for ref in refs
            ]
            for result in pool.gather(futures):
                settle(*result)
        else:
            with LocalComputeEndpoint(
                "download", workers or self.config.workers.download
            ) as endpoint:
                futures = endpoint.map(self._fetch_one, refs)
                for result in endpoint.gather(futures):
                    settle(*result)
        for scene_key in sorted(by_scene):
            paths = by_scene[scene_key]
            if not (set(paths) < planned.get(scene_key, set())):
                granule_sets.append(GranuleSet(key=scene_key, paths=paths))
        incomplete.sort()
        return DownloadReport(
            granule_sets=granule_sets,
            files=files,
            nbytes=total_bytes,
            seconds=time.monotonic() - started,
            per_file_seconds=per_file,
            skipped=skipped,
            resumed=resumed,
            cached=cached,
            retried=retried,
            retry_attempts=retry_attempts,
            fetched_bytes=fetched_bytes,
            failed=failed,
            incomplete=incomplete,
            breaker_trips=self.breaker.opened_total,
        )
