"""Stage 4 — Inference: assign AICCA cloud classes to tile files.

Real-execution flavour of Section III stage 4 (the Globus Flow's body):
for each tile NetCDF, encode the tiles, assign nearest-centroid labels,
append the labels to the dataset, and publish the updated file to the
transfer-out directory.  An :class:`InferenceWorker` consumes discovered
files from a queue, so it composes directly with the crawler.

Two hot-path optimizations live here.  *Label append*: a canonical tile
file is re-serialized by rewriting only its header and label column
(:func:`repro.netcdf.writer.splice_bytes`), reusing the already-parsed
radiance bytes instead of re-encoding them.  *Micro-batching*: a worker
opportunistically drains additional queued files and fuses their tiles
into a single encoder/assign call, scattering the labels back per file —
the float32 encoder amortizes dramatically better over one large batch
than over many small ones.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chaos.engine import FaultInjector
from repro.chaos.surfaces import chaos_crash
from repro.core.artifact_cache import TileRefiner
from repro.core.config import EOMLConfig
from repro.core.contracts import TILE_FILE
from repro.core.preprocess import QuarantineRecord
from repro.journal import WorkflowJournal
from repro.netcdf import Dataset, from_bytes as nc_from_bytes, to_bytes as nc_to_bytes
from repro.netcdf.writer import canonical_layout, splice_bytes
from repro.runtime.proc import ProcWorkerPool, WorkEnvelope, WorkerCrashed
from repro.runtime import (
    QUARANTINED,
    RESUMED,
    FailurePolicy,
    UnitResult,
    WorkUnit,
    build_executor,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.util.atomic import atomic_publish_bytes

__all__ = ["InferenceResult", "infer_tile_file", "InferenceWorker"]

_STOP = object()


@dataclass(frozen=True)
class InferenceResult:
    """Outcome of labelling one tile file."""

    src_path: str
    out_path: str
    tiles: int
    classes_seen: int
    seconds: float


def _labelled_payload(
    ds: Dataset,
    raw: Optional[bytes],
    labels: np.ndarray,
    num_classes: int,
    attribution: str = "RICC/AICCA",
) -> bytes:
    """Write ``labels`` into ``ds`` and serialize.

    When ``raw`` is the canonical serialization the dataset was parsed
    from, only the header and the label column are rewritten and the
    unchanged radiance bytes are spliced through verbatim.  The
    ``aicca_classes`` attribute name is the published LABELLED_TILE_FILE
    contract and stays fixed regardless of which model classified.
    """
    layout = canonical_layout(ds, raw) if raw is not None else None
    ds["label"].data[:] = labels.astype(ds["label"].data.dtype)
    ds["label"].set_attr("classified_by", attribution)
    ds.set_attr("aicca_classes", int(num_classes))
    if layout is not None:
        return splice_bytes(ds, raw, layout, ("label",))
    return nc_to_bytes(ds)


def _publish(payload: bytes, src_path: str, out_dir: str,
             durable: bool = True) -> Tuple[str, str]:
    """Atomically place the labelled bytes in the transfer-out directory.

    Full crash-consistency triple (temp + fsync + rename + dir fsync):
    the shipper and resume logic treat presence as completeness.
    Returns ``(out_path, sha256)``; the digest comes from the write
    itself, so the manifest never re-reads the published file.
    """
    os.makedirs(out_dir, exist_ok=True)
    out_path = os.path.join(out_dir, os.path.basename(src_path))
    _, digest = atomic_publish_bytes(out_path, payload, durable=durable)
    return out_path, digest


def infer_tile_file(model: Any, src_path: str, out_dir: str) -> InferenceResult:
    """Label one tile file; writes the enriched copy to ``out_dir``."""
    started = time.monotonic()
    with open(src_path, "rb") as handle:
        raw = handle.read()
    ds = nc_from_bytes(raw)
    TILE_FILE.validate(ds)
    radiance = np.asarray(ds["radiance"].data, dtype=np.float32)
    labels = model.assign(radiance)
    payload = _labelled_payload(
        ds, raw, labels, model.num_classes,
        attribution=getattr(model, "attribution", "RICC/AICCA"),
    )
    out_path, _ = _publish(payload, src_path, out_dir)
    return InferenceResult(
        src_path=src_path,
        out_path=out_path,
        tiles=int(radiance.shape[0]),
        classes_seen=int(np.unique(labels).size),
        seconds=time.monotonic() - started,
    )


@dataclass
class _ParsedFile:
    """A tile file staged for a fused assign call."""

    path: str
    raw: bytes
    ds: Dataset
    radiance: np.ndarray  # (tiles, y, x, band) float32


class InferenceWorker:
    """Threaded consumer: crawler enqueues paths, worker labels them.

    The paper allocates a single inference worker in the Fig. 6 run;
    ``workers`` generalizes that.  Each worker micro-batches: after
    dequeuing one path it drains up to ``batch_files - 1`` more without
    blocking, fuses all their tiles into one encoder/assign call, and
    scatters the labels back per file.

    A tile file that cannot be labelled (corrupt bytes, contract
    violation) is moved into the quarantine directory and recorded —
    the worker keeps consuming, so one crawler-visible partial never
    stalls the stage.
    """

    def __init__(
        self,
        model: Any,
        config: EOMLConfig,
        workers: Optional[int] = None,
        chaos: Optional[FaultInjector] = None,
        batch_files: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        journal: Optional[WorkflowJournal] = None,
        on_result: Optional[Callable[[InferenceResult], None]] = None,
        pool: Optional[ProcWorkerPool] = None,
        model_ref: Optional[Tuple[str, Any]] = None,
        key_prefix: str = "",
        cache: Optional[Any] = None,
    ):
        self.model = model
        self._on_result = on_result
        self.config = config
        self.chaos = chaos
        self.journal = journal
        self.cache = cache
        # Progressive fidelity: with a refine threshold configured (and
        # a model that reports margins), low-margin tiles from coarse
        # tile files get a full-resolution second pass.
        threshold = getattr(config, "refine_threshold", None)
        self._refine_threshold = float(threshold) if threshold is not None else None
        self._refiner = (
            TileRefiner(config, cas=cache)
            if self._refine_threshold is not None
            else None
        )
        self._attribution = getattr(model, "attribution", "RICC/AICCA")
        # Fan-out plans share one journal across branches; the per-branch
        # key prefix ("<instrument>+<model>:") keeps same-named tile files
        # from colliding in it.  "" preserves the classic key namespace.
        self.key_prefix = key_prefix
        # Scale-out envelopes carry the branch tag so pool workers
        # rebuild the right per-branch context ("" = classic kind).
        self._kind = (
            f"inference@{config.branch}" if config.branch else "inference"
        )
        # Scale-out path: when a pool is given, submit() ships each tile
        # file as an envelope instead of enqueueing for the local
        # threads; model_ref tells workers how to obtain the model.
        self.pool = pool
        self.model_ref = model_ref if model_ref is not None else ("object", model)
        self._fatal: List[str] = []
        self._durable = bool(getattr(config, "journal_durable", True))
        self.workers = workers or config.workers.inference
        self.batch_files = max(1, batch_files or getattr(config, "inference_batch_files", 1))
        self.metrics = metrics
        self.queue: "queue.Queue" = queue.Queue()
        self.results: List[InferenceResult] = []
        self.errors: List[str] = []
        self.quarantined: List[QuarantineRecord] = []
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        # Signalled whenever a submitted file settles (result or error),
        # so drain() blocks on progress instead of busy-polling.
        self._done = threading.Condition(self._lock)
        self._submitted = 0
        self._executor = build_executor(journal=journal, chaos=chaos, metrics=metrics)

    def _quarantine(self, path: str, error: str) -> None:
        """Set a bad tile file aside so re-runs do not trip on it again."""
        record = QuarantineRecord(key=path, error=error)
        try:
            os.makedirs(self.config.quarantine, exist_ok=True)
            os.replace(path, os.path.join(self.config.quarantine, os.path.basename(path)))
        except OSError:
            pass  # the record is what matters; the move is best-effort
        with self._done:
            self.quarantined.append(record)

    def _record_result(self, result: InferenceResult) -> None:
        # The streaming hand-off happens *before* the result is counted:
        # a backpressured put must finish before drain() can observe the
        # queue as settled, so every labelled file reaches its consumer.
        if self._on_result is not None and result.out_path:
            self._on_result(result)
        with self._done:
            self.results.append(result)
            self._done.notify_all()

    def _record_error(self, path: str, error: str) -> None:
        with self._done:
            self.errors.append(f"{path}: {error}")
            self._done.notify_all()

    # The crawler's trigger callback.
    def submit(self, path: str) -> None:
        with self._done:
            self._submitted += 1
        if self.pool is not None:
            future = self.pool.submit(
                WorkEnvelope(self._kind, os.path.basename(path), (path, self.model_ref))
            )
            future.add_done_callback(
                lambda f, path=path: self._settle_remote(path, f)
            )
            return
        self.queue.put(path)

    def _settle_remote(self, path: str, future) -> None:
        """Fold one pool future back into the local result/error books.

        Worker outcomes arrive as tagged tuples (the quarantine move
        already happened worker-side).  A :class:`WorkerCrashed` is an
        infrastructure failure, not a bad file: it is recorded so
        drain() settles, and drain() then raises.
        """
        try:
            tag, value = future.result()
        except WorkerCrashed as exc:
            with self._done:
                self._fatal.append(f"{path}: {exc}")
            self._record_error(path, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 - recorded, not fatal
            self._record_error(path, str(exc))
            return
        if tag == "result":
            self._record_result(value)
        elif tag == "quarantined":
            self._record_error(path, value)
            with self._done:
                self.quarantined.append(QuarantineRecord(key=path, error=value))
        else:
            self._record_error(path, value)

    def start(self) -> None:
        if self.pool is not None:
            return  # pool mode: no local threads to start
        if self._threads:
            raise RuntimeError("inference workers already started")
        for index in range(self.workers):
            thread = threading.Thread(target=self._loop, name=f"inference-{index}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _loop(self) -> None:
        while True:
            item = self.queue.get()
            if item is _STOP:
                return
            batch = [item]
            saw_stop = False
            # Opportunistic micro-batch: fuse whatever else is already
            # queued, never blocking, and never consuming more than this
            # thread's own stop sentinel.
            while len(batch) < self.batch_files:
                try:
                    extra = self.queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    saw_stop = True
                    break
                batch.append(extra)
            self._process_batch(batch)
            if saw_stop:
                return

    def _quarantine_policy(self, path: str) -> FailurePolicy:
        """Record-and-quarantine instead of raising: one bad file must
        never sink its batch or stall the consumer loop."""

        def on_caught(message: str) -> None:
            self._record_error(path, message)
            self._quarantine(path, message)

        return FailurePolicy(catch=(Exception,), on_caught=on_caught)

    def _parse_unit(self, path: str) -> WorkUnit:
        """Read + validate one tile file ("open" phase: resume decisions
        and the write-ahead intent happen here; completion happens in the
        publish unit once the labelled file lands)."""

        def body(ctx) -> _ParsedFile:
            ctx.begin()
            with open(path, "rb") as handle:
                raw = handle.read()
            ds = nc_from_bytes(raw)
            TILE_FILE.validate(ds)
            radiance = np.asarray(ds["radiance"].data, dtype=np.float32)
            return _ParsedFile(path=path, raw=raw, ds=ds, radiance=radiance)

        return WorkUnit(
            stage="inference",
            key=self.key_prefix + os.path.basename(path),
            body=body,
            journal_phase="open",
            failure=self._quarantine_policy(path),
        )

    def _publish_unit(
        self, entry: _ParsedFile, labels: Optional[np.ndarray]
    ) -> WorkUnit:
        """Label + publish one parsed file ("close" phase: the journal
        completion records the artifact once publication succeeds)."""

        def body(ctx) -> UnitResult:
            file_labels = (
                labels if labels is not None else self.model.assign(entry.radiance)
            )
            payload = _labelled_payload(
                entry.ds, entry.raw, file_labels, self.model.num_classes,
                attribution=self._attribution,
            )
            # Injected death in the window between labelling and
            # publication — resume must redo this file from its tile.
            chaos_crash(
                self.chaos, "inference",
                self.key_prefix + os.path.basename(entry.path),
            )
            out_path, digest = _publish(payload, entry.path, self.config.transfer_out,
                                        durable=self._durable)
            classes_seen = int(np.unique(file_labels).size)
            return UnitResult(
                outcome="done",
                value=(out_path, classes_seen),
                artifact=out_path,
                payload={
                    "tiles": int(entry.radiance.shape[0]),
                    "classes_seen": classes_seen,
                    "sha256": digest,
                    "nbytes": len(payload),
                },
            )

        return WorkUnit(
            stage="inference",
            key=self.key_prefix + os.path.basename(entry.path),
            body=body,
            journal_phase="close",
            stall=False,
            failure=self._quarantine_policy(entry.path),
        )

    def _process_batch(self, paths: Sequence[str]) -> None:
        started = time.monotonic()
        parsed: List[_ParsedFile] = []
        for path in paths:
            result = self._executor.execute(self._parse_unit(path))
            if result.outcome == RESUMED:
                # A prior run labelled this file and the published
                # output still verifies: surface the journaled result.
                payload = result.payload
                self._record_result(
                    InferenceResult(
                        src_path=path,
                        out_path=str(payload.get("artifact", "")),
                        tiles=int(payload.get("tiles", 0)),
                        classes_seen=int(payload.get("classes_seen", 0)),
                        seconds=0.0,
                    )
                )
                continue
            if result.outcome == QUARANTINED:
                continue  # recorded by the failure policy
            parsed.append(result.value)
        if not parsed:
            return
        if self.metrics is not None:
            self.metrics.histogram(
                "inference.batch_files", "tile files fused per assign call"
            ).observe(len(parsed))

        # Fuse per tile shape: files in one batch normally share a shape,
        # but a mixed directory must not break the fusion.
        groups: Dict[Tuple[int, ...], List[_ParsedFile]] = {}
        for entry in parsed:
            groups.setdefault(entry.radiance.shape[1:], []).append(entry)
        for entries in groups.values():
            self._assign_group(entries, started)

    @property
    def refined_tiles(self) -> int:
        """Tiles re-labelled at full fidelity this run."""
        return self._refiner.refined_tiles if self._refiner is not None else 0

    def _assign_group(self, entries: List[_ParsedFile], started: float) -> None:
        labels: Optional[np.ndarray] = None
        margins: Optional[np.ndarray] = None
        if len(entries) == 1:
            stacked = entries[0].radiance
        else:
            stacked = np.concatenate([entry.radiance for entry in entries])
        # The margin-aware path costs nothing extra (one fused call
        # either way) and only runs when refinement is configured AND
        # the model can report margins.
        with_margin = (
            None
            if self._refiner is None
            else getattr(self.model, "assign_with_margin", None)
        )

        def call_model() -> Tuple[np.ndarray, Optional[np.ndarray]]:
            if with_margin is not None:
                return with_margin(stacked)
            return self.model.assign(stacked), None

        try:
            if self.metrics is not None:
                with self.metrics.timer("inference.assign_seconds"):
                    labels, margins = call_model()
            else:
                labels, margins = call_model()
        except Exception:  # noqa: BLE001 - fall back so one file can't sink the group
            labels = None
        if labels is None and len(entries) > 1:
            # The fused call failed: retry per file so a single poisonous
            # file quarantines alone.
            for entry in entries:
                self._assign_group([entry], started)
            return
        if labels is not None and margins is not None:
            labels = self._refine_group(entries, labels, margins)

        offset = 0
        for entry in entries:
            count = entry.radiance.shape[0]
            file_labels = None if labels is None else labels[offset: offset + count]
            offset += count
            result = self._executor.execute(self._publish_unit(entry, file_labels))
            if not result.ok:
                continue  # recorded and quarantined by the failure policy
            out_path, classes_seen = result.value
            self._record_result(
                InferenceResult(
                    src_path=entry.path,
                    out_path=out_path,
                    tiles=count,
                    classes_seen=classes_seen,
                    seconds=time.monotonic() - started,
                )
            )

    def _refine_group(
        self,
        entries: List[_ParsedFile],
        labels: np.ndarray,
        margins: np.ndarray,
    ) -> np.ndarray:
        """The fidelity ladder's second rung, applied to a fused group.

        Tiles whose assignment margin falls below the configured
        threshold are re-extracted from their source granules at full
        resolution (a distinct CAS object) and re-assigned; everything
        else keeps its coarse-pass label.  Any refinement failure leaves
        the coarse label standing — refinement may only improve labels,
        never lose them.
        """
        low = np.nonzero(np.asarray(margins) < self._refine_threshold)[0]
        if low.size == 0:
            return labels
        labels = np.array(labels, copy=True)
        offset = 0
        for entry in entries:
            count = entry.radiance.shape[0]
            local = low[(low >= offset) & (low < offset + count)] - offset
            if local.size:
                refined = self._refiner.refine(entry.ds, local)
                if refined is not None:
                    try:
                        labels[offset + local] = self.model.assign(refined)
                    except Exception:  # noqa: BLE001 - keep the coarse labels
                        pass
            offset += count
        return labels

    def stop(self, timeout: float = 30.0) -> None:
        for _ in self._threads:
            self.queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def drain(self, timeout: float = 60.0) -> None:
        """Block until every submitted file has been processed.

        Progress is signalled through a condition variable, so waiting
        costs no CPU.  The settled/submitted counters are re-checked once
        after the deadline, so a queue that drains exactly at the
        deadline does not raise.
        """
        deadline = time.monotonic() + timeout

        def settled() -> bool:
            return len(self.results) + len(self.errors) >= self._submitted

        with self._done:
            while not settled():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._done.wait(remaining)
            if settled():
                if self._fatal:
                    raise RuntimeError(
                        "inference worker process lost: " + "; ".join(self._fatal)
                    )
                return
        raise TimeoutError("inference queue did not drain in time")

    def __enter__(self) -> "InferenceWorker":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
