"""Stage 4 — Inference: assign AICCA cloud classes to tile files.

Real-execution flavour of Section III stage 4 (the Globus Flow's body):
for each tile NetCDF, encode the tiles, assign nearest-centroid labels,
append the labels to the dataset, and publish the updated file to the
transfer-out directory.  An :class:`InferenceWorker` consumes discovered
files from a queue, so it composes directly with the crawler.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.chaos.engine import FaultInjector
from repro.chaos.surfaces import chaos_stall
from repro.core.config import EOMLConfig
from repro.core.preprocess import QuarantineRecord
from repro.netcdf import read as nc_read, write as nc_write
from repro.ricc import AICCAModel

__all__ = ["InferenceResult", "infer_tile_file", "InferenceWorker"]

_STOP = object()


@dataclass(frozen=True)
class InferenceResult:
    """Outcome of labelling one tile file."""

    src_path: str
    out_path: str
    tiles: int
    classes_seen: int
    seconds: float


def infer_tile_file(model: AICCAModel, src_path: str, out_dir: str) -> InferenceResult:
    """Label one tile file; writes the enriched copy to ``out_dir``."""
    started = time.monotonic()
    ds = nc_read(src_path)
    from repro.core.contracts import TILE_FILE

    TILE_FILE.validate(ds)
    radiance = ds["radiance"].data.astype(np.float32)
    labels = model.assign(radiance)
    ds["label"].data[:] = labels.astype(ds["label"].data.dtype)
    ds["label"].set_attr("classified_by", "RICC/AICCA")
    ds.set_attr("aicca_classes", int(model.num_classes))
    os.makedirs(out_dir, exist_ok=True)
    out_path = os.path.join(out_dir, os.path.basename(src_path))
    temp_path = out_path + ".part"
    nc_write(ds, temp_path)
    os.replace(temp_path, out_path)
    return InferenceResult(
        src_path=src_path,
        out_path=out_path,
        tiles=int(radiance.shape[0]),
        classes_seen=int(np.unique(labels).size),
        seconds=time.monotonic() - started,
    )


class InferenceWorker:
    """Threaded consumer: crawler enqueues paths, worker labels them.

    The paper allocates a single inference worker in the Fig. 6 run;
    ``workers`` generalizes that.

    A tile file that cannot be labelled (corrupt bytes, contract
    violation) is moved into the quarantine directory and recorded —
    the worker keeps consuming, so one crawler-visible partial never
    stalls the stage.
    """

    def __init__(
        self,
        model: AICCAModel,
        config: EOMLConfig,
        workers: Optional[int] = None,
        chaos: Optional[FaultInjector] = None,
    ):
        self.model = model
        self.config = config
        self.chaos = chaos
        self.workers = workers or config.workers.inference
        self.queue: "queue.Queue" = queue.Queue()
        self.results: List[InferenceResult] = []
        self.errors: List[str] = []
        self.quarantined: List[QuarantineRecord] = []
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._submitted = 0

    def _quarantine(self, path: str, error: str) -> None:
        """Set a bad tile file aside so re-runs do not trip on it again."""
        record = QuarantineRecord(key=path, error=error)
        try:
            os.makedirs(self.config.quarantine, exist_ok=True)
            os.replace(path, os.path.join(self.config.quarantine, os.path.basename(path)))
        except OSError:
            pass  # the record is what matters; the move is best-effort
        with self._lock:
            self.quarantined.append(record)

    # The crawler's trigger callback.
    def submit(self, path: str) -> None:
        with self._lock:
            self._submitted += 1
        self.queue.put(path)

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("inference workers already started")
        for index in range(self.workers):
            thread = threading.Thread(target=self._loop, name=f"inference-{index}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _loop(self) -> None:
        while True:
            item = self.queue.get()
            if item is _STOP:
                return
            try:
                chaos_stall(self.chaos, "inference", os.path.basename(item))
                result = infer_tile_file(self.model, item, self.config.transfer_out)
                with self._lock:
                    self.results.append(result)
            except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                with self._lock:
                    self.errors.append(f"{item}: {exc}")
                self._quarantine(item, str(exc))

    def stop(self, timeout: float = 30.0) -> None:
        for _ in self._threads:
            self.queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def drain(self, timeout: float = 60.0, poll: float = 0.02) -> None:
        """Block until every submitted file has been processed."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                processed = len(self.results) + len(self.errors)
                submitted = self._submitted
            if processed >= submitted:
                return
            time.sleep(poll)
        raise TimeoutError("inference queue did not drain in time")

    def __enter__(self) -> "InferenceWorker":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
