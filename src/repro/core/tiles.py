"""Deprecated location of the tiling kernel — import from
``repro.instruments.tiling`` instead.

The kernel moved below ``repro.core`` so instruments and the
progressive-fidelity refinement path can share it without reaching up
into the pipeline.  These re-exports keep every historical import
working; new code should use :mod:`repro.instruments.tiling`.
"""

from __future__ import annotations

from repro.instruments.tiling import (  # noqa: F401  (re-export shims)
    FIDELITY_COARSE,
    FIDELITY_FULL,
    Tile,
    _tile_view,
    coarsen_tile_data,
    dataset_to_tiles,
    extract_tiles,
    tiles_to_dataset,
)

__all__ = ["Tile", "extract_tiles", "tiles_to_dataset", "dataset_to_tiles"]
