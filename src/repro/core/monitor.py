"""Stage 3 — Monitor & Trigger: the filesystem crawler.

Section III stage 3 splits inference into "(i) monitoring the file system
for the creation of new files, and (ii) triggering the inference".  The
real-mode crawler polls a directory for freshly completed tile NetCDFs
(writers use temp-name + rename, so presence implies completeness) and
invokes a trigger callback for each new file, from a background thread.
Inference therefore overlaps preprocessing, exactly the asynchrony Fig. 6
shows.

Hardening:

* scans are serialized under a lock, so a concurrent ``scan_once`` and
  the background loop can never double-trigger the same file;
* ``.part`` temp files (a torn writer's litter) are explicitly skipped
  and counted, never triggered;
* with ``require_stable_size`` a file must show the same size on two
  consecutive scans before it triggers — a belt-and-suspenders guard for
  directories written by non-atomic producers;
* an optional integrity ``gate`` (the run journal's manifest check) must
  approve each file before it triggers — a rejected file is *not* marked
  seen, so a producer that repairs it (a resumed re-preprocess) gets it
  triggered on a later scan.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.runtime import FailurePolicy, StageExecutor, WorkUnit

__all__ = ["CrawlRecord", "DirectoryCrawler"]


@dataclass
class CrawlRecord:
    """Bookkeeping for one discovered file."""

    path: str
    discovered_at: float


class DirectoryCrawler:
    """Poll a directory; trigger a callback once per new matching file."""

    def __init__(
        self,
        directory: str,
        trigger: Callable[[str], None],
        pattern_suffix: str = ".nc",
        pattern_prefix: str = "tiles_",
        poll_interval: float = 0.2,
        require_stable_size: bool = False,
        gate: Optional[Callable[[str], bool]] = None,
        executor: Optional[StageExecutor] = None,
    ):
        if poll_interval <= 0:
            raise ValueError("poll interval must be positive")
        self.directory = directory
        self.trigger = trigger
        self.pattern_suffix = pattern_suffix
        self.pattern_prefix = pattern_prefix
        self.poll_interval = poll_interval
        self.require_stable_size = require_stable_size
        self.gate = gate
        self.executor = executor
        self.records: List[CrawlRecord] = []
        self._partials: Set[str] = set()
        self._rejected: Set[str] = set()
        self._seen: Set[str] = set()
        self._pending_sizes: Dict[str, int] = {}
        self._scan_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = time.monotonic()
        self.errors: List[str] = []

    # -- one-shot scan (usable without the thread) -------------------------

    def _is_settled(self, path: str) -> bool:
        """With size-stability gating, has ``path`` stopped growing?"""
        if not self.require_stable_size:
            return True
        try:
            size = os.path.getsize(path)
        except OSError:
            return False  # vanished between listdir and stat
        previous = self._pending_sizes.get(path)
        self._pending_sizes[path] = size
        return previous is not None and previous == size

    def scan_once(self) -> List[str]:
        """Discover new files now; triggers for each. Returns new paths."""
        try:
            names = sorted(os.listdir(self.directory))
        except FileNotFoundError:
            return []
        fresh = []
        with self._scan_lock:
            for name in names:
                if name.endswith(".part"):
                    # A writer's temp file (or a torn writer's corpse):
                    # presence never implies completeness.
                    if name.startswith(self.pattern_prefix):
                        self._partials.add(name)
                    continue
                if not (
                    name.startswith(self.pattern_prefix)
                    and name.endswith(self.pattern_suffix)
                ):
                    continue
                path = os.path.join(self.directory, name)
                if path in self._seen:
                    continue
                if not self._is_settled(path):
                    continue
                if self.gate is not None and not self.gate(path):
                    # Integrity rejection: do not mark seen — a repaired
                    # file (resume rewrote it) triggers on a later scan.
                    self._rejected.add(path)
                    continue
                self._rejected.discard(path)
                self._seen.add(path)
                self._pending_sizes.pop(path, None)
                self.records.append(
                    CrawlRecord(path=path, discovered_at=time.monotonic() - self._started_at)
                )
                fresh.append(path)
        for path in fresh:
            self._dispatch(path)
        return fresh

    def _dispatch(self, path: str) -> None:
        """Fire the trigger; the crawler must survive a failing callback.

        With a stage executor the dispatch is a "monitor" work unit and
        the quarantine middleware records the failure; without one, a
        plain try/except does the same (standalone crawler usage).
        """
        if self.executor is None:
            try:
                self.trigger(path)
            except Exception as exc:  # noqa: BLE001 - crawler must survive
                self.errors.append(f"{path}: {exc}")
            return

        def body(ctx) -> None:
            self.trigger(path)

        self.executor.execute(
            WorkUnit(
                stage="monitor",
                key=os.path.basename(path),
                body=body,
                journal_phase="off",
                failure=FailurePolicy(
                    catch=(Exception,),
                    on_caught=lambda message: self.errors.append(f"{path}: {message}"),
                ),
            )
        )

    @property
    def partials_seen(self) -> int:
        """Distinct temp (.part) files observed and refused."""
        return len(self._partials)

    @property
    def rejected(self) -> List[str]:
        """Files the integrity gate currently refuses to trigger."""
        return sorted(self._rejected)

    # -- background operation ------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("crawler already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, name="crawler", daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.scan_once()
            self._stop.wait(self.poll_interval)
        self.scan_once()  # final sweep so nothing published pre-stop is missed
        if self.require_stable_size:
            # One more settle pass: files first seen on the final sweep
            # have a size recorded but not yet confirmed stable.
            self.scan_once()

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise RuntimeError("crawler thread did not stop")
        self._thread = None

    def __enter__(self) -> "DirectoryCrawler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
