"""Stage 3 — Monitor & Trigger: the filesystem crawler.

Section III stage 3 splits inference into "(i) monitoring the file system
for the creation of new files, and (ii) triggering the inference".  The
real-mode crawler polls a directory for freshly completed tile NetCDFs
(writers use temp-name + rename, so presence implies completeness) and
invokes a trigger callback for each new file, from a background thread.
Inference therefore overlaps preprocessing, exactly the asynchrony Fig. 6
shows.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

__all__ = ["CrawlRecord", "DirectoryCrawler"]


@dataclass
class CrawlRecord:
    """Bookkeeping for one discovered file."""

    path: str
    discovered_at: float


class DirectoryCrawler:
    """Poll a directory; trigger a callback once per new matching file."""

    def __init__(
        self,
        directory: str,
        trigger: Callable[[str], None],
        pattern_suffix: str = ".nc",
        pattern_prefix: str = "tiles_",
        poll_interval: float = 0.2,
    ):
        if poll_interval <= 0:
            raise ValueError("poll interval must be positive")
        self.directory = directory
        self.trigger = trigger
        self.pattern_suffix = pattern_suffix
        self.pattern_prefix = pattern_prefix
        self.poll_interval = poll_interval
        self.records: List[CrawlRecord] = []
        self._seen: Set[str] = set()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = time.monotonic()
        self.errors: List[str] = []

    # -- one-shot scan (usable without the thread) -------------------------

    def scan_once(self) -> List[str]:
        """Discover new files now; triggers for each. Returns new paths."""
        try:
            names = sorted(os.listdir(self.directory))
        except FileNotFoundError:
            return []
        fresh = []
        for name in names:
            if not (name.startswith(self.pattern_prefix) and name.endswith(self.pattern_suffix)):
                continue
            path = os.path.join(self.directory, name)
            if path in self._seen:
                continue
            self._seen.add(path)
            self.records.append(
                CrawlRecord(path=path, discovered_at=time.monotonic() - self._started_at)
            )
            fresh.append(path)
            try:
                self.trigger(path)
            except Exception as exc:  # noqa: BLE001 - crawler must survive
                self.errors.append(f"{path}: {exc}")
        return fresh

    # -- background operation ------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("crawler already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, name="crawler", daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.scan_once()
            self._stop.wait(self.poll_interval)
        self.scan_once()  # final sweep so nothing published pre-stop is missed

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise RuntimeError("crawler thread did not stop")
        self._thread = None

    def __enter__(self) -> "DirectoryCrawler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
