"""Stage 2 — Preprocess: swaths to ocean-cloud tile NetCDFs.

Real-execution flavour of Section III stage 2: for each granule set, fuse
MOD02 radiances with MOD03 geolocation and MOD06 cloud/land masks,
extract ocean-cloud tiles, and write one tile NetCDF per granule.  Work
fans out through the Parsl-like DataFlowKernel (one app invocation per
granule), matching the paper's one-file-per-task decomposition.

Output files appear atomically (temp + rename), so the Monitor stage can
treat presence as completeness.

Each granule set is one :class:`~repro.runtime.unit.WorkUnit`: the stage
runtime's middleware supplies the journal resume/skip/complete protocol,
the worker-stall chaos surface, and the skip_existing short-circuit; the
body below is only the science — read, validate, extract, write.  A
granule whose inputs are corrupt still fails *its own task only*; the
stage records a :class:`QuarantineRecord` at the fan-in and continues.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, List, Optional, Tuple

from repro.chaos.engine import FaultInjector
from repro.chaos.surfaces import chaos_atomic_write
from repro.compute import LocalComputeEndpoint
from repro.core.artifact_cache import input_digest, tiles_key
from repro.core.config import EOMLConfig
from repro.core.download import GranuleSet
from repro.core.tiles import extract_tiles, tiles_to_dataset
from repro.instruments.registry import get_instrument
from repro.instruments.tiling import FIDELITY_COARSE
from repro.journal import WorkflowJournal
from repro.netcdf import read as nc_read
from repro.pexec import DataFlowKernel
from repro.runtime import (
    CACHED,
    RESUMED,
    SKIPPED,
    CachePolicy,
    StageExecutor,
    UnitResult,
    WorkUnit,
    build_executor,
)
from repro.runtime.proc import ProcWorkerPool, WorkEnvelope, WorkerCrashed

__all__ = [
    "PreprocessResult",
    "PreprocessReport",
    "PreprocessStage",
    "QuarantineRecord",
    "preprocess_granule_set",
]


@dataclass(frozen=True)
class QuarantineRecord:
    """One work item set aside instead of crashing a stage."""

    key: str      # granule-set key or file path
    error: str

    def describe(self) -> str:
        return f"{self.key}: {self.error}"


@dataclass(frozen=True)
class PreprocessResult:
    """Outcome of preprocessing one granule set."""

    key: str
    tile_path: Optional[str]  # None when no tile passed selection
    tiles: int
    seconds: float
    outcome: str = "done"     # runtime outcome (done/resumed/skipped/cached)


@dataclass
class PreprocessReport:
    results: List[PreprocessResult]
    seconds: float
    quarantined: List[QuarantineRecord] = field(default_factory=list)

    @property
    def total_tiles(self) -> int:
        return sum(r.tiles for r in self.results)

    @property
    def cached(self) -> int:
        """Granule sets replayed from the content-addressed store."""
        return sum(r.outcome == CACHED for r in self.results)

    @property
    def throughput_tiles_per_s(self) -> float:
        return self.total_tiles / self.seconds if self.seconds > 0 else float("inf")


def _preprocess_unit(
    granules: GranuleSet,
    out_dir: str,
    tile_size: int,
    cloud_threshold: float,
    max_land_fraction: float,
    skip_existing: bool,
    instrument: str = "modis",
    coarse_stride: int = 1,
) -> WorkUnit:
    """One granule set's tiling as a work unit."""
    final_path = os.path.join(out_dir, f"tiles_{granules.key.replace('.', '_')}.nc")
    fidelity = FIDELITY_COARSE if coarse_stride > 1 else None

    def precheck(ctx) -> Optional[UnitResult]:
        # A journal redo decision means the same-named file cannot be
        # trusted; otherwise a previously produced tile file
        # short-circuits the work, making re-runs idempotent.
        if not ctx.redo and skip_existing and os.path.exists(final_path):
            existing = nc_read(final_path)
            tiles = int(existing.get_attr("num_tiles")[0])
            return UnitResult(
                outcome=SKIPPED, artifact=final_path, payload={"tiles": tiles}
            )
        return None

    # The derived key binds the output to the tiler knobs AND the input
    # digests, so a changed granule or parameter can never replay a
    # stale tile file.  Hashing the inputs is paid lazily — only when a
    # CAS is actually attached — and usually comes free from the
    # manifest (the download stage already recorded every digest).
    key_box: dict = {}

    def _cache_key(ctx) -> str:
        if "key" not in key_box:
            digests = [
                input_digest(path, journal=ctx.journal)
                for path in granules.paths.values()
            ]
            key_box["key"] = tiles_key(
                instrument, granules.key, tile_size, cloud_threshold,
                max_land_fraction, coarse_stride, digests,
            )
        return key_box["key"]

    def cache_lookup(ctx, cas) -> Optional[UnitResult]:
        if not ctx.redo and skip_existing and os.path.exists(final_path):
            return None  # the precheck owns an already-present file
        record = cas.get_key(_cache_key(ctx))
        if record is None:
            return None
        digest = record.get("digest")
        if digest is None:
            # A tileless granule set: the (empty) result itself is cached.
            return UnitResult(
                outcome=CACHED, artifact=None,
                payload={"tiles": int(record.get("tiles", 0))},
            )
        nbytes = cas.materialize(digest, final_path)
        if nbytes is None:
            return None
        return UnitResult(
            outcome=CACHED,
            artifact=final_path,
            payload={
                "tiles": int(record.get("tiles", 0)),
                "sha256": digest,
                "nbytes": nbytes,
            },
        )

    def cache_store(ctx, cas, result) -> None:
        payload = result.payload or {}
        if result.artifact is None:
            if int(payload.get("tiles", -1)) == 0:
                cas.put_key(_cache_key(ctx), {"digest": None, "tiles": 0})
            return
        digest = cas.store_file(result.artifact, digest=payload.get("sha256"))
        if digest:
            cas.put_key(
                _cache_key(ctx),
                {"digest": digest, "tiles": int(payload.get("tiles", 0))},
            )

    def body(ctx) -> UnitResult:
        ctx.begin()
        # The instrument owns its product families, file contracts, and
        # mask fusion (interface validation happens inside load_scene,
        # Section V-A): the stage body is instrument-agnostic science.
        scene = get_instrument(instrument).load_scene(granules)
        tiles = extract_tiles(
            radiance=scene.radiance,
            cloud_mask=scene.cloud_mask,
            land_mask=scene.land_mask,
            latitude=scene.latitude,
            longitude=scene.longitude,
            tile_size=tile_size,
            optical_thickness=scene.optical_thickness,
            cloud_top_pressure=scene.cloud_top_pressure,
            cloud_threshold=cloud_threshold,
            max_land_fraction=max_land_fraction,
            source=granules.key,
            coarse_stride=coarse_stride,
        )
        if not tiles:
            # A tileless granule is a real completion (nothing to redo).
            return UnitResult(outcome="done", artifact=None, payload={"tiles": 0})
        ds = tiles_to_dataset(
            tiles,
            source=granules.key,
            fidelity=fidelity,
            coarse_stride=coarse_stride,
            source_files=dict(granules.paths) if fidelity else None,
        )
        ds.set_attr("true_regime", scene.attrs.get("true_regime", "unknown"))
        nbytes, digest = chaos_atomic_write(
            ds, final_path, chaos=ctx.chaos, stage="preprocess", key=granules.key
        )
        return UnitResult(
            outcome="done",
            artifact=final_path,
            payload={"tiles": len(tiles), "sha256": digest, "nbytes": nbytes},
        )

    return WorkUnit(
        stage="preprocess", key=granules.key, body=body, precheck=precheck,
        cache=CachePolicy(lookup=cache_lookup, store=cache_store),
    )


def preprocess_granule_set(
    granules: GranuleSet,
    out_dir: str,
    tile_size: int,
    cloud_threshold: float,
    max_land_fraction: float,
    skip_existing: bool = True,
    chaos: Optional[FaultInjector] = None,
    journal: Optional[WorkflowJournal] = None,
    executor: Optional[StageExecutor] = None,
    instrument: str = "modis",
    coarse_stride: int = 1,
    cache: Optional[object] = None,
) -> PreprocessResult:
    """The per-granule task body (pure function; safe for any executor).

    With ``skip_existing`` a previously produced tile file short-circuits
    the work, making re-runs of an interrupted workflow idempotent.
    With a journal, resume decisions take precedence: a journaled
    completion whose manifest entry verifies is returned without any
    file I/O, and a mid-flight or mismatched item is redone even if a
    same-named file exists (it cannot be trusted).  Errors propagate to
    the caller — the fan-out stage quarantines at its fan-in.
    """
    started = time.monotonic()
    os.makedirs(out_dir, exist_ok=True)
    if executor is None:
        executor = build_executor(journal=journal, chaos=chaos, cache=cache)
    unit = _preprocess_unit(
        granules,
        out_dir,
        tile_size,
        cloud_threshold,
        max_land_fraction,
        skip_existing,
        instrument=instrument,
        coarse_stride=coarse_stride,
    )
    result = executor.execute(unit)
    if result.outcome == RESUMED:
        return PreprocessResult(
            key=granules.key,
            tile_path=result.payload.get("artifact") or None,
            tiles=int(result.payload.get("tiles", 0)),
            seconds=time.monotonic() - started,
            outcome=result.outcome,
        )
    return PreprocessResult(
        key=granules.key,
        tile_path=result.artifact,
        tiles=int(result.payload.get("tiles", 0)),
        seconds=time.monotonic() - started,
        outcome=result.outcome,
    )


class PreprocessStage:
    """Fan granule sets over a DataFlowKernel (Parsl-style)."""

    def __init__(
        self,
        config: EOMLConfig,
        dfk: Optional[DataFlowKernel] = None,
        chaos: Optional[FaultInjector] = None,
        journal: Optional[WorkflowJournal] = None,
        pool: Optional[ProcWorkerPool] = None,
        cache: Optional[object] = None,
    ):
        self.config = config
        self.chaos = chaos
        self.journal = journal
        self.pool = pool
        self.cache = cache
        self._dfk = dfk
        self._owns_dfk = dfk is None
        self._executor = build_executor(journal=journal, chaos=chaos, cache=cache)
        # Scale-out envelopes carry the branch tag so pool workers
        # rebuild the right per-instrument context ("" = classic kind).
        self._kind = (
            f"preprocess@{config.branch}" if config.branch else "preprocess"
        )

    def run(self, granule_sets: List[GranuleSet]) -> PreprocessReport:
        return self.run_stream(granule_sets)

    def run_stream(self, granule_sets: Iterable[GranuleSet]) -> PreprocessReport:
        """Fan out over an iterable that may still be producing.

        Each granule set is submitted the moment it arrives (for a plain
        list this is identical to barrier mode), so tiling overlaps the
        upstream downloads when the input is a stream channel.  Finished
        tasks are settled eagerly in submission order — quarantine-and-
        continue per task, exactly as in barrier mode — and the call
        returns only when every submitted task has settled.
        """
        os.makedirs(self.config.preprocessed, exist_ok=True)
        started = time.monotonic()
        if self.pool is not None:
            results, quarantined = self._run_pooled(granule_sets)
        else:
            results, quarantined = self._run_dfk(granule_sets)
        return PreprocessReport(
            results=results, seconds=time.monotonic() - started, quarantined=quarantined
        )

    def _run_dfk(
        self, granule_sets: Iterable[GranuleSet]
    ) -> Tuple[List[PreprocessResult], List[QuarantineRecord]]:
        dfk = self._dfk or DataFlowKernel(
            {
                "preprocess": LocalComputeEndpoint(
                    "preprocess", max_workers=self.config.workers.preprocess
                )
            }
        )
        results: List[PreprocessResult] = []
        quarantined: List[QuarantineRecord] = []
        pending: Deque = deque()

        # Settle each task independently: one corrupt granule must
        # not abort its siblings (quarantine-and-continue).
        def settle(block: bool) -> None:
            while pending and (block or pending[0][1].done()):
                granules, future = pending.popleft()
                try:
                    results.append(future.result())
                except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                    quarantined.append(QuarantineRecord(key=granules.key, error=str(exc)))

        try:
            for granules in granule_sets:
                pending.append(
                    (
                        granules,
                        dfk.submit(
                            preprocess_granule_set,
                            args=(
                                granules,
                                self.config.preprocessed,
                                self.config.tile_size,
                                self.config.cloud_threshold,
                                self.config.max_land_fraction,
                            ),
                            kwargs={
                                "executor": self._executor,
                                "instrument": self.config.instrument,
                                "coarse_stride": self.config.coarse_stride,
                            },
                        ),
                    )
                )
                settle(block=False)
            settle(block=True)
        finally:
            if self._owns_dfk:
                dfk.shutdown()
        return results, quarantined

    def _run_pooled(
        self, granule_sets: Iterable[GranuleSet]
    ) -> Tuple[List[PreprocessResult], List[QuarantineRecord]]:
        """Scale-out path: one envelope per scene, sharded by scene key.

        Quarantine-and-continue holds across the process boundary — a
        task failure comes back as :class:`WorkerTaskError` carrying the
        worker-side message, so the quarantine record matches the
        in-process path byte for byte.  A :class:`WorkerCrashed` (the
        worker died and requeues are exhausted) is *not* a bad granule
        and propagates, like any infrastructure failure.
        """
        results: List[PreprocessResult] = []
        quarantined: List[QuarantineRecord] = []
        pending: Deque = deque()

        def settle(block: bool) -> None:
            while pending and (block or pending[0][1].done()):
                granules, future = pending.popleft()
                try:
                    results.append(future.result())
                except WorkerCrashed:
                    raise
                except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                    quarantined.append(QuarantineRecord(key=granules.key, error=str(exc)))

        for granules in granule_sets:
            pending.append(
                (
                    granules,
                    self.pool.submit(
                        WorkEnvelope(self._kind, granules.key, granules)
                    ),
                )
            )
            settle(block=False)
        settle(block=True)
        return results, quarantined
