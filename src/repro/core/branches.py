"""Per-instrument x per-model branch derivation for fan-out plans.

One declarative config names ``archive.instruments`` and
``inference.models``; this module derives the per-branch configs every
execution surface shares — the local drivers, the sharded worker pool
(:mod:`repro.core.scaleout`), and the control-plane agents
(:mod:`repro.server.execution`) all call the same two pure functions,
so a branch's paths and knobs can never disagree across surfaces.

Layout under the root config's directories::

    staging/<instrument>/...            per-instrument granules
    preprocessed/<instrument>/...       per-instrument tile files
    transfer_out/<instrument>+<model>/  per-branch labelled files
    destination/<instrument>+<model>/   per-branch delivered corpus

The journal directory is *shared* across branches (one WAL per run);
collisions are avoided by branch-qualified journal keys (the model
node's ``model-<tag>`` key, the inference/shipment ``<tag>:`` key
prefix) and by the per-instrument granule/scene key namespaces.

A single-branch config (one instrument, one model) derives *nothing*:
the classic pipeline runs on the root paths, byte-identical to the
pre-fan-out layout.
"""

from __future__ import annotations

import dataclasses
import os
from typing import List, Tuple

from repro.core.config import EOMLConfig
from repro.instruments.registry import get_instrument

__all__ = [
    "branch_tag",
    "expand_branches",
    "is_fanout",
    "instrument_config",
    "branch_config",
]


def branch_tag(instrument: str, model: str) -> str:
    """The canonical branch name: ``<instrument>+<model>``."""
    return f"{instrument}+{model}"


def expand_branches(config: EOMLConfig) -> List[Tuple[str, str]]:
    """Ordered (instrument, model) pairs — the product of the config's
    instrument and model lists, instruments-major."""
    return [(inst, model) for inst in config.instruments for model in config.models]


def is_fanout(config: EOMLConfig) -> bool:
    """True when the plan needs per-branch fan-out (more than one
    instrument x model combination)."""
    return len(config.instruments) > 1 or len(config.models) > 1


def instrument_config(config: EOMLConfig, instrument: str) -> EOMLConfig:
    """The per-instrument slice of a fan-out config.

    Staging/preprocessed/quarantine move into per-instrument
    subdirectories; products and tile size come from the instrument's
    own defaults unless this is the primary instrument (whose products
    and preprocess knobs the user configured directly).
    """
    if instrument not in config.instruments:
        raise ValueError(
            f"instrument {instrument!r} not in config.instruments {config.instruments}"
        )
    if not is_fanout(config):
        return config
    spec = get_instrument(instrument)
    primary = instrument == config.instruments[0]
    return dataclasses.replace(
        config,
        instruments=(instrument,),
        branch=instrument,
        staging=os.path.join(config.staging, instrument),
        preprocessed=os.path.join(config.preprocessed, instrument),
        quarantine=os.path.join(config.quarantine, instrument),
        products=(
            list(config.products) if primary else list(spec.default_products)
        ),
        tile_size=(config.tile_size if primary else spec.default_tile_size),
    )


def branch_config(config: EOMLConfig, instrument: str, model: str) -> EOMLConfig:
    """The full per-branch (instrument x model) slice.

    Extends :func:`instrument_config` with per-branch transfer-out and
    destination directories and pins the single model.  An explicit
    ``inference.model_path`` never applies to fan-out branches (it
    names *one* model file); each branch bootstraps its own model into
    the shared journal directory instead.
    """
    if model not in config.models:
        raise ValueError(f"model {model!r} not in config.models {config.models}")
    base = instrument_config(config, instrument)
    if not is_fanout(config):
        return base
    tag = branch_tag(instrument, model)
    return dataclasses.replace(
        base,
        models=(model,),
        branch=tag,
        model_path=None,
        transfer_out=os.path.join(config.transfer_out, tag),
        destination=os.path.join(config.destination, tag),
    )
