"""Published data contracts for the workflow's file interfaces.

Section V-A: "By publishing clear input and output schemas for each
workflow component, we aim to minimize errors and support the creation of
reliable, reusable workflows."  This module is that publication: a
machine-checkable schema for each NetCDF file class the stages exchange
(granule products in, tile files between preprocess and inference,
labelled files out), plus validators the stages call at their boundaries
so a malformed file fails *at the interface*, with a message naming the
violated clause, instead of deep inside NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.netcdf import Dataset

__all__ = [
    "ContractViolation",
    "VariableSpec",
    "FileContract",
    "GRANULE_MOD02",
    "GRANULE_MOD03",
    "GRANULE_MOD06",
    "TILE_FILE",
    "LABELLED_TILE_FILE",
    "contract_for_product",
]


class ContractViolation(ValueError):
    """A file does not satisfy its published contract."""


@dataclass(frozen=True)
class VariableSpec:
    """One required variable: name, dtype kind, dimension names."""

    name: str
    kind: str                      # numpy dtype kind: 'f', 'i', ...
    dimensions: Tuple[str, ...]
    min_value: Optional[float] = None
    max_value: Optional[float] = None

    def check(self, ds: Dataset, contract: str) -> None:
        if self.name not in ds:
            raise ContractViolation(f"{contract}: missing variable {self.name!r}")
        var = ds[self.name]
        if var.data.dtype.kind != self.kind:
            raise ContractViolation(
                f"{contract}: variable {self.name!r} has dtype kind "
                f"{var.data.dtype.kind!r}, contract requires {self.kind!r}"
            )
        if var.dim_names != self.dimensions:
            raise ContractViolation(
                f"{contract}: variable {self.name!r} has dimensions "
                f"{var.dim_names}, contract requires {self.dimensions}"
            )
        if var.data.size:
            if self.min_value is not None and float(var.data.min()) < self.min_value:
                raise ContractViolation(
                    f"{contract}: {self.name!r} contains values below "
                    f"{self.min_value} (min {float(var.data.min()):.4g})"
                )
            if self.max_value is not None and float(var.data.max()) > self.max_value:
                raise ContractViolation(
                    f"{contract}: {self.name!r} contains values above "
                    f"{self.max_value} (max {float(var.data.max()):.4g})"
                )


@dataclass(frozen=True)
class FileContract:
    """The published schema of one file class."""

    name: str
    required_dimensions: Tuple[str, ...]
    variables: Tuple[VariableSpec, ...]
    required_attributes: Tuple[str, ...] = ()
    record_dimension: Optional[str] = None

    def validate(self, ds: Dataset) -> None:
        """Raise :class:`ContractViolation` on the first violated clause."""
        for dim in self.required_dimensions:
            if dim not in ds.dimensions:
                raise ContractViolation(f"{self.name}: missing dimension {dim!r}")
        if self.record_dimension is not None:
            record = ds.record_dimension
            if record is None or record.name != self.record_dimension:
                raise ContractViolation(
                    f"{self.name}: record dimension must be {self.record_dimension!r}"
                )
        for spec in self.variables:
            spec.check(ds, self.name)
        for attr in self.required_attributes:
            if ds.get_attr(attr) is None:
                raise ContractViolation(f"{self.name}: missing global attribute {attr!r}")

    def describe(self) -> str:
        """Human-readable publication of the contract."""
        lines = [f"contract {self.name}:"]
        for dim in self.required_dimensions:
            lines.append(f"  dimension {dim}")
        for spec in self.variables:
            bounds = ""
            if spec.min_value is not None or spec.max_value is not None:
                bounds = f" in [{spec.min_value}, {spec.max_value}]"
            lines.append(
                f"  variable {spec.name}({', '.join(spec.dimensions)}): "
                f"kind '{spec.kind}'{bounds}"
            )
        for attr in self.required_attributes:
            lines.append(f"  attribute :{attr}")
        return "\n".join(lines)


GRANULE_MOD02 = FileContract(
    name="MOD021KM granule",
    required_dimensions=("band", "line", "pixel"),
    variables=(VariableSpec("radiance", "f", ("band", "line", "pixel")),),
    required_attributes=("granule", "product", "acquisition_date", "band_list"),
)

GRANULE_MOD03 = FileContract(
    name="MOD03 granule",
    required_dimensions=("line", "pixel"),
    variables=(
        VariableSpec("latitude", "f", ("line", "pixel"), min_value=-90.0, max_value=90.0),
        VariableSpec("longitude", "f", ("line", "pixel"), min_value=-180.0, max_value=180.0),
    ),
    required_attributes=("granule", "product"),
)

GRANULE_MOD06 = FileContract(
    name="MOD06_L2 granule",
    required_dimensions=("line", "pixel"),
    variables=(
        VariableSpec("cloud_mask", "i", ("line", "pixel"), min_value=0, max_value=1),
        VariableSpec("cloud_optical_thickness", "f", ("line", "pixel"), min_value=0.0),
        VariableSpec("cloud_top_pressure", "f", ("line", "pixel"), min_value=0.0,
                     max_value=1100.0),
        VariableSpec("land_mask", "i", ("line", "pixel"), min_value=0, max_value=1),
    ),
    required_attributes=("granule", "product"),
)

TILE_FILE = FileContract(
    name="tile file",
    required_dimensions=("tile", "y", "x", "band"),
    record_dimension="tile",
    variables=(
        VariableSpec("radiance", "f", ("tile", "y", "x", "band")),
        VariableSpec("latitude", "f", ("tile",), min_value=-90.0, max_value=90.0),
        VariableSpec("longitude", "f", ("tile",), min_value=-180.0, max_value=180.0),
        VariableSpec("cloud_fraction", "f", ("tile",), min_value=0.0, max_value=1.0),
        VariableSpec("label", "i", ("tile",), min_value=-1),
    ),
    required_attributes=("source_granule", "num_tiles"),
)

LABELLED_TILE_FILE = FileContract(
    name="labelled tile file",
    required_dimensions=TILE_FILE.required_dimensions,
    record_dimension="tile",
    variables=tuple(
        VariableSpec("label", "i", ("tile",), min_value=0) if spec.name == "label" else spec
        for spec in TILE_FILE.variables
    ),
    required_attributes=TILE_FILE.required_attributes + ("aicca_classes",),
)

_PRODUCT_CONTRACTS: Dict[str, FileContract] = {
    "021KM": GRANULE_MOD02,
    "03": GRANULE_MOD03,
    "06_L2": GRANULE_MOD06,
}


def contract_for_product(product: str) -> FileContract:
    """The granule contract for a product short name (MOD/MYD alike)."""
    family = product.lstrip("MYOD")
    if family not in _PRODUCT_CONTRACTS:
        raise KeyError(f"no published contract for product {product!r}")
    return _PRODUCT_CONTRACTS[family]
