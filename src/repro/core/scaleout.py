"""Horizontal scale-out: the stage worker that runs in pool processes.

The generic process machinery lives in :mod:`repro.runtime.proc` (which
must not know about stages); this module supplies the *stage-specific*
side: a picklable worker payload built from the workflow config, and a
:class:`StageWorker` that each worker process constructs once and then
drives for every :class:`~repro.runtime.proc.WorkEnvelope` it is handed.

A worker is a miniature site agent (the `repro.server` pattern): it
rebuilds its own stage contexts from the raw config mapping, opens the
shared run journal with ``resume=True`` so re-deliveries and post-crash
requeues are idempotent, and executes each envelope through the exact
same :class:`~repro.runtime.executor.StageExecutor` middleware the
single-process path uses.  That is what keeps multi-worker output
byte-identical to the sequential golden corpus: the work bodies are the
same functions, the journal protocol is the same protocol, and every
artifact still lands via atomic rename.

Envelope kinds and their sharding keys:

================== ================== ====================================
kind               key                payload
================== ================== ====================================
download[@inst]    granule filename   instrument granule ref
preprocess[@inst]  scene key          :class:`~repro.core.download.GranuleSet`
inference[@branch] tile-file basename ``(tile_path, model_ref)``
================== ================== ====================================

The optional ``@`` suffix carries the fan-out branch: an instrument name
for download/preprocess, an ``<instrument>+<model>`` tag for inference.
A bare kind is the classic single-branch pipeline; suffixed kinds make
the worker derive the matching per-branch config through the same
:mod:`repro.core.branches` helpers the drivers use, so sharded work can
never disagree with the in-process plan about paths or knobs.

``model_ref`` is ``("path", path)`` — each worker loads and caches the
model once, through the branch's registered model type — or
``("object", model)`` when no model file exists (the model itself is
pickled across; still cached on first use).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Dict, Optional, Tuple

from repro.chaos import build_injector
from repro.core.artifact_cache import open_store
from repro.core.branches import branch_config, instrument_config
from repro.core.config import EOMLConfig, load_config
from repro.core.download import DownloadStage
from repro.core.inference import InferenceWorker
from repro.core.preprocess import preprocess_granule_set
from repro.instruments.registry import get_model
from repro.journal import WorkflowJournal
from repro.runtime import build_executor
from repro.runtime.elastic import ElasticPolicy
from repro.runtime.proc import ProcWorkerPool, WorkEnvelope, WorkerSpec

__all__ = ["WORKER_TARGET", "StageWorker", "build_stage_worker", "build_pool"]

# The import-string address of the worker factory — what WorkerSpec
# carries across the process boundary instead of a closure.
WORKER_TARGET = "repro.core.scaleout:build_stage_worker"


def worker_payload(
    config: EOMLConfig, archive: Optional[Any] = None
) -> Dict[str, Any]:
    """The picklable seed a worker process rebuilds its world from.

    The raw config mapping (not the resolved :class:`EOMLConfig`) plus
    the resolved chaos plan: CLI overrides like ``--chaos`` mutate the
    resolved config only, so the plan is shipped explicitly and wins
    over whatever the raw mapping says.
    """
    return {
        "raw": dict(config.raw),
        "chaos": config.chaos,
        "archive": archive,
    }


class StageWorker:
    """One worker process's stage contexts, built lazily per kind."""

    def __init__(self, payload: Dict[str, Any]):
        config = load_config(payload["raw"])
        self.config = dataclasses.replace(config, chaos=payload["chaos"])
        # An injected archive only stands in for the *primary* instrument
        # (it was built for one instrument's granule grammar); other
        # branches let DownloadStage build theirs from the registry.
        self.archive = payload.get("archive")
        self.chaos = build_injector(self.config.chaos)
        self.journal: Optional[WorkflowJournal] = None
        if self.config.journal_enabled:
            self.journal = WorkflowJournal(
                self.config.journal_dir, durable=self.config.journal_durable
            )
            # resume=True is the idempotency contract: a requeued envelope
            # whose first attempt completed (journal + manifest verify)
            # resumes instead of re-running, and a mid-flight crash is
            # replayed from scratch — same rules as the site agents.
            self.journal.start(resume=True)
        # Each worker process opens its own handle on the *shared* CAS
        # directory (branch configs inherit the root ``cache_dir``) —
        # the store's atomic publish protocol makes concurrent handles
        # safe, so pool workers dedupe into the same object space as the
        # parent and the co-located site agents.
        self.cache = open_store(self.config, chaos=self.chaos)
        self._downloads: Dict[str, DownloadStage] = {}
        self._preprocess_executor = None
        self._inference: Dict[str, InferenceWorker] = {}
        self._models: Dict[str, Any] = {}

    # -- per-kind contexts ----------------------------------------------------

    def _branch_config(self, base: str, tag: str) -> EOMLConfig:
        """The config slice an envelope kind executes under.

        A bare kind ("" tag) is the classic single-branch pipeline and
        runs on the root config; a suffixed kind derives the branch
        slice through the shared :mod:`repro.core.branches` helpers.
        """
        if not tag:
            return self.config
        if base == "inference":
            instrument, _, model = tag.partition("+")
            return branch_config(self.config, instrument, model)
        return instrument_config(self.config, tag)

    def _ensure_download(self, tag: str) -> DownloadStage:
        if tag not in self._downloads:
            cfg = self._branch_config("download", tag)
            primary = not tag or tag == self.config.instruments[0]
            os.makedirs(cfg.staging, exist_ok=True)
            self._downloads[tag] = DownloadStage(
                cfg,
                archive=self.archive if primary else None,
                chaos=self.chaos,
                journal=self.journal,
                cache=self.cache,
            )
        return self._downloads[tag]

    def _ensure_preprocess_executor(self):
        if self._preprocess_executor is None:
            self._preprocess_executor = build_executor(
                journal=self.journal, chaos=self.chaos, cache=self.cache
            )
        return self._preprocess_executor

    def _load_model(self, tag: str, cfg: EOMLConfig, model_ref: Tuple[str, Any]) -> Any:
        if tag not in self._models:
            mode, value = model_ref
            if mode == "path":
                self._models[tag] = get_model(cfg.model_name).load(value)
            else:
                self._models[tag] = value
        return self._models[tag]

    def _ensure_inference(self, tag: str, model_ref: Tuple[str, Any]) -> InferenceWorker:
        if tag not in self._inference:
            # batch_files=1 keeps per-file labels byte-identical to the
            # in-process micro-batched path (the PR 2 equivalence
            # guarantee); the worker is never start()ed — _process_batch
            # runs synchronously on the envelope loop.
            cfg = self._branch_config("inference", tag)
            self._inference[tag] = InferenceWorker(
                self._load_model(tag, cfg, model_ref),
                cfg,
                chaos=self.chaos,
                batch_files=1,
                journal=self.journal,
                key_prefix=f"{tag}:" if tag else "",
                cache=self.cache,
            )
        return self._inference[tag]

    # -- envelope execution ---------------------------------------------------

    def __call__(self, envelope: WorkEnvelope) -> Any:
        base, _, tag = envelope.kind.partition("@")
        if base == "download":
            return self._ensure_download(tag)._fetch_one(envelope.payload)
        if base == "preprocess":
            granules = envelope.payload
            cfg = self._branch_config("preprocess", tag)
            return preprocess_granule_set(
                granules,
                cfg.preprocessed,
                cfg.tile_size,
                cfg.cloud_threshold,
                cfg.max_land_fraction,
                executor=self._ensure_preprocess_executor(),
                instrument=cfg.instrument,
                coarse_stride=cfg.coarse_stride,
            )
        if base == "inference":
            return self._infer(tag, envelope.payload)
        raise ValueError(f"unknown envelope kind {envelope.kind!r}")

    def _infer(self, tag: str, payload: Tuple[str, Tuple[str, Any]]) -> Tuple[str, Any]:
        """Label one tile file; returns a tagged outcome tuple.

        The quarantine move (when the file is bad) happens here in the
        worker; the parent only records it.  Tags: ``("result", res)``,
        ``("quarantined", msg)``, ``("error", msg)``.
        """
        path, model_ref = payload
        worker = self._ensure_inference(tag, model_ref)
        results_before = len(worker.results)
        quarantined_before = len(worker.quarantined)
        errors_before = len(worker.errors)
        worker._process_batch([path])
        if len(worker.quarantined) > quarantined_before:
            return ("quarantined", worker.quarantined[-1].error)
        if len(worker.results) > results_before:
            return ("result", worker.results[-1])
        if len(worker.errors) > errors_before:
            message = worker.errors[-1]
            prefix = f"{path}: "
            if message.startswith(prefix):
                message = message[len(prefix):]
            return ("error", message)
        return ("error", f"inference produced no outcome for {path}")

    def counters(self) -> Dict[str, float]:
        """Monotonic counters the pool ships back as per-envelope deltas."""
        out: Dict[str, float] = {}
        if self.journal is not None:
            out.update({k: float(v) for k, v in self.journal.counters().items()})
        if self._downloads:
            out["breaker_trips"] = float(
                sum(stage.breaker.opened_total for stage in self._downloads.values())
            )
        return out


def build_stage_worker(payload: Dict[str, Any]) -> StageWorker:
    """The ``WorkerSpec.target`` factory."""
    return StageWorker(payload)


def build_pool(
    config: EOMLConfig,
    archive: Optional[Any] = None,
    policy: Optional[ElasticPolicy] = None,
) -> ProcWorkerPool:
    """The workflow's stage-worker pool (not yet started).

    An enabled ``runtime.elastic`` policy governs scale-out/in; otherwise
    the pool is pinned at ``runtime.workers`` processes.
    """
    if policy is None:
        policy = (
            config.elastic
            if config.elastic.enabled
            else ElasticPolicy.fixed(config.runtime_workers)
        )
    return ProcWorkerPool(
        WorkerSpec(target=WORKER_TARGET, payload=worker_payload(config, archive)),
        policy=policy,
        name="stage-workers",
        max_requeues=1,
    )
