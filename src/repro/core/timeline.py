"""Wall-clock stage timeline (Fig. 6 / Fig. 7 accounting, real mode).

Wraps :class:`repro.sim.Tracer` with a monotonic-clock origin so the real
workflow records the same artifacts the simulator does: per-stage worker
gauges and stage spans.  The result renders as the Fig. 6 step series and
the Fig. 7 latency breakdown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.trace import StepSeries, Tracer

__all__ = ["WallClockTimeline", "StageBreakdown"]


@dataclass(frozen=True)
class StageBreakdown:
    """Fig. 7-style per-stage latency entries."""

    stage: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class WallClockTimeline:
    """Tracer with a wall-clock origin and span helpers."""

    def __init__(self) -> None:
        self.tracer = Tracer()
        self._origin = time.monotonic()
        self._open: Dict[str, float] = {}

    @property
    def now(self) -> float:
        return time.monotonic() - self._origin

    # -- worker gauges ------------------------------------------------------

    def workers(self, stage: str, delta: int) -> None:
        self.tracer.gauge_add(f"workers:{stage}", self.now, delta)

    def series(self, stage: str) -> StepSeries:
        return self.tracer.series(f"workers:{stage}")

    # -- stage spans ----------------------------------------------------------

    def begin(self, stage: str) -> None:
        self._open[stage] = self.now

    def end(self, stage: str, **detail) -> StageBreakdown:
        if stage not in self._open:
            raise KeyError(f"stage {stage!r} was never begun")
        start = self._open.pop(stage)
        finish = self.now
        self.tracer.span(stage, stage, start, finish, **detail)
        return StageBreakdown(stage=stage, start=start, end=finish)

    def breakdown(self) -> List[StageBreakdown]:
        """All recorded spans in start order (the Fig. 7 chain)."""
        return [
            StageBreakdown(stage=span.name, start=span.start, end=span.end)
            for span in sorted(self.tracer.spans, key=lambda s: s.start)
        ]

    def overlaps(self) -> Dict[str, float]:
        """Pairwise span overlap seconds, keyed ``"a+b"`` in start order.

        In barrier mode every entry is ~0; under streaming the overlap
        between adjacent stages is exactly the hidden latency the paper's
        Fig. 6 pipelining claims — so it is reported, not inferred.
        """
        spans = self.breakdown()
        out: Dict[str, float] = {}
        for i, a in enumerate(spans):
            for b in spans[i + 1:]:
                shared = min(a.end, b.end) - max(a.start, b.start)
                if shared > 0:
                    out[f"{a.stage}+{b.stage}"] = shared
        return out

    def gaps(self) -> List[Tuple[str, str, float]]:
        """Inter-stage communication gaps (Fig. 7's solid arrows)."""
        spans = self.breakdown()
        return [
            (a.stage, b.stage, max(0.0, b.start - a.end))
            for a, b in zip(spans, spans[1:])
        ]

    def render(self, width: int = 60) -> str:
        """ASCII rendering of the worker timeline (a terminal Fig. 6)."""
        names = self.tracer.gauge_names()
        if not names:
            return "(no activity recorded)"
        horizon = max(self.now, 1e-9)
        lines = [f"timeline over {horizon:.2f}s"]
        times = [horizon * i / (width - 1) for i in range(width)]
        for name in names:
            series = self.tracer.series(name)
            peak = max(series.max, 1.0)
            row = "".join(
                " .:-=+*#%@"[min(9, int(9 * series.at(t) / peak))] for t in times
            )
            lines.append(f"{name:>24} |{row}| peak={int(series.max)}")
        return "\n".join(lines)
