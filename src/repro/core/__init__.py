"""The five-stage EO-ML workflow: real execution and simulated twin."""

from repro.core.config import ConfigError, EOMLConfig, StageWorkers, load_config
from repro.core.download import DownloadReport, DownloadStage, GranuleSet
from repro.core.inference import InferenceResult, InferenceWorker, infer_tile_file
from repro.core.monitor import DirectoryCrawler
from repro.core.preprocess import (
    PreprocessReport,
    PreprocessResult,
    PreprocessStage,
    QuarantineRecord,
    preprocess_granule_set,
)
from repro.core.shipment import ShipmentReport, ShipmentStage
from repro.core.simflow import SimulatedEOMLWorkflow, SimWorkflowParams, SimWorkflowResult
from repro.core.streaming import StreamBatchResult, StreamingClassifier
from repro.core.tiles import Tile, dataset_to_tiles, extract_tiles, tiles_to_dataset
from repro.core.timeline import StageBreakdown, WallClockTimeline
from repro.core.workflow import EOMLWorkflow, WorkflowReport

__all__ = [
    "load_config",
    "EOMLConfig",
    "StageWorkers",
    "ConfigError",
    "Tile",
    "extract_tiles",
    "tiles_to_dataset",
    "dataset_to_tiles",
    "DownloadStage",
    "DownloadReport",
    "GranuleSet",
    "PreprocessStage",
    "PreprocessReport",
    "PreprocessResult",
    "QuarantineRecord",
    "preprocess_granule_set",
    "DirectoryCrawler",
    "InferenceWorker",
    "InferenceResult",
    "infer_tile_file",
    "ShipmentStage",
    "ShipmentReport",
    "EOMLWorkflow",
    "WorkflowReport",
    "WallClockTimeline",
    "StageBreakdown",
    "SimulatedEOMLWorkflow",
    "SimWorkflowParams",
    "SimWorkflowResult",
    "StreamingClassifier",
    "StreamBatchResult",
]
