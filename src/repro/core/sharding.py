"""Tokenization and sharding of labelled tiles for distributed training.

The abstract motivates the workflow's throughput with exactly this
downstream consumer: "Such high throughput is essential for dynamic
tokenization and sharding of petascale satellite data for distributed AI
model training and inferencing at scale across thousands of GPUs."  This
module implements that consumer:

* :func:`tokenize` — split tiles into ViT-style patch tokens;
* :func:`plan_shards` — pack labelled tile files into fixed-size shards,
  optionally *class-interleaved* so every shard carries a similar label
  mix (stratified by the AICCA classes inference appended);
* :func:`write_shards` — materialize shard NetCDFs from tile files;
* :func:`assign_to_ranks` — balanced shard -> GPU-rank assignment
  (longest-processing-time greedy), with a provable balance bound.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.netcdf import Dataset, read as nc_read, write as nc_write

__all__ = ["TileIndex", "Shard", "tokenize", "plan_shards", "write_shards", "assign_to_ranks"]


@dataclass(frozen=True)
class TileIndex:
    """One tile's location within the tile-file corpus."""

    path: str
    index: int
    label: int


@dataclass
class Shard:
    """A planned shard: an ordered list of tile references."""

    shard_id: int
    tiles: List[TileIndex] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.tiles)

    @property
    def class_histogram(self) -> Dict[int, int]:
        return dict(Counter(t.label for t in self.tiles))


def tokenize(tiles: np.ndarray, patch_size: int) -> np.ndarray:
    """(N, H, W, C) tiles -> (N, num_patches, patch_size^2 * C) tokens.

    The standard ViT patchification; ``H`` and ``W`` must be divisible by
    ``patch_size``.  Fully vectorized (one reshape/transpose, no copy of
    pixel data beyond the final contiguous layout).
    """
    if tiles.ndim != 4:
        raise ValueError("tiles must be (N, H, W, C)")
    n, height, width, channels = tiles.shape
    if patch_size < 1 or height % patch_size or width % patch_size:
        raise ValueError(
            f"patch size {patch_size} must divide tile dims {height}x{width}"
        )
    rows = height // patch_size
    cols = width // patch_size
    patched = tiles.reshape(n, rows, patch_size, cols, patch_size, channels)
    tokens = patched.transpose(0, 1, 3, 2, 4, 5).reshape(
        n, rows * cols, patch_size * patch_size * channels
    )
    return np.ascontiguousarray(tokens)


def _corpus_index(tile_files: Sequence[str]) -> List[TileIndex]:
    index: List[TileIndex] = []
    for path in tile_files:
        ds = nc_read(path)
        labels = ds["label"].data
        for tile_no in range(labels.shape[0]):
            index.append(TileIndex(path=path, index=tile_no, label=int(labels[tile_no])))
    return index


def plan_shards(
    tile_files: Sequence[str],
    shard_size: int,
    class_interleave: bool = True,
    seed: int = 0,
) -> List[Shard]:
    """Plan shards of ``shard_size`` tiles from labelled tile files.

    With ``class_interleave`` tiles are dealt round-robin across classes
    (after a seeded shuffle within each class), so every shard approximates
    the corpus label mix — what a distributed trainer wants from each
    batch source.  The final shard may be short.
    """
    if shard_size < 1:
        raise ValueError("shard size must be >= 1")
    corpus = _corpus_index(tile_files)
    if not corpus:
        raise ValueError("no tiles found in the given files")
    rng = np.random.default_rng(seed)
    if class_interleave:
        by_class: Dict[int, List[TileIndex]] = {}
        for tile in corpus:
            by_class.setdefault(tile.label, []).append(tile)
        for members in by_class.values():
            rng.shuffle(members)
        ordered: List[TileIndex] = []
        pools = sorted(by_class.items())
        cursors = {label: 0 for label, _ in pools}
        while len(ordered) < len(corpus):
            for label, members in pools:
                if cursors[label] < len(members):
                    ordered.append(members[cursors[label]])
                    cursors[label] += 1
    else:
        ordered = list(corpus)
        rng.shuffle(ordered)
    shards = []
    for start in range(0, len(ordered), shard_size):
        shards.append(Shard(shard_id=len(shards), tiles=ordered[start : start + shard_size]))
    return shards


def write_shards(
    shards: Sequence[Shard],
    out_dir: str,
    prefix: str = "shard",
) -> List[str]:
    """Materialize shard NetCDFs (radiance + label per tile).

    Tile files are read once each and sliced per shard; returns the
    written paths (``<out_dir>/<prefix>_00000.nc`` ...).
    """
    import os

    os.makedirs(out_dir, exist_ok=True)
    cache: Dict[str, np.ndarray] = {}
    paths = []
    for shard in shards:
        arrays = []
        labels = []
        for tile in shard.tiles:
            if tile.path not in cache:
                cache[tile.path] = nc_read(tile.path)["radiance"].data
            arrays.append(cache[tile.path][tile.index])
            labels.append(tile.label)
        stack = np.stack(arrays).astype(np.float32)
        ds = Dataset()
        ds.create_dimension("tile", None)
        ds.create_dimension("y", stack.shape[1])
        ds.create_dimension("x", stack.shape[2])
        ds.create_dimension("band", stack.shape[3])
        ds.create_variable("radiance", "f4", ("tile", "y", "x", "band"), stack)
        ds.create_variable("label", "i4", ("tile",), np.array(labels, dtype=np.int32))
        ds.set_attr("shard_id", shard.shard_id)
        path = os.path.join(out_dir, f"{prefix}_{shard.shard_id:05d}.nc")
        nc_write(ds, path)
        paths.append(path)
    return paths


def assign_to_ranks(shards: Sequence[Shard], world_size: int) -> List[List[int]]:
    """Balanced shard assignment across ``world_size`` ranks (LPT greedy).

    Returns per-rank lists of shard ids.  Guarantee (standard LPT bound):
    the heaviest rank carries at most 4/3 of the optimal maximum load —
    and in the common equal-shard case the split is exact up to one shard.
    """
    if world_size < 1:
        raise ValueError("world size must be >= 1")
    loads = [0] * world_size
    assignment: List[List[int]] = [[] for _ in range(world_size)]
    for shard in sorted(shards, key=lambda s: s.size, reverse=True):
        rank = min(range(world_size), key=loads.__getitem__)
        assignment[rank].append(shard.shard_id)
        loads[rank] += shard.size
    return assignment
