"""Streaming inference driver (Section V future-work extension).

The paper plans to "support more dynamic AI applications that involve ...
inferring with batch as well as streaming data".  This driver consumes a
granule *stream* — an iterator of granule sets — and pushes each through
preprocess + inference as it arrives, maintaining rolling class counts
(the situational-awareness output the discussion motivates).
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.core.config import EOMLConfig
from repro.core.download import GranuleSet
from repro.core.preprocess import preprocess_granule_set
from repro.netcdf import read as nc_read
from repro.ricc import AICCAModel

__all__ = ["StreamBatchResult", "StreamingClassifier"]


@dataclass(frozen=True)
class StreamBatchResult:
    """Outcome of one streamed granule set."""

    key: str
    tiles: int
    class_counts: Dict[int, int]
    seconds: float


@dataclass
class StreamingClassifier:
    """Incremental classify-as-it-arrives driver with rolling statistics."""

    model: AICCAModel
    config: EOMLConfig
    rolling_window: int = 10
    total_tiles: int = 0
    class_totals: Counter = field(default_factory=Counter)
    history: List[StreamBatchResult] = field(default_factory=list)

    def process(self, granules: GranuleSet) -> StreamBatchResult:
        """Preprocess + classify one granule set immediately."""
        started = time.monotonic()
        result = preprocess_granule_set(
            granules,
            out_dir=self.config.preprocessed,
            tile_size=self.config.tile_size,
            cloud_threshold=self.config.cloud_threshold,
            max_land_fraction=self.config.max_land_fraction,
        )
        counts: Dict[int, int] = {}
        if result.tile_path is not None:
            ds = nc_read(result.tile_path)
            labels = self.model.assign(ds["radiance"].data.astype(np.float32))
            unique, freq = np.unique(labels, return_counts=True)
            counts = {int(u): int(f) for u, f in zip(unique, freq)}
            self.class_totals.update(counts)
            self.total_tiles += int(labels.size)
        batch = StreamBatchResult(
            key=granules.key,
            tiles=result.tiles,
            class_counts=counts,
            seconds=time.monotonic() - started,
        )
        self.history.append(batch)
        return batch

    def run(self, stream: Iterable[GranuleSet]) -> Iterator[StreamBatchResult]:
        """Lazily process a stream, yielding per-batch results."""
        for granules in stream:
            yield self.process(granules)

    # -- rolling situational statistics ----------------------------------------

    def dominant_classes(self, top: int = 5) -> List[tuple]:
        """(class, count) pairs, most common first."""
        return self.class_totals.most_common(top)

    def recent_rate_tiles_per_s(self) -> Optional[float]:
        """Throughput over the rolling window (None before any batch)."""
        window = self.history[-self.rolling_window :]
        if not window:
            return None
        seconds = sum(batch.seconds for batch in window)
        tiles = sum(batch.tiles for batch in window)
        return tiles / seconds if seconds > 0 else float("inf")

    def class_drift(self, earlier: int, later: int) -> float:
        """Total-variation distance between two history windows' class mix.

        The "how is the cloud population changing" signal the paper's
        climate-monitoring discussion motivates; 0 = identical mixes.
        """
        if earlier <= 0 or later <= 0:
            raise ValueError("window sizes must be positive")
        if len(self.history) < earlier + later:
            raise ValueError("not enough history for the requested windows")
        first = Counter()
        for batch in self.history[-(earlier + later) : -later]:
            first.update(batch.class_counts)
        second = Counter()
        for batch in self.history[-later:]:
            second.update(batch.class_counts)
        total_first = sum(first.values()) or 1
        total_second = sum(second.values()) or 1
        classes = set(first) | set(second)
        return 0.5 * sum(
            abs(first[c] / total_first - second[c] / total_second) for c in classes
        )
