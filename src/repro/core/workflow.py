"""The end-to-end EO-ML workflow (real execution).

Orchestrates the five stages of Fig. 2 on this machine, preserving the
paper's structural properties:

* the **download barrier** — preprocessing starts only after every
  download has completed (HDF partial-read protection);
* the **asynchronous monitor-trigger** — the crawler and inference worker
  run concurrently with preprocessing, so labelling begins before tiling
  finishes (Fig. 6's overlap);
* **per-stage worker accounting** on a wall-clock timeline (Figs. 6-7).

Those properties are stated declaratively: :meth:`EOMLWorkflow.build_plan`
returns a :class:`~repro.runtime.plan.PipelinePlan` whose ``after`` edges
are the barriers and whose ``overlaps`` edge opens the monitor/inference
concurrency window, and :meth:`run` merely drives it with the local
:class:`~repro.runtime.plan.PlanRunner`.  The flows engine and the
zambeze orchestrator can execute the *same* plan through the adapters in
``repro.flows.pipeline`` and ``repro.zambeze.pipeline``.

The inference model may be supplied (a trained :class:`AICCAModel`) or
bootstrapped: with ``model=None`` the workflow trains a small atlas on
the first preprocessed tiles before labelling (handy for examples; a
production run would load a model trained on the 1 M-tile corpus).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.chaos import build_injector
from repro.core.config import EOMLConfig
from repro.journal import WorkflowJournal
from repro.core.download import DownloadReport, DownloadStage
from repro.core.inference import InferenceResult, InferenceWorker
from repro.core.monitor import DirectoryCrawler
from repro.core.preprocess import PreprocessReport, PreprocessStage
from repro.core.shipment import ShipmentReport, ShipmentStage
from repro.core.timeline import StageBreakdown, WallClockTimeline
from repro.modis import LaadsArchive
from repro.netcdf import read as nc_read
from repro.provenance import ProvenanceStore
from repro.ricc import AICCAModel
from repro.runtime import PipelinePlan, PlanRunner, StageNode, build_executor
from repro.telemetry import MetricsRegistry

__all__ = ["WorkflowReport", "EOMLWorkflow"]


@dataclass
class WorkflowReport:
    """Everything one end-to-end run produced."""

    download: DownloadReport
    preprocess: PreprocessReport
    inference: List[InferenceResult]
    shipment: Optional[ShipmentReport]
    breakdown: List[StageBreakdown] = field(default_factory=list)
    timeline: Optional[WallClockTimeline] = None
    errors: List[str] = field(default_factory=list)
    provenance: Optional[ProvenanceStore] = None
    metrics: Optional[MetricsRegistry] = None
    chaos: Optional[Dict[str, object]] = None  # injector summary, if chaos ran
    inference_quarantined: List = field(default_factory=list)
    # Resilience counters from the run journal (zeros when journaling
    # is off or the run started fresh with nothing to reuse).
    resumed_items: int = 0
    replayed_items: int = 0
    manifest_mismatches: int = 0
    journal: Optional[Dict[str, object]] = None  # WorkflowJournal.summary()

    @property
    def total_tiles(self) -> int:
        return self.preprocess.total_tiles

    @property
    def labelled_tiles(self) -> int:
        return sum(r.tiles for r in self.inference)

    @property
    def quarantined(self) -> int:
        """Work items set aside across all stages instead of crashing."""
        return (
            len(self.download.failed)
            + len(self.download.incomplete)
            + len(self.preprocess.quarantined)
            + len(self.inference_quarantined)
        )


class EOMLWorkflow:
    """Five-stage orchestrator over the real local substrate."""

    def __init__(
        self,
        config: EOMLConfig,
        model: Optional[AICCAModel] = None,
        archive: Optional[LaadsArchive] = None,
    ):
        self.config = config
        self.model = model
        self.archive = archive or LaadsArchive(seed=config.seed)

    # -- model bootstrap ------------------------------------------------------

    def _effective_model_path(self, journal: Optional[WorkflowJournal]) -> Optional[str]:
        """Where the bootstrapped model persists.

        Without an explicit ``inference.model_path`` the journal directory
        hosts it, so a resumed run reloads instead of retraining.
        """
        if self.config.model_path:
            return self.config.model_path
        if journal is not None:
            return os.path.join(journal.directory, "model.npz")
        return None

    def _ensure_model(
        self,
        tile_paths: List[str],
        model_path: Optional[str] = None,
        journal: Optional[WorkflowJournal] = None,
    ) -> AICCAModel:
        if self.model is not None:
            return self.model
        model_path = model_path or self.config.model_path
        if model_path and os.path.exists(model_path):
            self.model = AICCAModel.load(model_path)
            if journal is not None:
                journal.complete("model", "aicca-model", artifact=model_path)
            return self.model
        stacks = []
        for path in tile_paths:
            ds = nc_read(path)
            stacks.append(ds["radiance"].data.astype(np.float32))
        if not stacks:
            raise RuntimeError("no tiles available to bootstrap an AICCA model")
        tiles = np.concatenate(stacks)
        num_classes = min(self.config.num_classes, max(2, tiles.shape[0] // 4))
        if journal is not None:
            journal.intent("model", "aicca-model")
        self.model, _history = AICCAModel.train(
            tiles,
            num_classes=num_classes,
            latent_dim=8,
            hidden=(64,),
            epochs=8,
            seed=self.config.seed,
        )
        if model_path:
            os.makedirs(os.path.dirname(model_path) or ".", exist_ok=True)
            self.model.save(model_path)
            if journal is not None:
                journal.complete("model", "aicca-model", artifact=model_path)
        return self.model

    # -- the declarative plan -------------------------------------------------

    def build_plan(
        self,
        metrics: Optional[MetricsRegistry] = None,
        prov: Optional[ProvenanceStore] = None,
        chaos: Any = None,
        journal: Optional[WorkflowJournal] = None,
        handles: Optional[Dict[str, Any]] = None,
    ) -> PipelinePlan:
        """The pipeline as data: nodes are stages, edges are policies.

        * ``preprocess.after = (download, model)`` is the download
          barrier;
        * ``inference.overlaps = (preprocess,)`` opens the crawler +
          worker concurrency window while preprocessing runs, and
          ``inference``'s own body is the drain;
        * ``shipment.when = config.ship`` gates delivery.

        ``handles`` (shared with the caller) receives the live
        ``worker``/``crawler`` objects plus the model-bootstrap
        bookkeeping, since those outlive their nodes.  Any driver that
        honours the edges — the local :class:`PlanRunner`, the flows
        engine, the zambeze orchestrator — can execute this plan.
        """
        config = self.config
        handles = handles if handles is not None else {}
        handles.setdefault("bootstrap_reports", [])
        handles.setdefault("consumed", 0)
        config_entity = (
            prov.entity("config", f"config:{config.name}", name=config.name)
            if prov
            else None
        )
        preprocess_stage = PreprocessStage(config, chaos=chaos, journal=journal)

        def run_download(state: Dict[str, Any]) -> DownloadReport:
            stage = DownloadStage(
                config, archive=self.archive, chaos=chaos, journal=journal
            )
            download = stage.run()
            if prov:
                activity = prov.start_activity(
                    "download", "globus-compute", workers=config.workers.download
                )
                prov.record_use(activity, config_entity)
                for granule_set in download.granule_sets:
                    for product, path in granule_set.paths.items():
                        prov.record_generation(
                            activity, prov.entity("granule", path, product=product)
                        )
                prov.end_activity(activity)
            return download

        def run_model(state: Dict[str, Any]) -> AICCAModel:
            # The model must exist before the first trigger fires.
            # Bootstrap from a quick serial preprocess of the leading
            # granule sets when training data is needed — advancing past
            # quarantined or tileless granules until one yields tiles, so
            # a single corrupt scene can not sink the whole run.
            model_path = self._effective_model_path(journal)
            if journal is not None and self.model is None:
                model_decision = journal.resume("model", "aicca-model")
                if (
                    model_decision.redo
                    and model_path
                    and not config.model_path
                    and os.path.exists(model_path)
                ):
                    # A mid-train crash (or digest mismatch) makes the
                    # journal-owned bootstrap model untrustworthy; retrain.
                    # An explicitly configured model file is the user's —
                    # never deleted here.
                    os.remove(model_path)
            bootstrap_paths: List[str] = []
            if self.model is None and not (
                model_path and os.path.exists(model_path)
            ):
                for granule_set in state["download"].granule_sets:
                    head = preprocess_stage.run([granule_set])
                    handles["bootstrap_reports"].append(head)
                    handles["consumed"] += 1
                    bootstrap_paths = [
                        r.tile_path for r in head.results if r.tile_path
                    ]
                    if bootstrap_paths:
                        break
            return self._ensure_model(
                bootstrap_paths, model_path=model_path, journal=journal
            )

        def run_preprocess(state: Dict[str, Any]) -> PreprocessReport:
            remaining = state["download"].granule_sets[handles["consumed"]:]
            return preprocess_stage.run(remaining)

        @contextmanager
        def inference_scope(state: Dict[str, Any]):
            worker = InferenceWorker(
                state["model"], config, chaos=chaos, metrics=metrics, journal=journal
            )
            crawler = DirectoryCrawler(
                config.preprocessed,
                trigger=worker.submit,
                poll_interval=config.poll_interval,
                gate=journal.artifact_ok if journal is not None else None,
                executor=build_executor(chaos=chaos, metrics=metrics),
            )
            handles["worker"] = worker
            handles["crawler"] = crawler
            with worker, crawler:
                yield

        def run_inference(state: Dict[str, Any]) -> InferenceWorker:
            handles["crawler"].scan_once()
            worker = handles["worker"]
            worker.drain(timeout=config.inference_drain_timeout)
            return worker

        def run_shipment(state: Dict[str, Any]) -> ShipmentReport:
            shipment = ShipmentStage(config, chaos=chaos, journal=journal).run()
            if prov and shipment.moved:
                activity = prov.start_activity("shipment", "globus-transfer")
                for inf in handles["worker"].results:
                    prov.record_use(activity, prov.entity("labelled_file", inf.out_path))
                for path in shipment.moved:
                    prov.record_generation(
                        activity,
                        prov.entity(
                            "delivered_file", path,
                            checksum=shipment.checksums.get(os.path.basename(path)),
                        ),
                    )
                prov.end_activity(activity)
            return shipment

        return PipelinePlan(
            [
                StageNode(
                    "download",
                    run_download,
                    workers=config.workers.download,
                    counts=lambda r: {"files": r.files},
                ),
                StageNode("model", run_model, after=("download",)),
                StageNode(
                    "preprocess",
                    run_preprocess,
                    workers=config.workers.preprocess,
                    after=("download", "model"),
                    counts=lambda r: {"tiles": r.total_tiles},
                ),
                StageNode(
                    "inference",
                    run_inference,
                    workers=config.workers.inference,
                    after=("preprocess", "model"),
                    overlaps=("preprocess",),
                    scope=inference_scope,
                    counts=lambda worker: {"files": len(worker.results)},
                ),
                StageNode(
                    "shipment",
                    run_shipment,
                    after=("inference",),
                    when=lambda state: bool(config.ship),
                    counts=lambda r: {"files": len(r.moved)},
                ),
            ]
        )

    # -- the run ------------------------------------------------------------

    def run(self, provenance: bool = True, resume: bool = False) -> WorkflowReport:
        timeline = WallClockTimeline()
        config = self.config
        # Created up front so hot-path stages (inference micro-batching)
        # can record live histograms; the rollup below adds the rest.
        metrics = MetricsRegistry(prefix="eo_ml")
        prov = ProvenanceStore() if provenance else None
        # None when the chaos plan is absent/disabled: every stage hook
        # below degenerates to the exact production path.
        chaos = build_injector(config.chaos)

        # The run journal: write-ahead intents/completions plus the
        # integrity manifest.  ``resume`` replays a dead run's journal
        # and turns every stage below into an idempotent consumer.
        journal: Optional[WorkflowJournal] = None
        if config.journal_enabled:
            journal = WorkflowJournal(config.journal_dir, durable=config.journal_durable)
            journal.start(resume=resume)

        def on_end(name: str, **counts: Any) -> None:
            timeline.end(name, **counts)
            # A consistent on-disk view after each checkpointable stage.
            if journal is not None and name in ("download", "inference", "shipment"):
                journal.checkpoint()

        handles: Dict[str, Any] = {}
        plan = self.build_plan(
            metrics=metrics, prov=prov, chaos=chaos, journal=journal, handles=handles
        )
        runner = PlanRunner(
            on_begin=timeline.begin, on_end=on_end, on_workers=timeline.workers
        )
        state = runner.run(plan)

        download: DownloadReport = state["download"]
        preprocess: PreprocessReport = state["preprocess"]
        shipment: Optional[ShipmentReport] = state["shipment"]
        model: AICCAModel = state["model"]
        inference: InferenceWorker = handles["worker"]
        crawler: DirectoryCrawler = handles["crawler"]

        # Fold the bootstrap granules back into the report.
        for head in reversed(handles["bootstrap_reports"]):
            preprocess.results = head.results + preprocess.results
            preprocess.quarantined = head.quarantined + preprocess.quarantined

        if prov:
            sets_by_key = {gs.key: gs for gs in download.granule_sets}
            model_entity = prov.entity(
                "model", config.model_path or "model:bootstrapped",
                num_classes=model.num_classes,
            )
            for result in preprocess.results:
                if result.tile_path is None:
                    continue
                activity = prov.start_activity(
                    "preprocess", "parsl", tile_size=config.tile_size,
                    cloud_threshold=config.cloud_threshold,
                )
                source = sets_by_key.get(result.key)
                if source is not None:
                    for path in source.paths.values():
                        prov.record_use(activity, prov.entity("granule", path))
                prov.record_generation(
                    activity, prov.entity("tile_file", result.tile_path, tiles=result.tiles)
                )
                prov.end_activity(activity)
            for inf in inference.results:
                activity = prov.start_activity("inference", "globus-flow")
                prov.record_use(activity, prov.entity("tile_file", inf.src_path))
                prov.record_use(activity, model_entity)
                prov.record_generation(
                    activity,
                    prov.entity("labelled_file", inf.out_path, classes=inf.classes_seen),
                )
                prov.end_activity(activity)

        # Telemetry rollup (Section V-A's workflow-insight goal).
        metrics.counter("files").inc(download.files, stage="download")
        metrics.counter("bytes").inc(download.nbytes, stage="download")
        metrics.counter("files_skipped").inc(download.skipped, stage="download")
        metrics.counter("tiles").inc(preprocess.total_tiles)
        metrics.counter("files").inc(
            sum(1 for r in preprocess.results if r.tile_path), stage="preprocess"
        )
        metrics.counter("files").inc(len(inference.results), stage="inference")
        task_seconds = metrics.histogram(
            "task_seconds", buckets=(0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)
        )
        for result in preprocess.results:
            task_seconds.observe(result.seconds)
        stage_seconds = metrics.histogram(
            "stage_seconds", buckets=(0.1, 1.0, 10.0, 60.0, 600.0)
        )
        for span in timeline.breakdown():
            stage_seconds.observe(span.duration)
        if shipment is not None:
            metrics.counter("files").inc(len(shipment.moved), stage="shipment")
            metrics.counter("bytes").inc(shipment.nbytes, stage="shipment")

        # Resilience accounting (always present, so dashboards can rely
        # on the keys; all zeros on a clean run).
        retries = metrics.counter("retries")
        retries.inc(download.retry_attempts, stage="download")
        if shipment is not None:
            retries.inc(shipment.retries, stage="shipment")
        metrics.counter("breaker_open").inc(download.breaker_trips)
        quarantined = metrics.counter("quarantined")
        quarantined.inc(len(download.failed) + len(download.incomplete), stage="download")
        quarantined.inc(len(preprocess.quarantined), stage="preprocess")
        quarantined.inc(len(inference.quarantined), stage="inference")
        faults = metrics.counter("faults_injected")
        if chaos is not None:
            for kind, count in sorted(chaos.counts_by_kind().items()):
                faults.inc(count, kind=kind)

        # Checkpoint/resume accounting (always present, zeros on fresh
        # clean runs, so dashboards can rely on the keys).
        journal_counters = (
            journal.counters() if journal is not None
            else {"resumed_items": 0, "replayed_items": 0, "manifest_mismatches": 0}
        )
        metrics.counter("resumed_items").inc(journal_counters["resumed_items"])
        metrics.counter("replayed_items").inc(journal_counters["replayed_items"])
        metrics.counter("manifest_mismatches").inc(journal_counters["manifest_mismatches"])

        errors = list(crawler.errors) + list(inference.errors)
        errors.extend(download.failed)
        errors.extend(f"incomplete scene dropped: {key}" for key in download.incomplete)
        errors.extend(f"preprocess quarantined {q.describe()}" for q in preprocess.quarantined)
        if shipment is not None and shipment.error:
            errors.append(f"shipment: {shipment.error}")
        if shipment is not None:
            errors.extend(
                f"shipment integrity mismatch at destination: {name}"
                for name in shipment.mismatches
            )
        if journal is not None:
            journal.close()
        return WorkflowReport(
            download=download,
            preprocess=preprocess,
            inference=list(inference.results),
            shipment=shipment,
            breakdown=timeline.breakdown(),
            timeline=timeline,
            errors=errors,
            provenance=prov,
            metrics=metrics,
            chaos=chaos.summary() if chaos is not None else None,
            inference_quarantined=list(inference.quarantined),
            resumed_items=journal_counters["resumed_items"],
            replayed_items=journal_counters["replayed_items"],
            manifest_mismatches=journal_counters["manifest_mismatches"],
            journal=journal.summary() if journal is not None else None,
        )
