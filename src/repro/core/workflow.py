"""The end-to-end EO-ML workflow (real execution).

Orchestrates the five stages of Fig. 2 on this machine, preserving the
paper's structural properties:

* the **download barrier** — preprocessing starts only after every
  download has completed (HDF partial-read protection);
* the **asynchronous monitor-trigger** — the crawler and inference worker
  run concurrently with preprocessing, so labelling begins before tiling
  finishes (Fig. 6's overlap);
* **per-stage worker accounting** on a wall-clock timeline (Figs. 6-7).

Those properties are stated declaratively: :meth:`EOMLWorkflow.build_plan`
returns a :class:`~repro.runtime.plan.PipelinePlan` whose ``after`` edges
are the barriers and whose ``overlaps`` edge opens the monitor/inference
concurrency window, and :meth:`run` merely drives it with the local
:class:`~repro.runtime.plan.PlanRunner`.  The flows engine and the
zambeze orchestrator can execute the *same* plan through the adapters in
``repro.flows.pipeline`` and ``repro.zambeze.pipeline``.

The inference model may be supplied (a trained model instance) or
bootstrapped: with ``model=None`` the workflow trains a small atlas on
the first preprocessed tiles before labelling (handy for examples; a
production run would load a model trained on the 1 M-tile corpus).
Model types — like instruments — come from :mod:`repro.instruments`'s
registry, and a config naming several instruments or models fans the
plan out into per-``<instrument>+<model>`` branches.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.cas import CACHE_COUNTERS
from repro.chaos import build_injector
from repro.core.artifact_cache import open_store
from repro.core.branches import branch_config, branch_tag, expand_branches, instrument_config, is_fanout
from repro.core.config import EOMLConfig
from repro.journal import WorkflowJournal
from repro.core.download import DownloadReport, DownloadStage, GranuleSet
from repro.core.inference import InferenceResult, InferenceWorker
from repro.core.monitor import DirectoryCrawler
from repro.core.preprocess import PreprocessReport, PreprocessStage
from repro.core.shipment import ShipmentReport, ShipmentStage
from repro.core.timeline import StageBreakdown, WallClockTimeline
from repro.instruments.registry import get_model
from repro.netcdf import read as nc_read
from repro.provenance import ProvenanceStore
from repro.runtime import (
    STREAMS_KEY,
    PipelinePlan,
    PlanRunner,
    StageNode,
    StreamingPlanRunner,
    build_executor,
)
from repro.runtime.proc import PoolStats, ProcWorkerPool
from repro.telemetry import MetricsRegistry

__all__ = ["PARTITION_COUNTERS", "WorkflowReport", "EOMLWorkflow"]

# The degraded-mode counter schema shared by the local report (structural
# zeros), the site agent's stats, and the server's /metrics namespace.
PARTITION_COUNTERS = (
    "disconnects",
    "reconnect_attempts",
    "outbox_spooled",
    "outbox_replayed",
    "fenced_rejections",
)


@dataclass
class WorkflowReport:
    """Everything one end-to-end run produced."""

    download: DownloadReport
    preprocess: PreprocessReport
    inference: List[InferenceResult]
    shipment: Optional[ShipmentReport]
    breakdown: List[StageBreakdown] = field(default_factory=list)
    timeline: Optional[WallClockTimeline] = None
    errors: List[str] = field(default_factory=list)
    provenance: Optional[ProvenanceStore] = None
    metrics: Optional[MetricsRegistry] = None
    chaos: Optional[Dict[str, object]] = None  # injector summary, if chaos ran
    inference_quarantined: List = field(default_factory=list)
    # Resilience counters from the run journal (zeros when journaling
    # is off or the run started fresh with nothing to reuse).
    resumed_items: int = 0
    replayed_items: int = 0
    manifest_mismatches: int = 0
    journal: Optional[Dict[str, object]] = None  # WorkflowJournal.summary()
    # Streaming dataflow accounting: per-edge channel stats (queue depth,
    # producer stall, consumer wait) when the plan carried stream edges,
    # else None.  Overlap seconds measure how much adjacent stage spans
    # actually ran concurrently (the latency pipelining hides).
    stream: Optional[Dict[str, object]] = None
    stage_overlap_seconds: Dict[str, float] = field(default_factory=dict)
    # Horizontal scale-out accounting: pool-level counters plus one
    # entry per worker process.  The keys are always present — all
    # zeros with an empty per_worker list in single-process mode — so
    # dashboards and regression gates can rely on them.
    scaleout: Dict[str, object] = field(default_factory=dict)
    # Partition-tolerance accounting (wire outages, degraded-mode agent
    # operation, fenced rejections).  Same always-present discipline:
    # the local path never crosses a wire so every counter is zero here,
    # but the schema matches what multi-facility agents report, so one
    # dashboard serves both.
    partition: Dict[str, object] = field(default_factory=dict)
    # Content-addressed cache accounting: the CAS counter family (always
    # present, zeros with the cache off) plus the per-stage short-circuit
    # counts and the progressive-fidelity refinement tally.
    cache: Dict[str, object] = field(default_factory=dict)

    @property
    def total_tiles(self) -> int:
        return self.preprocess.total_tiles

    @property
    def labelled_tiles(self) -> int:
        return sum(r.tiles for r in self.inference)

    @property
    def quarantined(self) -> int:
        """Work items set aside across all stages instead of crashing."""
        return (
            len(self.download.failed)
            + len(self.download.incomplete)
            + len(self.preprocess.quarantined)
            + len(self.inference_quarantined)
        )


class EOMLWorkflow:
    """Five-stage orchestrator over the real local substrate."""

    def __init__(
        self,
        config: EOMLConfig,
        model: Optional[Any] = None,
        archive: Optional[Any] = None,
    ):
        self.config = config
        self.model = model
        # None means "each download stage builds its instrument's archive
        # from the registry"; an injected archive stands in for the
        # *primary* instrument only (it speaks one granule grammar).
        self.archive = archive

    # -- model bootstrap ------------------------------------------------------

    def _effective_model_path(
        self, journal: Optional[WorkflowJournal], tag: str = ""
    ) -> Optional[str]:
        """Where the bootstrapped model persists.

        Without an explicit ``inference.model_path`` the journal directory
        hosts it, so a resumed run reloads instead of retraining.  Fan-out
        branches always live in the journal directory, one file per
        branch tag (``model_path`` names *one* model file).
        """
        if not tag and self.config.model_path:
            return self.config.model_path
        if journal is not None:
            name = f"model_{tag}.npz" if tag else "model.npz"
            return os.path.join(journal.directory, name)
        return None

    def _bootstrap_model(
        self,
        config: EOMLConfig,
        tile_paths: List[str],
        model_path: Optional[str],
        journal: Optional[WorkflowJournal],
        journal_key: str,
    ) -> Any:
        """Load-or-train ``config.model_name`` through the registry."""
        model_type = get_model(config.model_name)
        if model_path and os.path.exists(model_path):
            model = model_type.load(model_path)
            if journal is not None:
                journal.complete("model", journal_key, artifact=model_path)
            return model
        stacks = []
        for path in tile_paths:
            ds = nc_read(path)
            stacks.append(ds["radiance"].data.astype(np.float32))
        if not stacks:
            raise RuntimeError("no tiles available to bootstrap an AICCA model")
        tiles = np.concatenate(stacks)
        num_classes = min(config.num_classes, max(2, tiles.shape[0] // 4))
        if journal is not None:
            journal.intent("model", journal_key)
        model = model_type.bootstrap(tiles, num_classes=num_classes, seed=config.seed)
        if model_path:
            os.makedirs(os.path.dirname(model_path) or ".", exist_ok=True)
            model.save(model_path)
            if journal is not None:
                journal.complete("model", journal_key, artifact=model_path)
        return model

    def _ensure_model(
        self,
        tile_paths: List[str],
        model_path: Optional[str] = None,
        journal: Optional[WorkflowJournal] = None,
    ) -> Any:
        if self.model is not None:
            return self.model
        self.model = self._bootstrap_model(
            self.config,
            tile_paths,
            model_path or self.config.model_path,
            journal,
            "aicca-model",
        )
        return self.model

    # -- the declarative plan -------------------------------------------------

    @staticmethod
    def _await_model(state: Dict[str, Any], handles: Dict[str, Any]) -> Any:
        """The model the inference window labels with.

        Barrier mode reads it straight from the state (the ``after``
        edge guarantees it).  Streaming mode may open the window while
        the model node is still relaying scenes, so the model thread
        publishes the trained/loaded model through ``handles`` and sets
        the ``model_ready`` event — on both its success and error paths,
        so this wait can never hang.
        """
        model = state.get("model") or handles.get("model")
        if model is not None:
            return model
        event = handles.get("model_ready")
        if event is None:
            raise RuntimeError("inference window opened before the model node ran")
        event.wait()
        error = handles.get("model_error")
        if error is not None:
            raise RuntimeError(f"model bootstrap failed: {error}")
        return handles["model"]

    def build_plan(
        self,
        metrics: Optional[MetricsRegistry] = None,
        prov: Optional[ProvenanceStore] = None,
        chaos: Any = None,
        journal: Optional[WorkflowJournal] = None,
        handles: Optional[Dict[str, Any]] = None,
        streaming: bool = False,
        pool: Optional[ProcWorkerPool] = None,
        cache: Any = None,
    ) -> PipelinePlan:
        """The pipeline as data: nodes are stages, edges are policies.

        Barrier topology (``streaming=False``, the paper's Fig. 2):

        * ``preprocess.after = (download, model)`` is the download
          barrier;
        * ``inference.overlaps = (preprocess,)`` opens the crawler +
          worker concurrency window while preprocessing runs, and
          ``inference``'s own body is the drain;
        * ``shipment.when = config.ship`` gates delivery.

        Streaming topology (``streaming=True``, Fig. 6's pipelining
        carried through every stage): the download barrier becomes the
        ``download -> model -> preprocess`` stream chain — each completed
        granule scene flows to preprocessing the moment its last product
        lands (the model node bootstraps from the sorted-first tile-
        yielding scene, exactly the scene barrier mode trains on, then
        relays) — and labelled files flow over ``inference -> shipment``
        so delivery overlaps the drain.  Work bodies, middleware, journal
        phases, and the shipped bytes are identical in both topologies;
        only the edges change.

        ``handles`` (shared with the caller) receives the live
        ``worker``/``crawler`` objects plus the model-bootstrap
        bookkeeping, since those outlive their nodes.  Any driver that
        honours the edges — the local :class:`PlanRunner` or
        :class:`StreamingPlanRunner`, the flows engine, the zambeze
        orchestrator — can execute either plan.
        """
        config = self.config
        handles = handles if handles is not None else {}
        handles.setdefault("bootstrap_reports", [])
        handles.setdefault("consumed", 0)
        if is_fanout(config):
            return self._build_fanout_plan(
                metrics=metrics, prov=prov, chaos=chaos, journal=journal,
                handles=handles, streaming=streaming, pool=pool, cache=cache,
            )
        if streaming:
            handles.setdefault("model_ready", threading.Event())
        config_entity = (
            prov.entity("config", f"config:{config.name}", name=config.name)
            if prov
            else None
        )
        preprocess_stage = PreprocessStage(
            config, chaos=chaos, journal=journal, pool=pool, cache=cache
        )

        def record_download_prov(download: DownloadReport) -> None:
            if not prov:
                return
            activity = prov.start_activity(
                "download", "globus-compute", workers=config.workers.download
            )
            prov.record_use(activity, config_entity)
            for granule_set in download.granule_sets:
                for product, path in granule_set.paths.items():
                    prov.record_generation(
                        activity, prov.entity("granule", path, product=product)
                    )
            prov.end_activity(activity)

        def run_download(state: Dict[str, Any]) -> DownloadReport:
            stage = DownloadStage(
                config, archive=self.archive, chaos=chaos, journal=journal,
                cache=cache,
            )
            download = stage.run(pool=pool)
            record_download_prov(download)
            return download

        def run_model(state: Dict[str, Any]) -> Any:
            # The model must exist before the first trigger fires.
            # Bootstrap from a quick serial preprocess of the leading
            # granule sets when training data is needed — advancing past
            # quarantined or tileless granules until one yields tiles, so
            # a single corrupt scene can not sink the whole run.
            model_path = self._effective_model_path(journal)
            if journal is not None and self.model is None:
                model_decision = journal.resume("model", "aicca-model")
                if (
                    model_decision.redo
                    and model_path
                    and not config.model_path
                    and os.path.exists(model_path)
                ):
                    # A mid-train crash (or digest mismatch) makes the
                    # journal-owned bootstrap model untrustworthy; retrain.
                    # An explicitly configured model file is the user's —
                    # never deleted here.
                    os.remove(model_path)
            bootstrap_paths: List[str] = []
            if self.model is None and not (
                model_path and os.path.exists(model_path)
            ):
                for granule_set in state["download"].granule_sets:
                    head = preprocess_stage.run([granule_set])
                    handles["bootstrap_reports"].append(head)
                    handles["consumed"] += 1
                    bootstrap_paths = [
                        r.tile_path for r in head.results if r.tile_path
                    ]
                    if bootstrap_paths:
                        break
            return self._ensure_model(
                bootstrap_paths, model_path=model_path, journal=journal
            )

        def run_preprocess(state: Dict[str, Any]) -> PreprocessReport:
            remaining = state["download"].granule_sets[handles["consumed"]:]
            return preprocess_stage.run(remaining)

        @contextmanager
        def inference_scope(state: Dict[str, Any]):
            model = self._await_model(state, handles)
            on_result = None
            hub = state.get(STREAMS_KEY)
            if hub is not None:
                ship_writer = hub.writer("inference")
                if len(ship_writer):
                    # Labelled files stream to shipment by basename the
                    # moment they publish — eager delivery while the
                    # inference queue is still draining.
                    def on_result(result: InferenceResult) -> None:
                        ship_writer.put(os.path.basename(result.out_path))
            model_ref = None
            if pool is not None:
                # Workers load the persisted model file when one exists
                # (one load per worker, cached); otherwise the model
                # object itself rides the first envelope.
                model_path = self._effective_model_path(journal)
                if model_path and os.path.exists(model_path):
                    model_ref = ("path", model_path)
                else:
                    model_ref = ("object", model)
            worker = InferenceWorker(
                model, config, chaos=chaos, metrics=metrics, journal=journal,
                on_result=on_result, pool=pool, model_ref=model_ref,
                cache=cache,
            )
            crawler = DirectoryCrawler(
                config.preprocessed,
                trigger=worker.submit,
                poll_interval=config.poll_interval,
                gate=journal.artifact_ok if journal is not None else None,
                executor=build_executor(chaos=chaos, metrics=metrics),
            )
            handles["worker"] = worker
            handles["crawler"] = crawler
            with worker, crawler:
                yield

        def run_inference(state: Dict[str, Any]) -> InferenceWorker:
            handles["crawler"].scan_once()
            worker = handles["worker"]
            worker.drain(timeout=config.inference_drain_timeout)
            return worker

        def record_shipment_prov(shipment: ShipmentReport) -> None:
            if not (prov and shipment.moved):
                return
            activity = prov.start_activity("shipment", "globus-transfer")
            for inf in handles["worker"].results:
                prov.record_use(activity, prov.entity("labelled_file", inf.out_path))
            for path in shipment.moved:
                prov.record_generation(
                    activity,
                    prov.entity(
                        "delivered_file", path,
                        checksum=shipment.checksums.get(os.path.basename(path)),
                    ),
                )
            prov.end_activity(activity)

        def run_shipment(state: Dict[str, Any]) -> ShipmentReport:
            shipment = ShipmentStage(
                config, chaos=chaos, journal=journal, cache=cache
            ).run()
            record_shipment_prov(shipment)
            return shipment

        # -- streaming bodies: same work, per-item hand-offs ------------------

        def run_download_stream(state: Dict[str, Any]) -> DownloadReport:
            writer = state[STREAMS_KEY].writer("download")
            stage = DownloadStage(
                config, archive=self.archive, chaos=chaos, journal=journal,
                cache=cache,
            )
            download = stage.run(
                on_planned=lambda keys: writer.put(("planned", list(keys))),
                on_scene=lambda key, gs: writer.put(("scene", key, gs)),
                pool=pool,
            )
            record_download_prov(download)
            return download

        def run_model_stream(state: Dict[str, Any]) -> Any:
            """Bootstrap deterministically, then relay scenes.

            Scenes arrive in completion order, but the bootstrap must
            train on exactly the scene barrier mode trains on (the
            sorted-first complete scene that yields tiles) or the model
            — and every label downstream — would drift with thread
            timing.  So arrivals are buffered and the planned keys are
            walked in sorted order; once the model exists it is
            published through ``handles`` (the inference window may
            already be waiting on it) and everything else is forwarded
            to preprocess as it arrives.
            """
            reader = state[STREAMS_KEY].reader("model", src="download")
            forward = state[STREAMS_KEY].writer("model")
            try:
                model_path = self._effective_model_path(journal)
                if journal is not None and self.model is None:
                    model_decision = journal.resume("model", "aicca-model")
                    if (
                        model_decision.redo
                        and model_path
                        and not config.model_path
                        and os.path.exists(model_path)
                    ):
                        # Same rule as barrier mode: a journal-owned
                        # bootstrap model that crashed mid-train is
                        # untrustworthy; a user-configured file is never
                        # deleted here.
                        os.remove(model_path)

                planned_keys: Optional[List[str]] = None
                arrived: Dict[str, Optional[GranuleSet]] = {}
                order: List[str] = []

                def pump() -> bool:
                    nonlocal planned_keys
                    ok, token = reader.get()
                    if not ok:
                        return False
                    if token[0] == "planned":
                        planned_keys = list(token[1])
                    else:
                        _, key, granule_set = token
                        arrived[key] = granule_set
                        if granule_set is not None:
                            order.append(key)
                    return True

                consumed: set = set()
                bootstrap_paths: List[str] = []
                if self.model is None and not (
                    model_path and os.path.exists(model_path)
                ):
                    while planned_keys is None and pump():
                        pass
                    for key in planned_keys or []:
                        while key not in arrived and pump():
                            pass
                        if key not in arrived:
                            break  # stream ended before the scene settled
                        granule_set = arrived[key]
                        if granule_set is None:
                            continue  # incomplete scene; never preprocessed
                        head = preprocess_stage.run([granule_set])
                        handles["bootstrap_reports"].append(head)
                        handles["consumed"] += 1
                        consumed.add(key)
                        bootstrap_paths = [
                            r.tile_path for r in head.results if r.tile_path
                        ]
                        if bootstrap_paths:
                            break
                model = self._ensure_model(
                    bootstrap_paths, model_path=model_path, journal=journal
                )
                handles["model"] = model
                handles["model_ready"].set()
                for key in order:
                    if key not in consumed:
                        forward.put(arrived[key])
                while True:
                    ok, token = reader.get()
                    if not ok:
                        break
                    if token[0] == "scene" and token[2] is not None:
                        forward.put(token[2])
                return model
            except BaseException as exc:
                handles["model_error"] = exc
                handles["model_ready"].set()
                raise

        def run_preprocess_stream(state: Dict[str, Any]) -> PreprocessReport:
            reader = state[STREAMS_KEY].reader("preprocess", src="model")
            return preprocess_stage.run_stream(iter(reader))

        def run_shipment_stream(state: Dict[str, Any]) -> ShipmentReport:
            reader = state[STREAMS_KEY].reader("shipment", src="inference")
            shipment = ShipmentStage(
                config, chaos=chaos, journal=journal, cache=cache
            ).run_stream(iter(reader))
            record_shipment_prov(shipment)
            return shipment

        if streaming:
            return PipelinePlan(
                [
                    StageNode(
                        "download",
                        run_download_stream,
                        workers=config.workers.download,
                        counts=lambda r: {"files": r.files},
                    ),
                    StageNode("model", run_model_stream, stream=("download",)),
                    StageNode(
                        "preprocess",
                        run_preprocess_stream,
                        workers=config.workers.preprocess,
                        stream=("model",),
                        counts=lambda r: {"tiles": r.total_tiles},
                    ),
                    StageNode(
                        "inference",
                        run_inference,
                        workers=config.workers.inference,
                        after=("preprocess", "model"),
                        overlaps=("preprocess",),
                        scope=inference_scope,
                        counts=lambda worker: {"files": len(worker.results)},
                    ),
                    StageNode(
                        "shipment",
                        run_shipment_stream,
                        stream=("inference",),
                        when=lambda state: bool(config.ship),
                        counts=lambda r: {"files": len(r.moved)},
                    ),
                ]
            )
        return PipelinePlan(
            [
                StageNode(
                    "download",
                    run_download,
                    workers=config.workers.download,
                    counts=lambda r: {"files": r.files},
                ),
                StageNode("model", run_model, after=("download",)),
                StageNode(
                    "preprocess",
                    run_preprocess,
                    workers=config.workers.preprocess,
                    after=("download", "model"),
                    counts=lambda r: {"tiles": r.total_tiles},
                ),
                StageNode(
                    "inference",
                    run_inference,
                    workers=config.workers.inference,
                    after=("preprocess", "model"),
                    overlaps=("preprocess",),
                    scope=inference_scope,
                    counts=lambda worker: {"files": len(worker.results)},
                ),
                StageNode(
                    "shipment",
                    run_shipment,
                    after=("inference",),
                    when=lambda state: bool(config.ship),
                    counts=lambda r: {"files": len(r.moved)},
                ),
            ]
        )

    # -- the fan-out plan -----------------------------------------------------

    def _build_fanout_plan(
        self,
        metrics: Optional[MetricsRegistry] = None,
        prov: Optional[ProvenanceStore] = None,
        chaos: Any = None,
        journal: Optional[WorkflowJournal] = None,
        handles: Optional[Dict[str, Any]] = None,
        streaming: bool = False,
        pool: Optional[ProcWorkerPool] = None,
        cache: Any = None,
    ) -> PipelinePlan:
        """One plan, fanned out per instrument x model branch.

        Per instrument ``I`` the acquisition side runs once —
        ``download@I -> preprocess@I`` on the per-instrument config slice
        (:func:`~repro.core.branches.instrument_config`) — and per branch
        ``tag = I+M`` the labelling side runs on the branch slice
        (:func:`~repro.core.branches.branch_config`):
        ``model@tag -> inference@tag -> shipment@tag``.  Each branch
        bootstraps its own model from the instrument's sorted-first tile
        file (deterministic under every driver), labels into its own
        transfer-out directory, and ships to its own destination.

        The topology differs from the single-branch plan in one way: the
        inference window opens *after* its instrument's preprocess
        barrier (the worker + crawler live inside the node body), so N
        branches never contend for the monitor-overlap window.  Under
        ``streaming=True`` the ``download@I -> preprocess@I`` and
        ``inference@tag -> shipment@tag`` hand-offs become stream edges;
        the model nodes stay barriers.
        """
        config = self.config
        handles = handles if handles is not None else {}

        def make_download(inst: str):
            icfg = instrument_config(config, inst)
            primary = inst == config.instruments[0]

            def run_download(state: Dict[str, Any]) -> DownloadReport:
                stage = DownloadStage(
                    icfg,
                    archive=self.archive if primary else None,
                    chaos=chaos,
                    journal=journal,
                    cache=cache,
                )
                return stage.run(pool=pool)

            def run_download_stream(state: Dict[str, Any]) -> DownloadReport:
                writer = state[STREAMS_KEY].writer(f"download@{inst}")
                stage = DownloadStage(
                    icfg,
                    archive=self.archive if primary else None,
                    chaos=chaos,
                    journal=journal,
                    cache=cache,
                )
                return stage.run(
                    on_scene=lambda key, gs: writer.put(("scene", key, gs)),
                    pool=pool,
                )

            return run_download_stream if streaming else run_download

        def make_preprocess(inst: str):
            icfg = instrument_config(config, inst)
            stage = PreprocessStage(
                icfg, chaos=chaos, journal=journal, pool=pool, cache=cache
            )

            def run_preprocess(state: Dict[str, Any]) -> PreprocessReport:
                return stage.run(state[f"download@{inst}"].granule_sets)

            def run_preprocess_stream(state: Dict[str, Any]) -> PreprocessReport:
                reader = state[STREAMS_KEY].reader(
                    f"preprocess@{inst}", src=f"download@{inst}"
                )

                def scenes():
                    for token in iter(reader):
                        if token[0] == "scene" and token[2] is not None:
                            yield token[2]

                return stage.run_stream(scenes())

            return run_preprocess_stream if streaming else run_preprocess

        def make_model(inst: str, mdl: str):
            tag = branch_tag(inst, mdl)
            bcfg = branch_config(config, inst, mdl)
            journal_key = f"model-{tag}"

            def run_model(state: Dict[str, Any]) -> Any:
                if self.model is not None:
                    return self.model
                model_path = self._effective_model_path(journal, tag)
                if journal is not None:
                    decision = journal.resume("model", journal_key)
                    if decision.redo and model_path and os.path.exists(model_path):
                        # A mid-train crash makes the journal-owned
                        # bootstrap model untrustworthy; retrain.
                        os.remove(model_path)
                # The sorted-first tile file in the branch's preprocessed
                # directory: deterministic under every driver regardless
                # of preprocess completion order, and rebuildable by a
                # control-plane agent without any report hand-off.
                pre_dir = bcfg.preprocessed
                names = sorted(
                    n for n in os.listdir(pre_dir) if n.endswith(".nc")
                ) if os.path.isdir(pre_dir) else []
                tile_paths = [os.path.join(pre_dir, n) for n in names[:1]]
                return self._bootstrap_model(
                    bcfg, tile_paths, model_path, journal, journal_key
                )

            return run_model

        def make_inference(inst: str, mdl: str):
            tag = branch_tag(inst, mdl)
            bcfg = branch_config(config, inst, mdl)

            def run_inference(state: Dict[str, Any]) -> InferenceWorker:
                model = self.model if self.model is not None else state[f"model@{tag}"]
                on_result = None
                hub = state.get(STREAMS_KEY)
                if hub is not None:
                    ship_writer = hub.writer(f"inference@{tag}")
                    if len(ship_writer):
                        def on_result(result: InferenceResult) -> None:
                            ship_writer.put(os.path.basename(result.out_path))
                model_ref = None
                if pool is not None:
                    model_path = self._effective_model_path(journal, tag)
                    if model_path and os.path.exists(model_path):
                        model_ref = ("path", model_path)
                    else:
                        model_ref = ("object", model)
                worker = InferenceWorker(
                    model, bcfg, chaos=chaos, metrics=metrics, journal=journal,
                    on_result=on_result, pool=pool, model_ref=model_ref,
                    key_prefix=f"{tag}:", cache=cache,
                )
                crawler = DirectoryCrawler(
                    bcfg.preprocessed,
                    trigger=worker.submit,
                    poll_interval=bcfg.poll_interval,
                    gate=journal.artifact_ok if journal is not None else None,
                    executor=build_executor(chaos=chaos, metrics=metrics),
                )
                handles[f"worker@{tag}"] = worker
                handles[f"crawler@{tag}"] = crawler
                with worker, crawler:
                    crawler.scan_once()
                    worker.drain(timeout=bcfg.inference_drain_timeout)
                return worker

            return run_inference

        def make_shipment(inst: str, mdl: str):
            tag = branch_tag(inst, mdl)
            bcfg = branch_config(config, inst, mdl)

            def run_shipment(state: Dict[str, Any]) -> ShipmentReport:
                return ShipmentStage(
                    bcfg, chaos=chaos, journal=journal, key_prefix=f"{tag}:",
                    cache=cache,
                ).run()

            def run_shipment_stream(state: Dict[str, Any]) -> ShipmentReport:
                reader = state[STREAMS_KEY].reader(
                    f"shipment@{tag}", src=f"inference@{tag}"
                )
                return ShipmentStage(
                    bcfg, chaos=chaos, journal=journal, key_prefix=f"{tag}:",
                    cache=cache,
                ).run_stream(iter(reader))

            return run_shipment_stream if streaming else run_shipment

        nodes: List[StageNode] = []
        for inst in config.instruments:
            nodes.append(
                StageNode(
                    f"download@{inst}",
                    make_download(inst),
                    workers=config.workers.download,
                    counts=lambda r: {"files": r.files},
                )
            )
        for inst in config.instruments:
            if streaming:
                nodes.append(
                    StageNode(
                        f"preprocess@{inst}",
                        make_preprocess(inst),
                        workers=config.workers.preprocess,
                        stream=(f"download@{inst}",),
                        counts=lambda r: {"tiles": r.total_tiles},
                    )
                )
            else:
                nodes.append(
                    StageNode(
                        f"preprocess@{inst}",
                        make_preprocess(inst),
                        workers=config.workers.preprocess,
                        after=(f"download@{inst}",),
                        counts=lambda r: {"tiles": r.total_tiles},
                    )
                )
        for inst, mdl in expand_branches(config):
            tag = branch_tag(inst, mdl)
            nodes.append(
                StageNode(
                    f"model@{tag}",
                    make_model(inst, mdl),
                    after=(f"preprocess@{inst}",),
                )
            )
            nodes.append(
                StageNode(
                    f"inference@{tag}",
                    make_inference(inst, mdl),
                    workers=config.workers.inference,
                    after=(f"preprocess@{inst}", f"model@{tag}"),
                    counts=lambda worker: {"files": len(worker.results)},
                )
            )
            if streaming:
                nodes.append(
                    StageNode(
                        f"shipment@{tag}",
                        make_shipment(inst, mdl),
                        stream=(f"inference@{tag}",),
                        when=lambda state: bool(config.ship),
                        counts=lambda r: {"files": len(r.moved)},
                    )
                )
            else:
                nodes.append(
                    StageNode(
                        f"shipment@{tag}",
                        make_shipment(inst, mdl),
                        after=(f"inference@{tag}",),
                        when=lambda state: bool(config.ship),
                        counts=lambda r: {"files": len(r.moved)},
                    )
                )
        return PipelinePlan(nodes)

    # -- fan-out report merging ----------------------------------------------

    @staticmethod
    def _merge_downloads(reports: List[DownloadReport]) -> DownloadReport:
        return DownloadReport(
            granule_sets=[gs for r in reports for gs in r.granule_sets],
            files=sum(r.files for r in reports),
            nbytes=sum(r.nbytes for r in reports),
            seconds=sum(r.seconds for r in reports),
            per_file_seconds=[s for r in reports for s in r.per_file_seconds],
            skipped=sum(r.skipped for r in reports),
            resumed=sum(r.resumed for r in reports),
            cached=sum(r.cached for r in reports),
            fetched_bytes=sum(r.fetched_bytes for r in reports),
            retried=sum(r.retried for r in reports),
            retry_attempts=sum(r.retry_attempts for r in reports),
            failed=[msg for r in reports for msg in r.failed],
            incomplete=[key for r in reports for key in r.incomplete],
            breaker_trips=sum(r.breaker_trips for r in reports),
        )

    @staticmethod
    def _merge_preprocess(reports: List[PreprocessReport]) -> PreprocessReport:
        return PreprocessReport(
            results=[res for r in reports for res in r.results],
            seconds=sum(r.seconds for r in reports),
            quarantined=[q for r in reports for q in r.quarantined],
        )

    @staticmethod
    def _merge_shipments(
        tags: List[str], reports: List[Optional[ShipmentReport]]
    ) -> Optional[ShipmentReport]:
        actual = [r for r in reports if r is not None]
        if not actual:
            return None
        # Branches can ship same-named files (two models over one
        # instrument's tiles), so merged per-file keys carry the tag.
        checksums: Dict[str, str] = {}
        mismatches: List[str] = []
        for tag, report in zip(tags, reports):
            if report is None:
                continue
            checksums.update(
                {f"{tag}:{name}": sha for name, sha in report.checksums.items()}
            )
            mismatches.extend(f"{tag}:{name}" for name in report.mismatches)
        errors = [r.error for r in actual if r.error]
        return ShipmentReport(
            moved=[path for r in actual for path in r.moved],
            nbytes=sum(r.nbytes for r in actual),
            seconds=sum(r.seconds for r in actual),
            retries=sum(r.retries for r in actual),
            error="; ".join(errors) if errors else None,
            resumed=sum(r.resumed for r in actual),
            verified=sum(r.verified for r in actual),
            deduped=sum(r.deduped for r in actual),
            mismatches=mismatches,
            checksums=checksums,
        )

    # -- the run ------------------------------------------------------------

    def run(
        self,
        provenance: bool = True,
        resume: bool = False,
        streaming: Optional[bool] = None,
    ) -> WorkflowReport:
        timeline = WallClockTimeline()
        config = self.config
        # ``streaming=None`` defers to ``runtime.stream.enabled`` in the
        # config; an explicit bool overrides it (the benchmark harness
        # runs both topologies off one config).
        use_stream = config.stream.enabled if streaming is None else bool(streaming)
        fanout = is_fanout(config)
        # Created up front so hot-path stages (inference micro-batching)
        # can record live histograms; the rollup below adds the rest.
        metrics = MetricsRegistry(prefix="eo_ml")
        # Provenance is a single-branch feature for now: the fan-out
        # report has no one model/lineage to attribute artifacts to.
        prov = ProvenanceStore() if provenance and not fanout else None
        # None when the chaos plan is absent/disabled: every stage hook
        # below degenerates to the exact production path.
        chaos = build_injector(config.chaos)
        # The content-addressed store (None with caching off): one handle
        # shared by every stage and every fan-out branch — branch configs
        # inherit the root ``cache_dir``, so all branches dedupe into the
        # same object space.
        cas = open_store(config, chaos=chaos)

        # The run journal: write-ahead intents/completions plus the
        # integrity manifest.  ``resume`` replays a dead run's journal
        # and turns every stage below into an idempotent consumer.
        journal: Optional[WorkflowJournal] = None
        if config.journal_enabled:
            journal = WorkflowJournal(config.journal_dir, durable=config.journal_durable)
            journal.start(resume=resume)

        def on_end(name: str, **counts: Any) -> None:
            timeline.end(name, **counts)
            # A consistent on-disk view after each checkpointable stage.
            if journal is not None and name in ("download", "inference", "shipment"):
                journal.checkpoint()

        # Horizontal scale-out: a process pool shared by the download,
        # preprocess, and inference nodes.  Created after the journal is
        # open (workers append to the same journal file; O_APPEND keeps
        # concurrent single-line appends safe) and only when configured —
        # the default is the exact single-process path.
        pool: Optional[ProcWorkerPool] = None
        pool_stats: Optional[PoolStats] = None
        if config.runtime_workers > 1 or config.elastic.enabled:
            from repro.core.scaleout import build_pool

            pool = build_pool(config, archive=self.archive)
            pool.start()

        handles: Dict[str, Any] = {}
        plan = self.build_plan(
            metrics=metrics, prov=prov, chaos=chaos, journal=journal,
            handles=handles, streaming=use_stream, pool=pool, cache=cas,
        )
        if use_stream:
            runner: PlanRunner = StreamingPlanRunner(
                on_begin=timeline.begin, on_end=on_end,
                on_workers=timeline.workers, stream=config.stream,
            )
        else:
            runner = PlanRunner(
                on_begin=timeline.begin, on_end=on_end, on_workers=timeline.workers
            )
        try:
            state = runner.run(plan)
        except BaseException:
            if pool is not None:
                pool.terminate()
            raise
        if pool is not None:
            pool.close()
            pool_stats = pool.stats()

        if fanout:
            tags = [branch_tag(i, m) for i, m in expand_branches(config)]
            download = self._merge_downloads(
                [state[f"download@{inst}"] for inst in config.instruments]
            )
            preprocess = self._merge_preprocess(
                [state[f"preprocess@{inst}"] for inst in config.instruments]
            )
            workers = [handles[f"worker@{tag}"] for tag in tags]
            inference_results = [r for w in workers for r in w.results]
            inference_errors = [e for w in workers for e in w.errors]
            inference_quarantined = [q for w in workers for q in w.quarantined]
            crawler_errors = [
                e for tag in tags for e in handles[f"crawler@{tag}"].errors
            ]
            refined_tiles = sum(w.refined_tiles for w in workers)
            shipment = self._merge_shipments(
                tags, [state[f"shipment@{tag}"] for tag in tags]
            )
            model = self.model
        else:
            download = state["download"]
            preprocess = state["preprocess"]
            shipment = state["shipment"]
            model = state["model"]
            inference: InferenceWorker = handles["worker"]
            crawler: DirectoryCrawler = handles["crawler"]
            inference_results = list(inference.results)
            inference_errors = list(inference.errors)
            inference_quarantined = list(inference.quarantined)
            crawler_errors = list(crawler.errors)
            refined_tiles = inference.refined_tiles

            # Fold the bootstrap granules back into the report.
            for head in reversed(handles["bootstrap_reports"]):
                preprocess.results = head.results + preprocess.results
                preprocess.quarantined = head.quarantined + preprocess.quarantined

        if prov:
            sets_by_key = {gs.key: gs for gs in download.granule_sets}
            model_entity = prov.entity(
                "model", config.model_path or "model:bootstrapped",
                num_classes=model.num_classes,
            )
            for result in preprocess.results:
                if result.tile_path is None:
                    continue
                activity = prov.start_activity(
                    "preprocess", "parsl", tile_size=config.tile_size,
                    cloud_threshold=config.cloud_threshold,
                )
                source = sets_by_key.get(result.key)
                if source is not None:
                    for path in source.paths.values():
                        prov.record_use(activity, prov.entity("granule", path))
                prov.record_generation(
                    activity, prov.entity("tile_file", result.tile_path, tiles=result.tiles)
                )
                prov.end_activity(activity)
            for inf in inference_results:
                activity = prov.start_activity("inference", "globus-flow")
                prov.record_use(activity, prov.entity("tile_file", inf.src_path))
                prov.record_use(activity, model_entity)
                prov.record_generation(
                    activity,
                    prov.entity("labelled_file", inf.out_path, classes=inf.classes_seen),
                )
                prov.end_activity(activity)

        # Telemetry rollup (Section V-A's workflow-insight goal).
        metrics.counter("files").inc(download.files, stage="download")
        metrics.counter("bytes").inc(download.nbytes, stage="download")
        metrics.counter("files_skipped").inc(download.skipped, stage="download")
        metrics.counter("tiles").inc(preprocess.total_tiles)
        metrics.counter("files").inc(
            sum(1 for r in preprocess.results if r.tile_path), stage="preprocess"
        )
        metrics.counter("files").inc(len(inference_results), stage="inference")
        task_seconds = metrics.histogram(
            "task_seconds", buckets=(0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)
        )
        for result in preprocess.results:
            task_seconds.observe(result.seconds)
        stage_seconds = metrics.histogram(
            "stage_seconds", buckets=(0.1, 1.0, 10.0, 60.0, 600.0)
        )
        for span in timeline.breakdown():
            stage_seconds.observe(span.duration)
        if shipment is not None:
            metrics.counter("files").inc(len(shipment.moved), stage="shipment")
            metrics.counter("bytes").inc(shipment.nbytes, stage="shipment")

        # Resilience accounting (always present, so dashboards can rely
        # on the keys; all zeros on a clean run).
        retries = metrics.counter("retries")
        retries.inc(download.retry_attempts, stage="download")
        if shipment is not None:
            retries.inc(shipment.retries, stage="shipment")
        metrics.counter("breaker_open").inc(download.breaker_trips)
        quarantined = metrics.counter("quarantined")
        quarantined.inc(len(download.failed) + len(download.incomplete), stage="download")
        quarantined.inc(len(preprocess.quarantined), stage="preprocess")
        quarantined.inc(len(inference_quarantined), stage="inference")
        faults = metrics.counter("faults_injected")
        if chaos is not None:
            for kind, count in sorted(chaos.counts_by_kind().items()):
                faults.inc(count, kind=kind)

        # Checkpoint/resume accounting (always present, zeros on fresh
        # clean runs, so dashboards can rely on the keys).
        journal_counters = (
            dict(journal.counters()) if journal is not None
            else {"resumed_items": 0, "replayed_items": 0, "manifest_mismatches": 0}
        )
        if pool_stats is not None:
            # Worker processes journal their own units; their counter
            # deltas arrive with each envelope result and fold into the
            # same rollup the single-process path reports.
            for key in ("resumed_items", "replayed_items", "manifest_mismatches"):
                journal_counters[key] += int(pool_stats.counters.get(key, 0))
            metrics.counter("breaker_open").inc(
                int(pool_stats.counters.get("breaker_trips", 0))
            )
        metrics.counter("resumed_items").inc(journal_counters["resumed_items"])
        metrics.counter("replayed_items").inc(journal_counters["replayed_items"])
        metrics.counter("manifest_mismatches").inc(journal_counters["manifest_mismatches"])

        # Scale-out accounting (satellite of the pool above): pool-level
        # counters plus a per-worker breakdown, zeros when the run never
        # left the parent process.
        scaleout: Dict[str, object] = {
            "enabled": pool_stats is not None,
            "units_executed": 0,
            "busy_seconds": 0.0,
            "requeues": 0,
            "respawns": 0,
            "scale_out_events": 0,
            "scale_in_events": 0,
            "workers_launched": 0,
            "per_worker": [],
        }
        if pool_stats is not None:
            scaleout.update(
                units_executed=pool_stats.units_executed,
                busy_seconds=pool_stats.busy_seconds,
                requeues=pool_stats.requeues,
                respawns=pool_stats.respawns,
                scale_out_events=pool_stats.scale_out_events,
                scale_in_events=pool_stats.scale_in_events,
                workers_launched=pool_stats.workers_launched,
                per_worker=[
                    {
                        "worker_id": ws.worker_id,
                        "pid": ws.pid,
                        "units": ws.units,
                        "busy_seconds": ws.busy_seconds,
                    }
                    for ws in pool_stats.workers
                ],
            )
        metrics.counter("pool.units_executed").inc(int(scaleout["units_executed"]))
        metrics.counter("pool.busy_seconds").inc(float(scaleout["busy_seconds"]))
        metrics.counter("pool.requeues").inc(int(scaleout["requeues"]))
        metrics.counter("pool.respawns").inc(int(scaleout["respawns"]))
        metrics.counter("pool.scale_out_events").inc(int(scaleout["scale_out_events"]))
        metrics.counter("pool.scale_in_events").inc(int(scaleout["scale_in_events"]))
        metrics.counter("pool.workers_launched").inc(int(scaleout["workers_launched"]))

        # Partition-tolerance accounting: the local path never crosses a
        # wire, so these are structural zeros — registered anyway so the
        # clean-run baseline ("no partitions means every counter is 0")
        # is checkable rather than merely absent.
        partition: Dict[str, object] = {"enabled": False}
        for key in PARTITION_COUNTERS:
            partition[key] = 0
            metrics.counter(f"partition.{key}").inc(0)

        # Content-addressed cache accounting: the CAS counter family is
        # always present (zeros with caching off), so the bench gates and
        # dashboards never branch on key existence.  Stage-level
        # short-circuit counts come from the reports — they survive the
        # pool path, where workers hold their own store handles and the
        # parent's in-process counters stay at zero.
        cache_summary: Dict[str, object] = {"enabled": cas is not None}
        for key in CACHE_COUNTERS:
            cache_summary[key] = 0
        if cas is not None:
            cache_summary.update(cas.counters())
            cache_summary["dir"] = config.cache_dir
        cache_summary["download_cached"] = download.cached
        cache_summary["preprocess_cached"] = preprocess.cached
        cache_summary["shipment_deduped"] = (
            shipment.deduped if shipment is not None else 0
        )
        cache_summary["fetched_bytes"] = download.fetched_bytes
        cache_summary["refined_tiles"] = refined_tiles
        for key in CACHE_COUNTERS:
            metrics.counter(f"cache.{key}").inc(int(cache_summary[key]))
        stage_hits = metrics.counter("cache.stage_hits")
        stage_hits.inc(download.cached, stage="download")
        stage_hits.inc(preprocess.cached, stage="preprocess")
        if shipment is not None:
            stage_hits.inc(shipment.deduped, stage="shipment")
        metrics.counter("cache.refined_tiles").inc(refined_tiles)
        metrics.counter("bytes_fetched").inc(
            download.fetched_bytes, stage="download"
        )

        # Streaming dataflow accounting: per-edge queue depth / stall /
        # wait rollups plus the measured stage-overlap seconds that the
        # pipelining bought (empty/zero under barrier mode).
        hub = state.get(STREAMS_KEY)
        stream_summary: Optional[Dict[str, object]] = None
        if hub is not None:
            edge_stats = {s.edge: s.as_dict() for s in hub.stats()}
            stream_summary = {"enabled": use_stream, "edges": edge_stats}
            items = metrics.counter("stream.items")
            stalls = metrics.counter("stream.producer_stall_seconds")
            waits = metrics.counter("stream.consumer_wait_seconds")
            depth = metrics.gauge("stream.max_queue_depth")
            for stat in hub.stats():
                items.inc(stat.items, edge=stat.edge)
                stalls.inc(stat.producer_stall_seconds, edge=stat.edge)
                waits.inc(stat.consumer_wait_seconds, edge=stat.edge)
                depth.set(stat.max_depth, edge=stat.edge)
        overlap = timeline.overlaps()
        overlap_gauge = metrics.gauge("stage_overlap_seconds")
        for stages, seconds in overlap.items():
            overlap_gauge.set(seconds, stages=stages)

        errors = list(crawler_errors) + list(inference_errors)
        errors.extend(download.failed)
        errors.extend(f"incomplete scene dropped: {key}" for key in download.incomplete)
        errors.extend(f"preprocess quarantined {q.describe()}" for q in preprocess.quarantined)
        if shipment is not None and shipment.error:
            errors.append(f"shipment: {shipment.error}")
        if shipment is not None:
            errors.extend(
                f"shipment integrity mismatch at destination: {name}"
                for name in shipment.mismatches
            )
        if journal is not None:
            journal.close()
        return WorkflowReport(
            download=download,
            preprocess=preprocess,
            inference=inference_results,
            shipment=shipment,
            breakdown=timeline.breakdown(),
            timeline=timeline,
            errors=errors,
            provenance=prov,
            metrics=metrics,
            chaos=chaos.summary() if chaos is not None else None,
            inference_quarantined=inference_quarantined,
            resumed_items=journal_counters["resumed_items"],
            replayed_items=journal_counters["replayed_items"],
            manifest_mismatches=journal_counters["manifest_mismatches"],
            journal=journal.summary() if journal is not None else None,
            stream=stream_summary,
            stage_overlap_seconds=overlap,
            scaleout=scaleout,
            partition=partition,
            cache=cache_summary,
        )
