"""Stage 5 — Shipment: move labelled files to the destination filesystem.

Real-execution flavour of Section III stage 5: the labelled NetCDFs in
the transfer-out directory move to the destination ("Frontier's Orion")
with integrity verification, via the Globus-Transfer-like local client.

Resilience: the client retries individual files with backoff and bounds
the batch with a wall-clock timeout (``shipment.retries`` /
``shipment.timeout``), absorbing the WAN degradation the Defiant->
Frontier path is prone to.  A batch whose budget is spent is recorded in
``ShipmentReport.error`` rather than crashing the workflow — delivery
can be re-driven later (transfers are sync-idempotent).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.chaos.engine import FaultInjector
from repro.chaos.surfaces import ChaosTransferClient
from repro.core.config import EOMLConfig
from repro.transfer import LocalTransferClient, TransferError

__all__ = ["ShipmentReport", "ShipmentStage"]


@dataclass(frozen=True)
class ShipmentReport:
    moved: List[str]
    nbytes: int
    seconds: float
    retries: int = 0
    error: Optional[str] = None


class ShipmentStage:
    def __init__(
        self,
        config: EOMLConfig,
        client: LocalTransferClient | None = None,
        chaos: Optional[FaultInjector] = None,
    ):
        self.config = config
        if client is not None:
            self.client = client
        else:
            kwargs = dict(
                retries=config.shipment_retries,
                backoff=config.shipment_backoff,
                timeout=config.shipment_timeout,
            )
            self.client = (
                ChaosTransferClient(chaos, **kwargs)
                if chaos is not None
                else LocalTransferClient(**kwargs)
            )

    def run(self) -> ShipmentReport:
        """Ship everything currently in the transfer-out directory."""
        started = time.monotonic()
        src = self.config.transfer_out
        if not os.path.isdir(src):
            return ShipmentReport(moved=[], nbytes=0, seconds=0.0)
        names = sorted(
            name for name in os.listdir(src)
            if name.endswith(".nc") and not name.endswith(".part")
        )
        before = self.client.bytes_transferred
        retries_before = self.client.retries_used
        error: Optional[str] = None
        moved: List[str] = []
        if names:
            try:
                moved = self.client.transfer(src, self.config.destination, names)
            except TransferError as exc:
                error = str(exc)
        return ShipmentReport(
            moved=moved,
            nbytes=self.client.bytes_transferred - before,
            seconds=time.monotonic() - started,
            retries=self.client.retries_used - retries_before,
            error=error,
        )
