"""Stage 5 — Shipment: move labelled files to the destination filesystem.

Real-execution flavour of Section III stage 5: the labelled NetCDFs in
the transfer-out directory move to the destination ("Frontier's Orion")
with integrity verification, via the Globus-Transfer-like local client.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List

from repro.core.config import EOMLConfig
from repro.transfer import LocalTransferClient

__all__ = ["ShipmentReport", "ShipmentStage"]


@dataclass(frozen=True)
class ShipmentReport:
    moved: List[str]
    nbytes: int
    seconds: float


class ShipmentStage:
    def __init__(self, config: EOMLConfig, client: LocalTransferClient | None = None):
        self.config = config
        self.client = client or LocalTransferClient()

    def run(self) -> ShipmentReport:
        """Ship everything currently in the transfer-out directory."""
        started = time.monotonic()
        src = self.config.transfer_out
        if not os.path.isdir(src):
            return ShipmentReport(moved=[], nbytes=0, seconds=0.0)
        names = sorted(
            name for name in os.listdir(src)
            if name.endswith(".nc") and not name.endswith(".part")
        )
        before = self.client.bytes_transferred
        moved = self.client.transfer(src, self.config.destination, names) if names else []
        return ShipmentReport(
            moved=moved,
            nbytes=self.client.bytes_transferred - before,
            seconds=time.monotonic() - started,
        )
