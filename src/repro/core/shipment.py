"""Stage 5 — Shipment: move labelled files to the destination filesystem.

Real-execution flavour of Section III stage 5: the labelled NetCDFs in
the transfer-out directory move to the destination ("Frontier's Orion")
with integrity verification, via the Globus-Transfer-like local client.

Resilience: the client retries individual files with backoff and bounds
the batch with a wall-clock timeout (``shipment.retries`` /
``shipment.timeout``), absorbing the WAN degradation the Defiant->
Frontier path is prone to.  A batch whose budget is spent is recorded in
``ShipmentReport.error`` rather than crashing the workflow — delivery
can be re-driven later (transfers are sync-idempotent).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chaos.engine import FaultInjector
from repro.chaos.surfaces import ChaosTransferClient
from repro.core.config import EOMLConfig
from repro.journal import WorkflowJournal, sha256_file
from repro.transfer import LocalTransferClient, TransferError

__all__ = ["ShipmentReport", "ShipmentStage"]


@dataclass(frozen=True)
class ShipmentReport:
    moved: List[str]
    nbytes: int
    seconds: float
    retries: int = 0
    error: Optional[str] = None
    resumed: int = 0                  # journaled deliveries still intact
    verified: int = 0                 # destination digests confirmed this run
    mismatches: List[str] = field(default_factory=list)
    # file name -> SHA-256 of the delivered bytes (end-to-end identity)
    checksums: Dict[str, str] = field(default_factory=dict)


class ShipmentStage:
    def __init__(
        self,
        config: EOMLConfig,
        client: LocalTransferClient | None = None,
        chaos: Optional[FaultInjector] = None,
        journal: Optional[WorkflowJournal] = None,
    ):
        self.config = config
        self.journal = journal
        if client is not None:
            self.client = client
        else:
            kwargs = dict(
                retries=config.shipment_retries,
                backoff=config.shipment_backoff,
                timeout=config.shipment_timeout,
            )
            self.client = (
                ChaosTransferClient(chaos, **kwargs)
                if chaos is not None
                else LocalTransferClient(**kwargs)
            )

    def run(self) -> ShipmentReport:
        """Ship everything currently in the transfer-out directory.

        With a journal, delivery is idempotent: a file whose journaled
        shipment still verifies at the destination is skipped outright,
        and every newly moved file's digest is re-read *from the
        destination* and compared against the labelled artifact's
        journaled digest — the end-to-end integrity check.
        """
        started = time.monotonic()
        src = self.config.transfer_out
        if not os.path.isdir(src):
            return ShipmentReport(moved=[], nbytes=0, seconds=0.0)
        names = sorted(
            name for name in os.listdir(src)
            if name.endswith(".nc") and not name.endswith(".part")
        )
        checksums: Dict[str, str] = {}
        moved: List[str] = []
        pending: List[str] = []
        resumed = 0
        if self.journal is not None:
            for name in names:
                decision = self.journal.resume("shipment", name)
                if decision.skip:
                    payload = decision.payload
                    moved.append(
                        payload.get("artifact")
                        or os.path.join(self.config.destination, name)
                    )
                    if payload.get("sha256"):
                        checksums[name] = payload["sha256"]
                    resumed += 1
                else:
                    pending.append(name)
        else:
            pending = list(names)
        before = self.client.bytes_transferred
        retries_before = self.client.retries_used
        error: Optional[str] = None
        moved_now: List[str] = []
        if pending:
            if self.journal is not None:
                for name in pending:
                    self.journal.intent("shipment", name)
            try:
                moved_now = self.client.transfer(src, self.config.destination, pending)
            except TransferError as exc:
                error = str(exc)
        # Destination-side verification: trust nothing the copy loop
        # reported; re-digest the delivered bytes where they landed.
        verified = 0
        mismatches: List[str] = []
        for name, dst_path in zip(pending, moved_now):
            try:
                delivered = sha256_file(dst_path)
            except OSError:
                mismatches.append(name)
                continue
            src_path = os.path.join(src, name)
            expected: Optional[str] = None
            if self.journal is not None:
                expected = self.journal.expected_sha(src_path)
            if expected is None:
                try:
                    expected = sha256_file(src_path)
                except OSError:
                    expected = None
            checksums[name] = delivered
            if expected is not None and delivered != expected:
                mismatches.append(name)
                continue
            verified += 1
            if self.journal is not None:
                self.journal.complete(
                    "shipment", name, artifact=dst_path, sha256=delivered,
                )
        moved.extend(moved_now)
        return ShipmentReport(
            moved=moved,
            nbytes=self.client.bytes_transferred - before,
            seconds=time.monotonic() - started,
            retries=self.client.retries_used - retries_before,
            error=error,
            resumed=resumed,
            verified=verified,
            mismatches=mismatches,
            checksums=checksums,
        )
