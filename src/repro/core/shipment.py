"""Stage 5 — Shipment: move labelled files to the destination filesystem.

Real-execution flavour of Section III stage 5: the labelled NetCDFs in
the transfer-out directory move to the destination ("Frontier's Orion")
with integrity verification, via the Globus-Transfer-like local client.

Each file is one :class:`~repro.runtime.unit.WorkUnit`: the stage
runtime's retry middleware re-attempts an individual move with the
shared :class:`~repro.net.retry.BackoffPolicy` (``shipment.retries``),
a batch-wide deadline (``shipment.timeout``) aborts before any further
attempt, and the quarantine middleware converts a spent budget into
``ShipmentReport.error`` rather than a crash — delivery can be
re-driven later (transfers are sync-idempotent).  The journal middleware
makes delivery idempotent: a file whose journaled shipment still
verifies at the destination is skipped outright.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.chaos.engine import FaultInjector
from repro.chaos.surfaces import ChaosTransferClient
from repro.core.config import EOMLConfig
from repro.journal import WorkflowJournal, sha256_file
from repro.runtime import (
    CACHED,
    FAILED,
    QUARANTINED,
    RESUMED,
    CachePolicy,
    FailurePolicy,
    RetrySpec,
    UnitResult,
    WorkUnit,
    build_executor,
)
from repro.transfer import LocalTransferClient, TransferError

__all__ = ["ShipmentReport", "ShipmentStage"]


@dataclass(frozen=True)
class ShipmentReport:
    moved: List[str]
    nbytes: int
    seconds: float
    retries: int = 0
    error: Optional[str] = None
    resumed: int = 0                  # journaled deliveries still intact
    verified: int = 0                 # destination digests confirmed this run
    deduped: int = 0                  # satisfied without a WAN transfer (CAS)
    mismatches: List[str] = field(default_factory=list)
    # file name -> SHA-256 of the delivered bytes (end-to-end identity)
    checksums: Dict[str, str] = field(default_factory=dict)


class ShipmentStage:
    def __init__(
        self,
        config: EOMLConfig,
        client: LocalTransferClient | None = None,
        chaos: Optional[FaultInjector] = None,
        journal: Optional[WorkflowJournal] = None,
        key_prefix: str = "",
        cache: Optional[object] = None,
    ):
        self.config = config
        self.journal = journal
        self.cache = cache
        # Fan-out plans share one journal across branches; the per-branch
        # key prefix keeps same-named labelled files from colliding in it.
        self.key_prefix = key_prefix
        if client is not None:
            self.client = client
        else:
            kwargs = dict(
                retries=config.shipment_retries,
                backoff=config.shipment_backoff,
                timeout=config.shipment_timeout,
            )
            self.client = (
                ChaosTransferClient(chaos, **kwargs)
                if chaos is not None
                else LocalTransferClient(**kwargs)
            )
        self._executor = build_executor(journal=journal, chaos=chaos, cache=cache)

    def _unit_for(self, name: str, deadline: Optional[float]) -> WorkUnit:
        """One file's move + destination verification as a work unit."""
        src_path = os.path.join(self.config.transfer_out, name)

        def check_deadline() -> None:
            # Raised *outside* the retry loop's catch, so a spent batch
            # budget aborts immediately instead of burning attempts.
            if deadline is not None and time.monotonic() > deadline:
                raise TransferError(
                    f"transfer timed out after {self.config.shipment_timeout}s "
                    f"while moving {name}"
                )

        def body(ctx) -> UnitResult:
            ctx.begin()
            dst_path, _, _ = self.client.move_one(
                self.config.transfer_out, self.config.destination, name
            )
            # Destination-side verification: trust nothing the copy loop
            # reported; re-digest the delivered bytes where they landed.
            try:
                delivered = sha256_file(dst_path)
            except OSError:
                return UnitResult(
                    outcome="done", artifact=dst_path, value="mismatch", journal=False
                )
            expected: Optional[str] = None
            if ctx.journal is not None:
                expected = ctx.journal.expected_sha(src_path)
            if expected is None:
                try:
                    expected = sha256_file(src_path)
                except OSError:
                    expected = None
            if expected is not None and delivered != expected:
                return UnitResult(
                    outcome="done",
                    artifact=dst_path,
                    value="mismatch",
                    payload={"sha256": delivered},
                    journal=False,
                )
            return UnitResult(
                outcome="done", artifact=dst_path, payload={"sha256": delivered}
            )

        dst_path = os.path.join(self.config.destination, name)

        def _source_digest(ctx) -> Optional[str]:
            expected = None
            if ctx.journal is not None:
                expected = ctx.journal.expected_sha(src_path)
            if expected is None:
                try:
                    expected = sha256_file(src_path)
                except OSError:
                    expected = None
            return expected

        def _consume_source() -> None:
            # Shipment is a *move*: once the destination holds the
            # bytes, the transfer-out copy must go, exactly as the
            # transfer client would have taken it.
            try:
                os.unlink(src_path)
            except OSError:
                pass

        def cache_lookup(ctx, cas) -> Optional[UnitResult]:
            expected = _source_digest(ctx)
            if expected is None:
                return None
            # Dedupe: the destination already holds these exact bytes
            # (a co-located prior run, or a crash after the move) — no
            # transfer needed at all.
            if os.path.exists(dst_path):
                try:
                    if sha256_file(dst_path) == expected:
                        _consume_source()
                        return UnitResult(
                            outcome=CACHED, artifact=dst_path,
                            payload={"sha256": expected},
                        )
                except OSError:
                    pass
            # Co-located CAS: materialize at the destination instead of
            # paying the WAN move (digest-verified on the way out).
            nbytes = cas.materialize(expected, dst_path)
            if nbytes is None:
                return None
            _consume_source()
            return UnitResult(
                outcome=CACHED, artifact=dst_path,
                payload={"sha256": expected, "nbytes": nbytes},
            )

        def cache_store(ctx, cas, result) -> None:
            # Only verified deliveries may seed the store.
            if result.value == "mismatch" or result.artifact is None:
                return
            cas.store_file(
                result.artifact, digest=(result.payload or {}).get("sha256")
            )

        return WorkUnit(
            stage="shipment",
            key=self.key_prefix + name,
            body=body,
            cache=CachePolicy(lookup=cache_lookup, store=cache_store),
            retry=RetrySpec(
                retries=self.config.shipment_retries,
                backoff=self.config.shipment_backoff,
                retry_on=(TransferError,),
                before_attempt=check_deadline,
            ),
            failure=FailurePolicy(
                on_exhausted="record",
                describe=lambda attempts, error: error,
                catch=(TransferError,),
            ),
        )

    def _pending_names(self) -> List[str]:
        """Shippable files currently in the transfer-out directory."""
        src = self.config.transfer_out
        if not os.path.isdir(src):
            return []
        return sorted(
            name for name in os.listdir(src)
            if name.endswith(".nc") and not name.endswith(".part")
        )

    def run(self) -> ShipmentReport:
        """Ship everything currently in the transfer-out directory.

        With a journal, delivery is idempotent: a file whose journaled
        shipment still verifies at the destination is skipped outright,
        and every newly moved file's digest is re-read *from the
        destination* and compared against the labelled artifact's
        journaled digest — the end-to-end integrity check.
        """
        if not os.path.isdir(self.config.transfer_out):
            return ShipmentReport(moved=[], nbytes=0, seconds=0.0)
        return self._drive(self._pending_names(), sweep=False)

    def run_stream(self, names: Iterable[str]) -> ShipmentReport:
        """Ship file names as an upstream producer announces them.

        Each arriving name (a labelled file's basename) moves
        immediately, so delivery overlaps the inference drain.  Names
        are deduplicated, the batch deadline starts at the *first* move
        (not while idly waiting on the stream), and once the stream
        ends the transfer-out directory is swept for anything not
        announced — files published by a prior crashed run must still
        ship.  Accounting and failure semantics match :meth:`run`.
        """
        return self._drive(names, sweep=True)

    def _drive(self, names: Iterable[str], sweep: bool) -> ShipmentReport:
        started = time.monotonic()
        before = self.client.bytes_transferred
        deadline: Optional[float] = None
        seen: set = set()
        checksums: Dict[str, str] = {}
        moved: List[str] = []
        mismatches: List[str] = []
        resumed = 0
        verified = 0
        deduped = 0
        retries_total = 0
        error: Optional[str] = None
        stopped = False

        def ship(name: str) -> None:
            nonlocal deadline, error, retries_total, resumed, verified
            nonlocal deduped, stopped
            if name in seen or stopped:
                return
            seen.add(name)
            if deadline is None and self.config.shipment_timeout is not None:
                deadline = time.monotonic() + self.config.shipment_timeout
            result = self._executor.execute(self._unit_for(name, deadline))
            if result.outcome == RESUMED:
                moved.append(
                    result.payload.get("artifact")
                    or os.path.join(self.config.destination, name)
                )
                if result.payload.get("sha256"):
                    checksums[name] = result.payload["sha256"]
                resumed += 1
                return
            if result.outcome == CACHED:
                # Satisfied without a WAN transfer: destination already
                # matched, or the shared CAS materialized it in place.
                moved.append(result.artifact)
                checksums[name] = result.payload["sha256"]
                verified += 1
                deduped += 1
                return
            if result.outcome in (FAILED, QUARANTINED):
                # Budget spent (retries or deadline): record and stop —
                # the remaining files wait for a later re-drive.
                if result.outcome == FAILED:
                    retries_total += max(0, result.attempts - 1)
                error = result.error
                stopped = True
                return
            retries_total += result.attempts
            moved.append(result.artifact)
            if result.value == "mismatch":
                mismatches.append(name)
                if result.payload.get("sha256"):
                    checksums[name] = result.payload["sha256"]
            else:
                checksums[name] = result.payload["sha256"]
                verified += 1

        for name in names:
            ship(name)
            if stopped:
                break
        if sweep and not stopped:
            for name in self._pending_names():
                ship(name)
                if stopped:
                    break
        return ShipmentReport(
            moved=moved,
            nbytes=self.client.bytes_transferred - before,
            seconds=time.monotonic() - started,
            retries=retries_total,
            error=error,
            resumed=resumed,
            verified=verified,
            deduped=deduped,
            mismatches=mismatches,
            checksums=checksums,
        )
