"""Content-addressed artifact store (CAS) shared across runs and tenants.

The journal's :class:`~repro.journal.manifest.IntegrityManifest` already
computes a SHA-256 for every artifact the workflow publishes; this
package promotes those digests into a shared store so repeated campaigns
stop paying full I/O cost twice.  See :mod:`repro.cas.store` for the
object layout, the derived-key table, pins, and GC.
"""

from repro.cas.store import CACHE_COUNTERS, CASStore, object_relpath

__all__ = ["CACHE_COUNTERS", "CASStore", "object_relpath"]
