"""The content-addressed store: sharded objects, derived keys, pins, GC.

Layout under one root directory (typically shared by every run and every
co-located site agent of a facility)::

    objects/ab/cdef...   immutable blobs named by their SHA-256
    keys/ab/cdef...      derived-key table: sha256(logical key) -> JSON
    pins/<digest>/<owner>  ref-count pins (one empty file per owner)
    quarantine/          objects whose bytes stopped matching their name

Design rules, in order of importance:

* **The cache is an optimization, never a source of truth.**  Every
  store failure (ENOSPC, permissions, races) is swallowed and counted;
  every read is digest-verified before a byte reaches a consumer, and a
  mismatch quarantines the object and reports a miss so the caller
  re-fetches.  A corrupt or missing CAS can only make the workflow
  slower, never wrong.
* **Publication is atomic and race-safe.**  Objects are copied (never
  hardlinked — a later in-place mutation of the source must not alias
  into the store) to a per-process/per-thread temp name, digested while
  streaming, then ``os.replace``\\ d into the sharded final name.  Two
  processes storing the same digest both succeed: the replace is
  last-writer-wins over identical content.
* **Materialization is hardlink-or-copy.**  A hit hardlinks the object
  to the destination when the filesystem allows it (zero-copy) and
  falls back to a plain copy across devices; either way the object is
  verified first and its mtime refreshed, so GC's LRU order follows use.
* **GC never evicts a pinned object.**  The budget sweep walks objects
  oldest-first and stops at the budget; pinned digests are skipped no
  matter how old.
"""

from __future__ import annotations

import errno
import json
import os
import shutil
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.util.digest import HASH_SLICE, digest_file, fsync_dir, sha256_file

__all__ = ["CASStore", "object_relpath", "CACHE_COUNTERS"]

_OBJECTS = "objects"
_KEYS = "keys"
_PINS = "pins"
_QUARANTINE = "quarantine"

# The always-present counter family (zeros when the cache is idle), so
# reports and metrics never grow or shrink keys between runs.
CACHE_COUNTERS = (
    "hits",            # materializations served from the store
    "misses",          # lookups that found no (valid) object
    "stores",          # objects newly published into the store
    "dedup_stores",    # store calls whose object already existed
    "key_hits",        # derived-key lookups that resolved
    "key_misses",      # derived-key lookups that did not
    "bytes_saved",     # bytes NOT re-fetched/re-computed thanks to hits
    "bytes_stored",    # bytes written into the store
    "store_errors",    # swallowed store failures (ENOSPC and friends)
    "corrupt_evictions",  # objects quarantined by the read-time digest check
    "evicted_objects",    # GC victims
    "evicted_bytes",
)


def object_relpath(digest: str) -> str:
    """Sharded relative path of one object: ``ab/cdef...``."""
    if len(digest) < 3:
        raise ValueError(f"not a sha256 digest: {digest!r}")
    return os.path.join(digest[:2], digest[2:])


class CASStore:
    """One content-addressed store rooted at a directory.

    ``chaos`` is an optional :class:`~repro.chaos.engine.FaultInjector`;
    the store is itself a fault surface (stage ``cache``): a scheduled
    ``cache_corrupt`` damages the object's bytes just before the
    read-time verification (modeling bit-rot on the shared cache
    volume), and ``cache_enospc`` makes a store attempt fail with
    ENOSPC.  Both must be invisible to correctness.
    """

    def __init__(
        self,
        root: str,
        budget_bytes: Optional[int] = None,
        durable: bool = True,
        chaos: Any = None,
    ):
        self.root = os.path.abspath(root)
        self.budget_bytes = budget_bytes
        self.durable = durable
        self.chaos = chaos
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in CACHE_COUNTERS}
        for sub in (_OBJECTS, _KEYS, _PINS, _QUARANTINE):
            os.makedirs(os.path.join(self.root, sub), exist_ok=True)

    # -- bookkeeping ---------------------------------------------------------

    def _note(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def _temp_name(self, final_path: str) -> str:
        # Unique per process AND thread: two writers racing on the same
        # digest must never interleave into one temp file.
        return f"{final_path}.part.{os.getpid()}.{threading.get_ident()}"

    def _object_path(self, digest: str) -> str:
        return os.path.join(self.root, _OBJECTS, object_relpath(digest))

    def has(self, digest: str) -> bool:
        return os.path.isfile(self._object_path(digest))

    # -- chaos hooks ---------------------------------------------------------

    def _chaos_enospc(self, key: str) -> None:
        if self.chaos is not None and self.chaos.fire("cache", "cache_enospc", key):
            raise OSError(errno.ENOSPC, "chaos: cache volume out of space")

    def _chaos_corrupt(self, digest: str, path: str) -> None:
        if self.chaos is not None and self.chaos.fire("cache", "cache_corrupt", digest):
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))

    def _chaos_crash(self, key: str) -> None:
        if self.chaos is not None:
            from repro.chaos.surfaces import chaos_crash

            chaos_crash(self.chaos, "cache", key)

    # -- storing -------------------------------------------------------------

    def store_file(self, path: str, digest: Optional[str] = None) -> Optional[str]:
        """Publish a file's content as an object; returns its digest.

        The content is copied (digesting while streaming) to a unique
        temp name and atomically renamed, so concurrent stores of the
        same digest are safe.  When ``digest`` is supplied it is an
        integrity *claim*: if the bytes hash differently the store is
        refused (counted, not raised) — a torn source file must never be
        immortalized under a healthy name.  All failures return ``None``.
        """
        try:
            claimed = digest
            if claimed is not None and self.has(claimed):
                self._note("dedup_stores")
                return claimed
            self._chaos_enospc(digest or os.path.basename(path))
            observed, nbytes, temp_path = self._copy_in(path)
            if claimed is not None and observed != claimed:
                os.unlink(temp_path)
                self._note("store_errors")
                return None
            return self._publish(temp_path, observed, nbytes)
        except OSError:
            self._note("store_errors")
            return None

    def store_bytes(self, payload: bytes, digest: str) -> Optional[str]:
        """Publish an in-memory payload whose digest is already known."""
        try:
            if self.has(digest):
                self._note("dedup_stores")
                return digest
            self._chaos_enospc(digest)
            final_path = self._object_path(digest)
            os.makedirs(os.path.dirname(final_path), exist_ok=True)
            temp_path = self._temp_name(final_path)
            with open(temp_path, "wb") as handle:
                handle.write(payload)
                if self.durable:
                    handle.flush()
                    os.fsync(handle.fileno())
            return self._publish(temp_path, digest, len(payload))
        except OSError:
            self._note("store_errors")
            return None

    def _copy_in(self, path: str) -> Tuple[str, int, str]:
        """Copy ``path`` into the objects area under a unique temp name."""
        staging = os.path.join(self.root, _OBJECTS, "incoming")
        os.makedirs(staging, exist_ok=True)
        temp_path = self._temp_name(os.path.join(staging, "obj"))
        import hashlib

        sha = hashlib.sha256()
        nbytes = 0
        buffer = bytearray(HASH_SLICE)
        view = memoryview(buffer)
        with open(path, "rb") as src, open(temp_path, "wb") as dst:
            while True:
                got = src.readinto(buffer)
                if not got:
                    break
                dst.write(view[:got])
                sha.update(view[:got])
                nbytes += got
            if self.durable:
                dst.flush()
                os.fsync(dst.fileno())
        return sha.hexdigest(), nbytes, temp_path

    def _publish(self, temp_path: str, digest: str, nbytes: int) -> str:
        final_path = self._object_path(digest)
        os.makedirs(os.path.dirname(final_path), exist_ok=True)
        os.replace(temp_path, final_path)
        if self.durable:
            fsync_dir(os.path.dirname(final_path))
        self._note("stores")
        self._note("bytes_stored", nbytes)
        return digest

    # -- reading -------------------------------------------------------------

    def materialize(self, digest: str, dest: str) -> Optional[int]:
        """Produce ``dest`` with the object's content; returns its size.

        The object is digest-verified *before* it is handed out; a
        mismatch (bit-rot, a poisoned entry) quarantines the object and
        returns ``None`` — the caller falls back to the authoritative
        source, so bad bytes are never shipped.  Delivery is hardlink
        when possible, copy otherwise, always via a unique temp name and
        an atomic rename under the final destination.
        """
        obj = self._object_path(digest)
        if not os.path.isfile(obj):
            self._note("misses")
            return None
        try:
            self._chaos_corrupt(digest, obj)
            observed, nbytes = digest_file(obj)
            if observed != digest:
                self._quarantine(digest, obj)
                self._note("corrupt_evictions")
                self._note("misses")
                return None
            os.makedirs(os.path.dirname(dest) or ".", exist_ok=True)
            temp_path = self._temp_name(dest)
            try:
                os.link(obj, temp_path)
            except OSError:
                shutil.copyfile(obj, temp_path)
            self._chaos_crash(digest)
            os.replace(temp_path, dest)
            if self.durable:
                fsync_dir(os.path.dirname(dest))
            os.utime(obj)  # LRU: a hit makes the object young again
            self._note("hits")
            self._note("bytes_saved", nbytes)
            return nbytes
        except OSError:
            self._note("misses")
            return None

    def load_bytes(self, digest: str) -> Optional[bytes]:
        """Read an object into memory, digest-verified like materialize.

        Same contract as :meth:`materialize`: a damaged object is
        quarantined and reported as a miss, never handed out.
        """
        obj = self._object_path(digest)
        if not os.path.isfile(obj):
            self._note("misses")
            return None
        try:
            self._chaos_corrupt(digest, obj)
            with open(obj, "rb") as handle:
                payload = handle.read()
        except OSError:
            self._note("misses")
            return None
        import hashlib

        if hashlib.sha256(payload).hexdigest() != digest:
            self._quarantine(digest, obj)
            self._note("corrupt_evictions")
            self._note("misses")
            return None
        try:
            os.utime(obj)
        except OSError:
            pass
        self._note("hits")
        self._note("bytes_saved", len(payload))
        return payload

    def _quarantine(self, digest: str, obj: str) -> None:
        """Move a failed object aside so the next lookup misses cleanly."""
        target = os.path.join(self.root, _QUARANTINE, digest)
        try:
            os.replace(obj, target)
        except OSError:
            try:
                os.unlink(obj)
            except OSError:
                pass

    # -- derived keys --------------------------------------------------------
    #
    # Outputs (tile files) whose content digest is unknown before the
    # computation are cached under a *logical* key — the action-cache
    # pattern: sha256(key string) names a small JSON record that points
    # at the object digest plus whatever payload the stage journaled.

    def _key_path(self, key: str) -> str:
        import hashlib

        hashed = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return os.path.join(self.root, _KEYS, object_relpath(hashed))

    def put_key(self, key: str, value: Dict[str, Any]) -> bool:
        """Record ``key -> value`` (value must be JSON-serializable)."""
        try:
            self._chaos_enospc(key)
            path = self._key_path(key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            payload = json.dumps({"key": key, "value": value}, sort_keys=True)
            temp_path = self._temp_name(path)
            with open(temp_path, "w", encoding="utf-8") as handle:
                handle.write(payload)
                if self.durable:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(temp_path, path)
            return True
        except OSError:
            self._note("store_errors")
            return False

    def get_key(self, key: str) -> Optional[Dict[str, Any]]:
        """Resolve a derived key; ``None`` on absence or damage."""
        try:
            with open(self._key_path(key), "r", encoding="utf-8") as handle:
                parsed = json.load(handle)
        except (OSError, ValueError):
            self._note("key_misses")
            return None
        if not isinstance(parsed, dict) or parsed.get("key") != key:
            self._note("key_misses")
            return None
        self._note("key_hits")
        value = parsed.get("value")
        return value if isinstance(value, dict) else None

    # -- pins ----------------------------------------------------------------

    @staticmethod
    def _owner_name(owner: str) -> str:
        return "".join(c if (c.isalnum() or c in "-_.") else "_" for c in owner) or "_"

    def pin(self, digest: str, owner: str) -> None:
        pin_dir = os.path.join(self.root, _PINS, digest)
        os.makedirs(pin_dir, exist_ok=True)
        pin_path = os.path.join(pin_dir, self._owner_name(owner))
        with open(pin_path, "w", encoding="utf-8"):
            pass

    def unpin(self, digest: str, owner: str) -> None:
        pin_path = os.path.join(self.root, _PINS, digest, self._owner_name(owner))
        try:
            os.unlink(pin_path)
        except OSError:
            return
        try:
            os.rmdir(os.path.dirname(pin_path))
        except OSError:
            pass  # other owners still pin it

    def pinned(self, digest: str) -> bool:
        pin_dir = os.path.join(self.root, _PINS, digest)
        try:
            return bool(os.listdir(pin_dir))
        except OSError:
            return False

    # -- inventory & GC ------------------------------------------------------

    def _walk_objects(self) -> List[Tuple[str, str, int, float]]:
        """All objects as ``(digest, path, nbytes, mtime)``."""
        out: List[Tuple[str, str, int, float]] = []
        objects_root = os.path.join(self.root, _OBJECTS)
        for shard in sorted(os.listdir(objects_root)):
            if len(shard) != 2:
                continue  # the incoming/ staging area, never an object shard
            shard_dir = os.path.join(objects_root, shard)
            try:
                names = sorted(os.listdir(shard_dir))
            except OSError:
                continue
            for name in names:
                path = os.path.join(shard_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                out.append((shard + name, path, stat.st_size, stat.st_mtime))
        return out

    def stats(self) -> Dict[str, Any]:
        objects = self._walk_objects()
        pinned = sum(1 for digest, _, _, _ in objects if self.pinned(digest))
        summary: Dict[str, Any] = {
            "root": self.root,
            "objects": len(objects),
            "total_bytes": sum(nbytes for _, _, nbytes, _ in objects),
            "pinned_objects": pinned,
            "budget_bytes": self.budget_bytes,
        }
        summary.update(self.counters())
        return summary

    def gc(self, budget_bytes: Optional[int] = None) -> Dict[str, Any]:
        """Evict oldest unpinned objects until the store fits the budget.

        ``budget_bytes=None`` falls back to the store's configured
        budget; with neither set the sweep is a no-op inventory pass.
        Pinned objects are never victims, even if the budget cannot be
        met without them.
        """
        budget = self.budget_bytes if budget_bytes is None else budget_bytes
        objects = self._walk_objects()
        total = sum(nbytes for _, _, nbytes, _ in objects)
        report = {
            "scanned": len(objects),
            "total_bytes": total,
            "evicted": 0,
            "evicted_bytes": 0,
            "budget_bytes": budget,
        }
        if budget is None or total <= budget:
            return report
        for digest, path, nbytes, _ in sorted(objects, key=lambda item: item[3]):
            if total <= budget:
                break
            if self.pinned(digest):
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= nbytes
            report["evicted"] += 1
            report["evicted_bytes"] += nbytes
            self._note("evicted_objects")
            self._note("evicted_bytes", nbytes)
        report["total_bytes"] = total
        return report
