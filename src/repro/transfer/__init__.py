"""Globus-Transfer-like data movement between facility filesystems."""

from repro.transfer.client import LocalTransferClient, SimTransferClient, TransferError
from repro.transfer.task import TransferItem, TransferState, TransferTask

__all__ = [
    "SimTransferClient",
    "LocalTransferClient",
    "TransferError",
    "TransferTask",
    "TransferItem",
    "TransferState",
]
