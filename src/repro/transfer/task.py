"""Transfer task model: lifecycle, events, integrity accounting."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim import Event

__all__ = ["TransferState", "TransferItem", "TransferTask"]


class TransferState(enum.Enum):
    ACTIVE = "active"
    SUCCEEDED = "succeeded"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self is not TransferState.ACTIVE


@dataclass
class TransferItem:
    """One file within a transfer task."""

    src_path: str
    dst_path: str
    nbytes: int = 0
    done: bool = False
    verified: bool = False
    skipped: bool = False   # sync mode: destination already current
    checksum: Optional[str] = None  # SHA-256 of the delivered bytes


@dataclass
class TransferTask:
    """A batch of files moving between two endpoints."""

    task_id: int
    label: str
    src_endpoint: str
    dst_endpoint: str
    items: List[TransferItem]
    submitted_at: float
    state: TransferState = TransferState.ACTIVE
    finished_at: Optional[float] = None
    bytes_transferred: int = 0
    faults: int = 0
    done: Event = None  # type: ignore[assignment]
    error: Optional[str] = None

    @property
    def total_bytes(self) -> int:
        return sum(item.nbytes for item in self.items)

    @property
    def files_done(self) -> int:
        return sum(1 for item in self.items if item.done)

    @property
    def files_skipped(self) -> int:
        return sum(1 for item in self.items if item.skipped)

    @property
    def duration(self) -> float:
        if self.finished_at is None:
            raise ValueError("transfer has not finished")
        return self.finished_at - self.submitted_at

    @property
    def effective_rate(self) -> float:
        duration = self.duration
        return self.bytes_transferred / duration if duration > 0 else float("inf")
