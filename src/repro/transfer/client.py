"""Globus-Transfer-like client: simulated and real-filesystem flavours.

Stage 5 of the workflow ("Shipment") moves labelled NetCDF files to
Frontier's Orion via Globus Transfer.  :class:`SimTransferClient` executes
batches over :class:`~repro.net.wan.WanLink` pipes between simulated
shared filesystems, with per-file integrity verification and bounded
concurrency (Globus's concurrent-file fan-out).  :class:`LocalTransferClient`
does the same thing for real on local directories: copy + SHA-256 verify.
"""

from __future__ import annotations

import hashlib
import os
import time
from pathlib import Path
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.hpc.filesystem import SharedFilesystem
from repro.net.retry import BackoffPolicy, RetryExhausted, retry_call
from repro.net.wan import WanLink
from repro.sim import Simulation, Store
from repro.transfer.task import TransferItem, TransferState, TransferTask
from repro.util.logging import EventLog

__all__ = ["SimTransferClient", "LocalTransferClient", "TransferError"]


class TransferError(RuntimeError):
    """A transfer task failed (integrity or endpoint error)."""


class SimTransferClient:
    """Executes transfer tasks between simulated filesystems over WAN links."""

    def __init__(
        self,
        sim: Simulation,
        endpoints: Dict[str, SharedFilesystem],
        links: Dict[Tuple[str, str], WanLink],
        concurrent_files: int = 4,
        verify_overhead: float = 0.01,
        log: Optional[EventLog] = None,
    ):
        if concurrent_files < 1:
            raise ValueError("need at least one concurrent file slot")
        self.sim = sim
        self.endpoints = dict(endpoints)
        self.links = dict(links)
        self.concurrent_files = concurrent_files
        self.verify_overhead = verify_overhead
        self.log = log or EventLog()
        self._next_id = 1

    def submit(
        self,
        src: str,
        dst: str,
        paths: Sequence[Tuple[str, str]],
        label: str = "",
        sync: bool = False,
    ) -> TransferTask:
        """Move ``paths`` ([(src_path, dst_path), ...]) from ``src`` to ``dst``.

        With ``sync`` (Globus's sync-level semantics) a file whose
        destination already exists with the same size is skipped without
        moving bytes.  Returns the task; its ``done`` event fires on
        completion (and fails with :class:`TransferError` if any file
        cannot be moved).
        """
        if src not in self.endpoints or dst not in self.endpoints:
            unknown = [e for e in (src, dst) if e not in self.endpoints]
            raise KeyError(f"unknown endpoint(s) {unknown!r}")
        if (src, dst) not in self.links:
            raise KeyError(f"no WAN link {src!r} -> {dst!r}")
        items = [TransferItem(src_path=a, dst_path=b) for a, b in paths]
        task = TransferTask(
            task_id=self._next_id,
            label=label or f"transfer-{self._next_id}",
            src_endpoint=src,
            dst_endpoint=dst,
            items=items,
            submitted_at=self.sim.now,
            done=self.sim.event(),
        )
        self._next_id += 1
        self.log.emit(self.sim.now, "transfer", "submit", task_id=task.task_id, files=len(items))
        self.sim.process(self._execute(task, sync=sync), name=f"transfer-{task.task_id}")
        return task

    def _execute(self, task: TransferTask, sync: bool = False) -> Generator:
        src_fs = self.endpoints[task.src_endpoint]
        dst_fs = self.endpoints[task.dst_endpoint]
        link = self.links[(task.src_endpoint, task.dst_endpoint)]
        queue = Store(self.sim)
        for item in task.items:
            queue.put(item)
        failures: List[str] = []

        def mover() -> Generator:
            while len(queue) > 0:
                item: TransferItem = yield queue.get()
                try:
                    entry = src_fs.entry(item.src_path)
                    if not entry.closed:
                        raise OSError(f"{item.src_path} still open")
                except (FileNotFoundError, OSError) as exc:
                    failures.append(str(exc))
                    task.faults += 1
                    continue
                item.nbytes = entry.nbytes
                if sync and dst_fs.exists(item.dst_path):
                    existing = dst_fs.entry(item.dst_path)
                    if existing.closed and existing.nbytes == entry.nbytes:
                        item.skipped = True
                        item.done = True
                        item.verified = True
                        continue
                yield src_fs.read(item.src_path)
                yield link.send(entry.nbytes)
                if dst_fs.exists(item.dst_path):
                    dst_fs.unlink(item.dst_path)
                yield dst_fs.write(item.dst_path, entry.nbytes, metadata=dict(entry.metadata))
                if self.verify_overhead > 0:
                    yield self.sim.timeout(self.verify_overhead)
                item.verified = True
                item.done = True
                task.bytes_transferred += entry.nbytes

        movers = [
            self.sim.process(mover(), name=f"transfer-{task.task_id}-m{index}")
            for index in range(min(self.concurrent_files, max(1, len(task.items))))
        ]
        yield self.sim.all_of(movers)
        task.finished_at = self.sim.now
        if failures:
            task.state = TransferState.FAILED
            task.error = "; ".join(failures)
            self.log.emit(self.sim.now, "transfer", "failed", task_id=task.task_id, error=task.error)
            task.done.fail(TransferError(task.error))
        else:
            task.state = TransferState.SUCCEEDED
            self.log.emit(
                self.sim.now, "transfer", "succeeded",
                task_id=task.task_id, nbytes=task.bytes_transferred,
            )
            task.done.succeed(task)


class LocalTransferClient:
    """Real file movement between local directories with SHA-256 verify.

    ``retries`` re-attempts an individual file that fails to move
    (missing source, integrity mismatch — both transient realities on a
    shared filesystem mid-workflow), sleeping a :class:`BackoffPolicy`
    delay between attempts; ``timeout`` bounds one :meth:`transfer`
    call's wall-clock time.  The defaults (no retries, no timeout)
    reproduce the original fail-fast behaviour exactly.
    """

    def __init__(
        self,
        retries: int = 0,
        backoff: Optional[BackoffPolicy] = None,
        timeout: Optional[float] = None,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self.retries = retries
        self.backoff = backoff or BackoffPolicy(base=0.02, max_delay=1.0, max_total=5.0)
        self.timeout = timeout
        self._sleeper = sleeper
        self.tasks_completed = 0
        self.bytes_transferred = 0
        self.files_skipped = 0
        self.retries_used = 0
        # Per-file accounting for the most recent transfer() call, with
        # the delivered checksum populated (end-to-end integrity).
        self.last_records: List[TransferItem] = []

    @staticmethod
    def _digest(path: Path) -> str:
        sha = hashlib.sha256()
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                sha.update(chunk)
        return sha.hexdigest()

    def _move_one(
        self, src_root: Path, dst_root: Path, name: str, sync: bool
    ) -> Tuple[str, str, bool]:
        """Move a single file; the per-file failure surface subclasses wrap.

        Returns ``(dst_path, delivered_sha256, skipped)``.  The copy is
        atomic at the destination (temp name + fsync + ``os.replace``):
        a consumer or a resumed run never observes a half-copied file
        under the final name, even if this process dies mid-move.
        """
        src = src_root / name
        if not src.is_file():
            raise TransferError(f"source missing: {src}")
        dst = dst_root / name
        src_digest = self._digest(src)
        if sync and dst.is_file() and src_digest == self._digest(dst):
            self.files_skipped += 1
            return str(dst), src_digest, True
        temp = dst_root / (name + ".part")
        with open(src, "rb") as reader, open(temp, "wb") as writer:
            for chunk in iter(lambda: reader.read(1 << 20), b""):
                writer.write(chunk)
            writer.flush()
            os.fsync(writer.fileno())
        os.replace(temp, dst)
        delivered = self._digest(dst)
        if src_digest != delivered:
            dst.unlink(missing_ok=True)
            raise TransferError(f"integrity check failed for {name}")
        self.bytes_transferred += src.stat().st_size
        return str(dst), delivered, False

    def move_one(
        self, src_dir: str, dst_dir: str, name: str, sync: bool = False
    ) -> Tuple[str, str, bool]:
        """Move a single file, no retry: ``(dst_path, sha256, skipped)``.

        The single-attempt primitive for callers that own their own
        retry policy (the shipment stage's work units).
        """
        dst_root = Path(dst_dir)
        dst_root.mkdir(parents=True, exist_ok=True)
        return self._move_one(Path(src_dir), dst_root, name, sync)

    def transfer(
        self,
        src_dir: str,
        dst_dir: str,
        names: Sequence[str],
        sync: bool = False,
    ) -> List[str]:
        """Copy ``names`` from src_dir to dst_dir; verify; return dst paths.

        With ``sync`` a destination whose SHA-256 already matches the
        source is not re-copied (it is still returned as delivered).
        Raises :class:`TransferError` once a file's retry budget is
        spent, or when the per-call ``timeout`` deadline passes.
        """
        src_root, dst_root = Path(src_dir), Path(dst_dir)
        dst_root.mkdir(parents=True, exist_ok=True)
        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        moved: List[str] = []
        self.last_records = []
        for name in names:

            def check_deadline(name: str = name) -> None:
                # Raised outside retry_call's catch: a spent batch budget
                # aborts the whole call rather than burning attempts.
                if deadline is not None and time.monotonic() > deadline:
                    raise TransferError(
                        f"transfer timed out after {self.timeout}s while moving {name}"
                    )

            try:
                (dst_path, checksum, skipped), failures = retry_call(
                    lambda name=name: self._move_one(src_root, dst_root, name, sync),
                    retries=self.retries,
                    backoff=self.backoff,
                    key=name,
                    sleeper=self._sleeper,
                    retry_on=(TransferError,),
                    before_attempt=check_deadline,
                )
            except RetryExhausted as exc:
                self.retries_used += exc.attempts - 1
                raise exc.last_exception
            self.retries_used += failures
            moved.append(dst_path)
            self.last_records.append(
                TransferItem(
                    src_path=str(src_root / name),
                    dst_path=dst_path,
                    nbytes=os.path.getsize(dst_path),
                    done=True,
                    verified=True,
                    skipped=skipped,
                    checksum=checksum,
                )
            )
        self.tasks_completed += 1
        return moved
