"""The workflow-facing checkpoint facade: journal + manifest + counters.

``WorkflowJournal`` is what stages actually hold.  It couples the
write-ahead :class:`~repro.journal.journal.RunJournal` with the
:class:`~repro.journal.manifest.IntegrityManifest` and exposes the one
question every idempotent stage asks per work item:

    decision = journal.resume(stage, key)

* ``FRESH``   — no usable history; do the work, then ``complete()``.
* ``RESUMED`` — a prior run completed this item and its artifact still
  verifies against the manifest; skip the work, reuse the journaled
  payload (tile counts, byte counts, output paths).
* ``REPLAY``  — the item has history that does not hold up (caught
  mid-flight, artifact missing or digest mismatch); redo it, bypassing
  any ``skip_existing`` shortcut so a torn file cannot be trusted.

Counters (``resumed_items``, ``replayed_items``, ``manifest_mismatches``)
accumulate across stages and roll into ``WorkflowReport`` / metrics.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

from repro.journal import manifest as manifest_mod
from repro.journal.journal import JournalState, RunJournal
from repro.journal.manifest import IntegrityManifest, sha256_file

__all__ = [
    "FRESH", "RESUMED", "REPLAY",
    "ResumeDecision", "WorkflowJournal",
    "JOURNAL_NAME", "MANIFEST_NAME",
]

FRESH = "fresh"
RESUMED = "resumed"
REPLAY = "replay"

JOURNAL_NAME = "run.journal.jsonl"
MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class ResumeDecision:
    """What a stage should do with one work item on this run."""

    outcome: str                                  # FRESH | RESUMED | REPLAY
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def skip(self) -> bool:
        return self.outcome == RESUMED

    @property
    def redo(self) -> bool:
        return self.outcome == REPLAY


class WorkflowJournal:
    """Journal + manifest pair for one run directory, with resume logic."""

    def __init__(self, directory: str, durable: bool = True):
        self.directory = directory
        self.journal = RunJournal(os.path.join(directory, JOURNAL_NAME),
                                  durable=durable)
        self.manifest = IntegrityManifest(os.path.join(directory, MANIFEST_NAME),
                                          durable=durable)
        self._state: Optional[JournalState] = None
        self._lock = threading.Lock()
        self._flagged: Set[str] = set()  # paths already counted as mismatched
        self.resumed_items = 0
        self.replayed_items = 0
        self.manifest_mismatches = 0
        self.torn_records = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self, resume: bool = False) -> None:
        """Open the journal for a fresh run or reconstruct state to resume.

        Resume order matters: replay first (tolerating a torn tail),
        compact the validated prefix so the tail cannot shadow new
        appends, then rebuild the manifest from the journal's completion
        records — the journal, not the manifest snapshot, is the source
        of truth after a crash.
        """
        os.makedirs(self.directory, exist_ok=True)
        if not resume:
            self.journal.reset()
            self.manifest.reset()
            self._state = JournalState([])
            return
        records = self.journal.replay()
        self.torn_records = self.journal.torn_records
        if self.torn_records:
            self.journal.compact(records)
        self._state = JournalState(records)
        self.manifest.load()
        for (_, _), payload in self._state.completions.items():
            artifact = payload.get("artifact")
            sha = payload.get("sha256")
            if artifact and sha:
                self.manifest.put(artifact, sha, payload.get("nbytes"))

    def close(self) -> None:
        self.journal.close()

    def __enter__(self) -> "WorkflowJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def state(self) -> JournalState:
        if self._state is None:
            self._state = JournalState([])
        return self._state

    # -- per-item resume decisions -------------------------------------------

    def resume(self, stage: str, key: str) -> ResumeDecision:
        """Decide FRESH / RESUMED / REPLAY for one (stage, key).

        Call exactly once per item per run: counters are bumped here.
        """
        completion = self.state.completion(stage, key)
        if completion is not None:
            artifact = completion.get("artifact")
            if artifact:
                status = self.manifest.check(artifact)
                if status != manifest_mod.OK:
                    with self._lock:
                        self.replayed_items += 1
                        if status == manifest_mod.MISMATCH:
                            self.manifest_mismatches += 1
                    return ResumeDecision(REPLAY, dict(completion))
            with self._lock:
                self.resumed_items += 1
            return ResumeDecision(RESUMED, dict(completion))
        if self.state.has_intent(stage, key):
            # Intent without completion: the crash caught this item
            # mid-flight; whatever is on disk cannot be trusted.
            with self._lock:
                self.replayed_items += 1
            return ResumeDecision(REPLAY)
        return ResumeDecision(FRESH)

    # -- journaling helpers ---------------------------------------------------

    def intent(self, stage: str, key: str, **payload: Any) -> None:
        self.journal.intent(stage, key, **payload)

    def complete(self, stage: str, key: str, artifact: Optional[str] = None,
                 sha256: Optional[str] = None, **payload: Any) -> None:
        """Record a durable completion; digests ``artifact`` if present.

        The artifact must already be published under its final name
        (write ordering: artifact rename precedes the journal append).
        """
        if artifact is not None:
            digest = self.manifest.record(
                artifact, sha256=sha256, nbytes=payload.get("nbytes")
            )
            payload = dict(payload)
            payload["artifact"] = os.path.abspath(artifact)
            payload["sha256"] = digest
            if payload.get("nbytes") is None:
                # The manifest observed size and digest in one read pass;
                # reuse it rather than re-stat'ing a file a concurrent
                # writer may have touched since.
                entry = self.manifest.entry(artifact) or {}
                payload["nbytes"] = entry.get("nbytes", os.path.getsize(artifact))
        self.journal.complete(stage, key, **payload)

    def checkpoint(self) -> None:
        """Publish a manifest snapshot (stage boundary)."""
        self.manifest.save()

    # -- integrity queries ----------------------------------------------------

    def artifact_ok(self, path: str) -> bool:
        """Integrity gate for consumers (the crawler): reject mismatches.

        Unknown artifacts pass — the gate only blocks files whose
        journaled digest says the bytes on disk are wrong.  A path is
        counted as a mismatch once, however often the polling crawler
        re-asks about it.
        """
        status = self.manifest.check(path)
        if status == manifest_mod.MISMATCH:
            with self._lock:
                if path not in self._flagged:
                    self._flagged.add(path)
                    self.manifest_mismatches += 1
            return False
        with self._lock:
            self._flagged.discard(path)
        return True

    def expected_sha(self, path: str) -> Optional[str]:
        return self.manifest.expected_sha(path)

    # -- reporting ------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "resumed_items": self.resumed_items,
                "replayed_items": self.replayed_items,
                "manifest_mismatches": self.manifest_mismatches,
            }

    def summary(self) -> Dict[str, Any]:
        summary: Dict[str, Any] = dict(self.counters())
        summary["directory"] = self.directory
        summary["torn_records"] = self.torn_records
        summary["manifest_entries"] = len(self.manifest)
        return summary


def verify_file(path: str, expected_sha: str) -> bool:
    """Convenience end-to-end check: does ``path`` hash to ``expected_sha``?"""
    try:
        return sha256_file(path) == expected_sha
    except OSError:
        return False
