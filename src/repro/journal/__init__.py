"""Crash-consistent run journaling: WAL + integrity manifests + resume."""

from repro.journal.journal import (
    COMPLETE,
    INTENT,
    JournalRecord,
    JournalState,
    RunJournal,
)
from repro.journal.manifest import IntegrityManifest, sha256_file
from repro.journal.checkpoint import (
    FRESH,
    JOURNAL_NAME,
    MANIFEST_NAME,
    REPLAY,
    RESUMED,
    ResumeDecision,
    WorkflowJournal,
    verify_file,
)

__all__ = [
    "INTENT", "COMPLETE", "JournalRecord", "RunJournal", "JournalState",
    "IntegrityManifest", "sha256_file",
    "FRESH", "RESUMED", "REPLAY", "ResumeDecision", "WorkflowJournal",
    "JOURNAL_NAME", "MANIFEST_NAME", "verify_file",
]
