"""The write-ahead run journal: append-only, checksummed, crash-safe.

A campaign that runs for days across facilities dies for operational
reasons — Slurm preemption, node crash, OOM — not just flaky fetches.
The journal makes orchestrator death survivable: before a stage touches
a work item it appends an ``intent`` record, and after the item's
artifact is durably published it appends a ``complete`` record carrying
the artifact's SHA-256.  A resumed run replays the journal and skips
every item whose completion verifies, redoes the rest.

Crash-consistency properties:

* **Appends are durable** — each record is one JSON line, flushed and
  fsynced before the append returns, so a ``complete`` record implies
  the artifact rename that preceded it is also on disk (write ordering:
  artifact fsync + rename happen before the journal append).
* **Torn tails are harmless** — every record carries a checksum over its
  canonical serialization; replay stops at the first record that fails
  to parse or verify, treating the valid prefix as the journal.  On
  resume the journal is compacted (temp file + fsync + ``os.replace``)
  so the torn tail never shadows new appends.
* **Determinism** — records carry no wall-clock fields that influence
  replay; the same journal always reconstructs the same state.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.util.atomic import atomic_write_bytes

__all__ = ["INTENT", "COMPLETE", "JournalRecord", "RunJournal", "JournalState"]

INTENT = "intent"
COMPLETE = "complete"


def _canonical(mapping: Dict[str, Any]) -> str:
    return json.dumps(mapping, sort_keys=True, separators=(",", ":"))


def _record_checksum(mapping: Dict[str, Any]) -> str:
    return hashlib.sha256(_canonical(mapping).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class JournalRecord:
    """One journaled event: a stage-item intent or completion."""

    seq: int
    stage: str
    event: str                  # INTENT | COMPLETE
    key: str                    # the work item (filename, granule key, ...)
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_mapping(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "stage": self.stage,
            "event": self.event,
            "key": self.key,
            "payload": dict(self.payload),
        }

    @staticmethod
    def from_mapping(mapping: Dict[str, Any]) -> "JournalRecord":
        return JournalRecord(
            seq=int(mapping["seq"]),
            stage=str(mapping["stage"]),
            event=str(mapping["event"]),
            key=str(mapping["key"]),
            payload=dict(mapping.get("payload") or {}),
        )


class RunJournal:
    """Append-only JSONL journal with per-record checksums.

    Thread-safe: stages append from worker pools concurrently; sequence
    numbers and the file handle are guarded by one lock.
    """

    def __init__(self, path: str, durable: bool = True):
        self.path = path
        self.durable = durable
        self._lock = threading.Lock()
        self._seq = 0
        self._handle = None
        self.torn_records = 0   # invalid trailing lines dropped on replay

    # -- reading -------------------------------------------------------------

    def replay(self) -> List[JournalRecord]:
        """Read back every intact record; stops at the first torn one."""
        self.torn_records = 0
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return []
        records: List[JournalRecord] = []
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                mapping = json.loads(stripped)
                sha = mapping.pop("sha")
                record = JournalRecord.from_mapping(mapping)
            except (ValueError, KeyError, TypeError):
                self.torn_records = len(lines) - index
                break
            if _record_checksum(record.to_mapping()) != sha:
                self.torn_records = len(lines) - index
                break
            records.append(record)
        if records:
            with self._lock:
                self._seq = max(self._seq, records[-1].seq)
        return records

    def compact(self, records: List[JournalRecord]) -> None:
        """Atomically rewrite the journal to exactly ``records``.

        Used on resume to drop a torn tail: the validated prefix is
        written to a temp file, fsynced, and ``os.replace``d over the
        journal, so a crash mid-compaction loses nothing.
        """
        with self._lock:
            self._close_handle()
            lines = []
            for record in records:
                mapping = record.to_mapping()
                mapping["sha"] = _record_checksum(record.to_mapping())
                lines.append(_canonical(mapping))
            payload = ("\n".join(lines) + "\n") if lines else b"".decode()
            atomic_write_bytes(self.path, payload.encode("utf-8"),
                               durable=self.durable)
            self._seq = records[-1].seq if records else 0

    # -- writing -------------------------------------------------------------

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _ensure_handle(self):
        if self._handle is None:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, stage: str, event: str, key: str,
               **payload: Any) -> JournalRecord:
        """Durably append one record; returns it."""
        with self._lock:
            self._seq += 1
            record = JournalRecord(
                seq=self._seq, stage=stage, event=event, key=key,
                payload=dict(payload),
            )
            mapping = record.to_mapping()
            mapping["sha"] = _record_checksum(record.to_mapping())
            handle = self._ensure_handle()
            handle.write(_canonical(mapping) + "\n")
            handle.flush()
            if self.durable:
                os.fsync(handle.fileno())
            return record

    def intent(self, stage: str, key: str, **payload: Any) -> JournalRecord:
        return self.append(stage, INTENT, key, **payload)

    def complete(self, stage: str, key: str, **payload: Any) -> JournalRecord:
        return self.append(stage, COMPLETE, key, **payload)

    def reset(self) -> None:
        """Start a fresh journal (truncates any previous run's records)."""
        with self._lock:
            self._close_handle()
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            with open(self.path, "w", encoding="utf-8"):
                pass
            self._seq = 0
            self.torn_records = 0

    def close(self) -> None:
        with self._lock:
            self._close_handle()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class JournalState:
    """A replayed journal's view: what finished, what was caught mid-flight."""

    def __init__(self, records: List[JournalRecord]):
        self.completions: Dict[Tuple[str, str], Dict[str, Any]] = {}
        self.intents: Set[Tuple[str, str]] = set()
        for record in records:
            site = (record.stage, record.key)
            if record.event == INTENT:
                self.intents.add(site)
            elif record.event == COMPLETE:
                # Re-done items overwrite: the last completion wins.
                self.completions[site] = dict(record.payload)

    def completion(self, stage: str, key: str) -> Optional[Dict[str, Any]]:
        return self.completions.get((stage, key))

    def has_intent(self, stage: str, key: str) -> bool:
        return (stage, key) in self.intents

    def in_flight(self, stage: str) -> List[str]:
        """Keys with an intent but no completion: work a crash interrupted."""
        return sorted(
            key for (s, key) in self.intents
            if s == stage and (s, key) not in self.completions
        )

    def completed_keys(self, stage: str) -> List[str]:
        return sorted(key for (s, key) in self.completions if s == stage)
