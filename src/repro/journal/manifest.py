"""Integrity manifests: one SHA-256 per artifact, checked at boundaries.

Production EO pipelines treat every stage output as a checksummed
artifact so later stages (and resumed runs) can distinguish "present and
intact" from "present but torn/rotted".  The manifest maps artifact
paths to their digest and size; it is consulted

* by resume logic, to decide whether a journaled completion still holds;
* by the monitor's integrity gate, before a tile file is triggered;
* after shipment, to verify the delivered bytes end to end.

Snapshots are published atomically (temp + fsync + ``os.replace``); the
journal's completion records carry the same digests, so a snapshot lost
to a crash is rebuilt from the journal on resume.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Optional

from repro.util.atomic import atomic_write_bytes

# Deprecated re-export: the digest loop's canonical home is now
# repro.util.digest (shared with the content-addressed store); this name
# stays importable from here so existing callers keep working.
from repro.util.digest import digest_file, sha256_file  # noqa: F401

__all__ = ["sha256_file", "IntegrityManifest"]

# Verification outcomes for IntegrityManifest.check().
OK = "ok"
MISSING_ENTRY = "missing-entry"
MISSING_FILE = "missing-file"
MISMATCH = "mismatch"


class IntegrityManifest:
    """Artifact path -> {sha256, nbytes}, with atomic snapshots."""

    def __init__(self, path: str, durable: bool = True):
        self.path = path
        self.durable = durable
        self._lock = threading.Lock()
        self._entries: Dict[str, Dict[str, Any]] = {}

    @staticmethod
    def _key(path: str) -> str:
        return os.path.abspath(path)

    # -- persistence ---------------------------------------------------------

    def load(self) -> None:
        """Load the snapshot; missing or corrupt files yield an empty map.

        Tolerance matters: the journal is the source of truth, so a
        snapshot torn by a crash must not block recovery.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                parsed = json.load(handle)
        except (FileNotFoundError, ValueError):
            return
        artifacts = parsed.get("artifacts") if isinstance(parsed, dict) else None
        if not isinstance(artifacts, dict):
            return
        with self._lock:
            for key, entry in artifacts.items():
                if isinstance(entry, dict) and "sha256" in entry:
                    self._entries[str(key)] = {
                        "sha256": str(entry["sha256"]),
                        "nbytes": int(entry.get("nbytes", -1)),
                    }

    def save(self) -> None:
        """Atomically publish the current snapshot."""
        with self._lock:
            payload = json.dumps(
                {"version": 1, "artifacts": self._entries},
                sort_keys=True, indent=0, separators=(",", ":"),
            ).encode("utf-8")
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        atomic_write_bytes(self.path, payload, durable=self.durable)

    def reset(self) -> None:
        with self._lock:
            self._entries = {}
        self.save()

    # -- recording -----------------------------------------------------------

    def record(
        self, path: str, sha256: Optional[str] = None, nbytes: Optional[int] = None
    ) -> str:
        """Digest ``path`` (or trust ``sha256``) and store its entry.

        When digesting, the size comes from the same read pass as the
        hash (:func:`repro.util.digest.digest_file`), never a separate
        ``stat`` — a concurrent writer between digest and stat would
        otherwise publish an entry whose size and digest describe two
        different file states.  Callers supplying a precomputed
        ``sha256`` should supply the matching ``nbytes`` too; absent
        that, the stat is taken best-effort and marked trusted-size.
        """
        if sha256 is None:
            digest, size = digest_file(path)
        else:
            digest = sha256
            size = int(nbytes) if nbytes is not None else os.path.getsize(path)
        with self._lock:
            self._entries[self._key(path)] = {"sha256": digest, "nbytes": size}
        return digest

    def put(self, path: str, sha256: str, nbytes: Optional[int] = None) -> None:
        """Store an entry from an external source (journal replay)."""
        with self._lock:
            self._entries[self._key(path)] = {
                "sha256": sha256,
                "nbytes": int(nbytes) if nbytes is not None else -1,
            }

    # -- verification --------------------------------------------------------

    def entry(self, path: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            entry = self._entries.get(self._key(path))
            return dict(entry) if entry else None

    def expected_sha(self, path: str) -> Optional[str]:
        entry = self.entry(path)
        return entry["sha256"] if entry else None

    def check(self, path: str) -> str:
        """Classify an artifact: OK, MISSING_ENTRY, MISSING_FILE, MISMATCH.

        The size short-circuit means a truncated file fails without a
        full digest; matching sizes still digest the content.
        """
        entry = self.entry(path)
        if entry is None:
            return MISSING_ENTRY
        try:
            nbytes = os.path.getsize(path)
        except OSError:
            return MISSING_FILE
        if entry["nbytes"] >= 0 and nbytes != entry["nbytes"]:
            return MISMATCH
        if sha256_file(path) != entry["sha256"]:
            return MISMATCH
        return OK

    def verify(self, path: str) -> bool:
        return self.check(path) == OK

    def paths(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
