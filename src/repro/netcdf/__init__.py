"""From-scratch NetCDF-3 classic (CDF-1/CDF-2) reader and writer.

The EO-ML workflow stores tiles, labels, and physical properties in NetCDF
(Sections II-B, III).  This package implements the classic file format in
pure NumPy: :class:`Dataset` is the in-memory model; :func:`write` /
:func:`read` serialize to and from the on-disk format.
"""

from repro.netcdf.dataset import Dataset, Dimension, Variable
from repro.netcdf.reader import from_bytes, read
from repro.netcdf.types import NcFormatError, NcType
from repro.netcdf.writer import to_bytes, write

__all__ = [
    "Dataset",
    "Dimension",
    "Variable",
    "NcType",
    "NcFormatError",
    "read",
    "write",
    "to_bytes",
    "from_bytes",
]
