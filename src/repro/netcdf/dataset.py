"""In-memory NetCDF dataset model: dimensions, variables, attributes.

The API mirrors the familiar netCDF4-python surface (``create_dimension``,
``create_variable``, attribute dicts) so workflow code reads naturally, but
is backed by plain NumPy arrays and the from-scratch classic-format codec
in :mod:`repro.netcdf.writer` / :mod:`repro.netcdf.reader`.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.netcdf.types import NcFormatError, NcType, TYPE_INFO, dtype_to_nctype

__all__ = ["Dimension", "Variable", "Dataset"]

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.@+\-]*$")

AttrValue = Union[str, bytes, int, float, np.ndarray, Sequence[int], Sequence[float]]


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise NcFormatError(f"invalid NetCDF name: {name!r}")
    return name


def normalize_attr(value: AttrValue) -> Union[str, np.ndarray]:
    """Canonicalize an attribute value to str or a typed NumPy array."""
    if isinstance(value, str):
        return value
    if isinstance(value, bytes):
        return value.decode("latin-1")
    if isinstance(value, bool):
        raise NcFormatError("boolean attributes are not representable in classic NetCDF")
    if isinstance(value, (int, np.integer)):
        if not (-(2**31) <= int(value) < 2**31):
            raise NcFormatError(f"integer attribute out of 32-bit range: {value}")
        return np.array([value], dtype=">i4")
    if isinstance(value, (float, np.floating)):
        return np.array([value], dtype=">f8")
    array = np.asarray(value)
    if array.ndim == 0:
        array = array.reshape(1)
    if array.ndim != 1:
        raise NcFormatError("attribute arrays must be one-dimensional")
    if array.size == 0:
        raise NcFormatError("empty attribute arrays are not supported")
    nc_type = dtype_to_nctype(array.dtype)
    return array.astype(TYPE_INFO[nc_type].dtype)


class Dimension:
    """A named dimension; ``size=None`` declares the record dimension."""

    def __init__(self, name: str, size: Optional[int]):
        self.name = _check_name(name)
        if size is not None and (not isinstance(size, (int, np.integer)) or size < 0):
            raise NcFormatError(f"dimension size must be a non-negative int or None: {size!r}")
        self.size = None if size is None else int(size)

    @property
    def is_record(self) -> bool:
        return self.size is None

    def __repr__(self) -> str:
        return f"Dimension({self.name!r}, {'UNLIMITED' if self.is_record else self.size})"


class Variable:
    """A typed array over named dimensions, with attributes."""

    def __init__(
        self,
        name: str,
        nc_type: NcType,
        dimensions: Tuple[Dimension, ...],
        data: np.ndarray,
        attributes: Optional[Dict[str, AttrValue]] = None,
    ):
        self.name = _check_name(name)
        self.nc_type = NcType(nc_type)
        self.dimensions = tuple(dimensions)
        for dim in self.dimensions[1:]:
            if dim.is_record:
                raise NcFormatError(
                    f"variable {name!r}: only the first dimension may be the record dimension"
                )
        self.data = data
        self.attributes: Dict[str, Union[str, np.ndarray]] = {}
        for key, value in (attributes or {}).items():
            self.set_attr(key, value)

    @property
    def is_record(self) -> bool:
        return bool(self.dimensions) and self.dimensions[0].is_record

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def dim_names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self.dimensions)

    def set_attr(self, name: str, value: AttrValue) -> None:
        self.attributes[_check_name(name)] = normalize_attr(value)

    def get_attr(self, name: str, default: Any = None) -> Any:
        return self.attributes.get(name, default)

    def __getitem__(self, key) -> np.ndarray:
        return self.data[key]

    def __repr__(self) -> str:
        dims = ", ".join(self.dim_names)
        return f"Variable({self.name!r}, {self.nc_type.name}, [{dims}], shape={self.shape})"


class Dataset:
    """An in-memory NetCDF classic dataset.

    >>> ds = Dataset()
    >>> ds.create_dimension("tile", None)   # record dimension
    >>> ds.create_dimension("pixel", 128)
    >>> _ = ds.create_variable("radiance", "f4", ("tile", "pixel"),
    ...                        data=np.zeros((3, 128), dtype=np.float32))
    """

    def __init__(self) -> None:
        self.dimensions: Dict[str, Dimension] = {}
        self.variables: Dict[str, Variable] = {}
        self.attributes: Dict[str, Union[str, np.ndarray]] = {}

    # -- construction -----------------------------------------------------

    def create_dimension(self, name: str, size: Optional[int]) -> Dimension:
        if name in self.dimensions:
            raise NcFormatError(f"duplicate dimension {name!r}")
        dim = Dimension(name, size)
        if dim.is_record and any(d.is_record for d in self.dimensions.values()):
            raise NcFormatError("classic NetCDF allows a single record dimension")
        self.dimensions[dim.name] = dim
        return dim

    def create_variable(
        self,
        name: str,
        dtype: Union[str, np.dtype, NcType],
        dimensions: Sequence[str],
        data: np.ndarray,
        attributes: Optional[Dict[str, AttrValue]] = None,
    ) -> Variable:
        if name in self.variables:
            raise NcFormatError(f"duplicate variable {name!r}")
        nc_type = dtype if isinstance(dtype, NcType) else dtype_to_nctype(np.dtype(dtype))
        dims = []
        for dim_name in dimensions:
            if dim_name not in self.dimensions:
                raise NcFormatError(f"variable {name!r} references unknown dimension {dim_name!r}")
            dims.append(self.dimensions[dim_name])
        array = np.asarray(data).astype(TYPE_INFO[nc_type].dtype, copy=False)
        expected = tuple(d.size for d in dims)
        if array.ndim != len(dims):
            raise NcFormatError(
                f"variable {name!r}: data has {array.ndim} axes for {len(dims)} dimensions"
            )
        for axis, (dim, size) in enumerate(zip(dims, array.shape)):
            if dim.is_record:
                continue
            if size != dim.size:
                raise NcFormatError(
                    f"variable {name!r} axis {axis}: size {size} != dimension "
                    f"{dim.name!r} ({dim.size})"
                )
        del expected
        variable = Variable(name, nc_type, tuple(dims), array, attributes)
        self._check_record_count(variable)
        self.variables[name] = variable
        return variable

    def _check_record_count(self, new: Variable) -> None:
        if not new.is_record:
            return
        for other in self.variables.values():
            if other.is_record and other.shape[0] != new.shape[0]:
                raise NcFormatError(
                    f"record variable {new.name!r} has {new.shape[0]} records but "
                    f"{other.name!r} has {other.shape[0]}"
                )

    def set_attr(self, name: str, value: AttrValue) -> None:
        self.attributes[_check_name(name)] = normalize_attr(value)

    def get_attr(self, name: str, default: Any = None) -> Any:
        return self.attributes.get(name, default)

    # -- introspection ------------------------------------------------------

    @property
    def record_dimension(self) -> Optional[Dimension]:
        for dim in self.dimensions.values():
            if dim.is_record:
                return dim
        return None

    @property
    def num_records(self) -> int:
        records = [v.shape[0] for v in self.variables.values() if v.is_record]
        return records[0] if records else 0

    def __contains__(self, name: str) -> bool:
        return name in self.variables

    def __getitem__(self, name: str) -> Variable:
        return self.variables[name]

    def describe(self) -> str:
        """A CDL-flavoured text rendering (like ``ncdump -h``)."""
        lines: List[str] = ["netcdf {"]
        lines.append("dimensions:")
        for dim in self.dimensions.values():
            size = "UNLIMITED" if dim.is_record else str(dim.size)
            lines.append(f"    {dim.name} = {size} ;")
        lines.append("variables:")
        for var in self.variables.values():
            dims = ", ".join(var.dim_names)
            lines.append(f"    {var.nc_type.name.lower()} {var.name}({dims}) ;")
            for attr_name in var.attributes:
                lines.append(f"        {var.name}:{attr_name} = ... ;")
        if self.attributes:
            lines.append("// global attributes:")
            for attr_name in self.attributes:
                lines.append(f"    :{attr_name} = ... ;")
        lines.append("}")
        return "\n".join(lines)
