"""NetCDF classic (CDF-1 / CDF-2) serializer.

Implements the on-disk layout from the NetCDF classic format specification:
a header (magic, numrecs, dimension list, global attributes, variable
list), then fixed-size variable data in definition order, then record
slabs.  Byte order is big-endian throughout; names, attribute values, and
variable slots are zero-padded to four-byte boundaries.

The writer picks CDF-1 (32-bit offsets) and transparently upgrades to
CDF-2 (64-bit offsets) when any data offset would exceed 2**31 - 1.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Dict, List, Tuple, Union

import numpy as np

from repro.netcdf.dataset import Dataset, Variable
from repro.netcdf.types import NcFormatError, NcType, TYPE_INFO

__all__ = ["write", "to_bytes"]

NC_DIMENSION = 0x0A
NC_VARIABLE = 0x0B
NC_ATTRIBUTE = 0x0C
ABSENT = b"\x00\x00\x00\x00\x00\x00\x00\x00"

_MAX_CDF1_OFFSET = 2**31 - 1


def _pad4(n: int) -> int:
    return (n + 3) & ~3


def _pack_int(value: int) -> bytes:
    return struct.pack(">i", value)


def _pack_name(name: str) -> bytes:
    encoded = name.encode("utf-8")
    return _pack_int(len(encoded)) + encoded + b"\x00" * (_pad4(len(encoded)) - len(encoded))


def _pack_attr_value(value: Union[str, np.ndarray]) -> bytes:
    if isinstance(value, str):
        payload = value.encode("utf-8")
        header = _pack_int(int(NcType.CHAR)) + _pack_int(len(payload))
        return header + payload + b"\x00" * (_pad4(len(payload)) - len(payload))
    array = np.asarray(value)
    from repro.netcdf.types import dtype_to_nctype

    nc_type = dtype_to_nctype(array.dtype)
    payload = array.astype(TYPE_INFO[nc_type].dtype, copy=False).tobytes()
    header = _pack_int(int(nc_type)) + _pack_int(array.size)
    return header + payload + b"\x00" * (_pad4(len(payload)) - len(payload))


def _pack_attr_list(attrs: Dict[str, Union[str, np.ndarray]]) -> bytes:
    if not attrs:
        return ABSENT
    chunks = [_pack_int(NC_ATTRIBUTE), _pack_int(len(attrs))]
    for name, value in attrs.items():
        chunks.append(_pack_name(name))
        chunks.append(_pack_attr_value(value))
    return b"".join(chunks)


def _per_record_size(var: Variable) -> int:
    """Unpadded bytes one record of ``var`` occupies (or full size if fixed)."""
    size = TYPE_INFO[var.nc_type].size
    dims = var.dimensions[1:] if var.is_record else var.dimensions
    for dim in dims:
        size *= dim.size
    return size


def _vsizes(dataset: Dataset) -> Dict[str, int]:
    """The vsize header field per variable, honouring the one-record-var rule."""
    record_vars = [v for v in dataset.variables.values() if v.is_record]
    sole_record = len(record_vars) == 1
    out: Dict[str, int] = {}
    for var in dataset.variables.values():
        raw = _per_record_size(var)
        if var.is_record and sole_record:
            out[var.name] = raw  # special case: no inter-record padding
        else:
            out[var.name] = _pad4(raw)
    return out


def _plan_offsets(dataset: Dataset, offset_width: int) -> Tuple[Dict[str, int], int, int]:
    """Compute (begin offsets, header size, record slab size)."""
    vsizes = _vsizes(dataset)
    header = len(_serialize_header(dataset, {v: 0 for v in dataset.variables}, vsizes, offset_width))
    begins: Dict[str, int] = {}
    cursor = header
    for var in dataset.variables.values():
        if not var.is_record:
            begins[var.name] = cursor
            cursor += vsizes[var.name]
    record_base = cursor
    rec_cursor = record_base
    recsize = 0
    for var in dataset.variables.values():
        if var.is_record:
            begins[var.name] = rec_cursor
            rec_cursor += vsizes[var.name]
            recsize += vsizes[var.name]
    return begins, header, recsize


def _serialize_header(
    dataset: Dataset,
    begins: Dict[str, int],
    vsizes: Dict[str, int],
    offset_width: int,
) -> bytes:
    chunks: List[bytes] = []
    chunks.append(b"CDF\x01" if offset_width == 4 else b"CDF\x02")
    chunks.append(_pack_int(dataset.num_records))

    dims = list(dataset.dimensions.values())
    if dims:
        chunks.append(_pack_int(NC_DIMENSION))
        chunks.append(_pack_int(len(dims)))
        for dim in dims:
            chunks.append(_pack_name(dim.name))
            chunks.append(_pack_int(0 if dim.is_record else dim.size))
    else:
        chunks.append(ABSENT)

    chunks.append(_pack_attr_list(dataset.attributes))

    variables = list(dataset.variables.values())
    if variables:
        dim_ids = {name: index for index, name in enumerate(dataset.dimensions)}
        chunks.append(_pack_int(NC_VARIABLE))
        chunks.append(_pack_int(len(variables)))
        for var in variables:
            chunks.append(_pack_name(var.name))
            chunks.append(_pack_int(len(var.dimensions)))
            for dim in var.dimensions:
                chunks.append(_pack_int(dim_ids[dim.name]))
            chunks.append(_pack_attr_list(var.attributes))
            chunks.append(_pack_int(int(var.nc_type)))
            chunks.append(_pack_int(min(vsizes[var.name], _MAX_CDF1_OFFSET)))
            if offset_width == 4:
                chunks.append(struct.pack(">i", begins[var.name]))
            else:
                chunks.append(struct.pack(">q", begins[var.name]))
    else:
        chunks.append(ABSENT)
    return b"".join(chunks)


def to_bytes(dataset: Dataset) -> bytes:
    """Serialize a dataset to NetCDF classic bytes."""
    for var in dataset.variables.values():
        if var.is_record and var.shape[0] != dataset.num_records:
            raise NcFormatError(f"record variable {var.name!r} has inconsistent record count")

    offset_width = 4
    begins, header_size, recsize = _plan_offsets(dataset, offset_width)
    numrecs = dataset.num_records
    end = max(
        [header_size]
        + [
            begins[v.name] + (_vsizes(dataset)[v.name] if not v.is_record else 0)
            for v in dataset.variables.values()
        ]
        + ([begins[v.name] + numrecs * recsize for v in dataset.variables.values() if v.is_record] or [0])
    )
    if end > _MAX_CDF1_OFFSET:
        offset_width = 8
        begins, header_size, recsize = _plan_offsets(dataset, offset_width)

    vsizes = _vsizes(dataset)
    out = bytearray(_serialize_header(dataset, begins, vsizes, offset_width))

    # Fixed-size variable data, in definition order, zero-padded to vsize.
    for var in dataset.variables.values():
        if var.is_record:
            continue
        if len(out) != begins[var.name]:
            raise NcFormatError(
                f"internal offset mismatch for {var.name!r}: "
                f"at {len(out)}, planned {begins[var.name]}"
            )
        payload = np.ascontiguousarray(var.data, dtype=var.data.dtype).tobytes()
        out += payload
        out += b"\x00" * (vsizes[var.name] - len(payload))

    # Record slabs: per record, each record variable's slice, padded.  The
    # explicit dtype matters: indexing a 1-D big-endian array yields a
    # *native-endian* scalar, which would silently byteswap on disk.
    record_vars = [v for v in dataset.variables.values() if v.is_record]
    for index in range(dataset.num_records):
        for var in record_vars:
            payload = np.ascontiguousarray(var.data[index], dtype=var.data.dtype).tobytes()
            out += payload
            out += b"\x00" * (vsizes[var.name] - len(payload))
    return bytes(out)


def write(dataset: Dataset, target: Union[str, BinaryIO]) -> int:
    """Write a dataset to a path or binary file object; returns byte count."""
    payload = to_bytes(dataset)
    if isinstance(target, str):
        with open(target, "wb") as handle:
            handle.write(payload)
    else:
        target.write(payload)
    return len(payload)
