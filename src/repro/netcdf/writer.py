"""NetCDF classic (CDF-1 / CDF-2) serializer.

Implements the on-disk layout from the NetCDF classic format specification:
a header (magic, numrecs, dimension list, global attributes, variable
list), then fixed-size variable data in definition order, then record
slabs.  Byte order is big-endian throughout; names, attribute values, and
variable slots are zero-padded to four-byte boundaries.

The writer picks CDF-1 (32-bit offsets) and transparently upgrades to
CDF-2 (64-bit offsets) when any data offset would exceed 2**31 - 1.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.netcdf.dataset import Dataset, Variable
from repro.netcdf.types import NcFormatError, NcType, TYPE_INFO

__all__ = ["write", "to_bytes", "CanonicalLayout", "canonical_layout", "splice_bytes"]

NC_DIMENSION = 0x0A
NC_VARIABLE = 0x0B
NC_ATTRIBUTE = 0x0C
ABSENT = b"\x00\x00\x00\x00\x00\x00\x00\x00"

_MAX_CDF1_OFFSET = 2**31 - 1


def _pad4(n: int) -> int:
    return (n + 3) & ~3


def _pack_int(value: int) -> bytes:
    return struct.pack(">i", value)


def _pack_name(name: str) -> bytes:
    encoded = name.encode("utf-8")
    return _pack_int(len(encoded)) + encoded + b"\x00" * (_pad4(len(encoded)) - len(encoded))


def _pack_attr_value(value: Union[str, np.ndarray]) -> bytes:
    if isinstance(value, str):
        payload = value.encode("utf-8")
        header = _pack_int(int(NcType.CHAR)) + _pack_int(len(payload))
        return header + payload + b"\x00" * (_pad4(len(payload)) - len(payload))
    array = np.asarray(value)
    from repro.netcdf.types import dtype_to_nctype

    nc_type = dtype_to_nctype(array.dtype)
    payload = array.astype(TYPE_INFO[nc_type].dtype, copy=False).tobytes()
    header = _pack_int(int(nc_type)) + _pack_int(array.size)
    return header + payload + b"\x00" * (_pad4(len(payload)) - len(payload))


def _pack_attr_list(attrs: Dict[str, Union[str, np.ndarray]]) -> bytes:
    if not attrs:
        return ABSENT
    chunks = [_pack_int(NC_ATTRIBUTE), _pack_int(len(attrs))]
    for name, value in attrs.items():
        chunks.append(_pack_name(name))
        chunks.append(_pack_attr_value(value))
    return b"".join(chunks)


def _per_record_size(var: Variable) -> int:
    """Unpadded bytes one record of ``var`` occupies (or full size if fixed)."""
    size = TYPE_INFO[var.nc_type].size
    dims = var.dimensions[1:] if var.is_record else var.dimensions
    for dim in dims:
        size *= dim.size
    return size


def _vsizes(dataset: Dataset) -> Dict[str, int]:
    """The vsize header field per variable, honouring the one-record-var rule."""
    record_vars = [v for v in dataset.variables.values() if v.is_record]
    sole_record = len(record_vars) == 1
    out: Dict[str, int] = {}
    for var in dataset.variables.values():
        raw = _per_record_size(var)
        if var.is_record and sole_record:
            out[var.name] = raw  # special case: no inter-record padding
        else:
            out[var.name] = _pad4(raw)
    return out


def _plan_offsets(dataset: Dataset, offset_width: int) -> Tuple[Dict[str, int], int, int]:
    """Compute (begin offsets, header size, record slab size)."""
    vsizes = _vsizes(dataset)
    header = len(_serialize_header(dataset, {v: 0 for v in dataset.variables}, vsizes, offset_width))
    begins: Dict[str, int] = {}
    cursor = header
    for var in dataset.variables.values():
        if not var.is_record:
            begins[var.name] = cursor
            cursor += vsizes[var.name]
    record_base = cursor
    rec_cursor = record_base
    recsize = 0
    for var in dataset.variables.values():
        if var.is_record:
            begins[var.name] = rec_cursor
            rec_cursor += vsizes[var.name]
            recsize += vsizes[var.name]
    return begins, header, recsize


def _serialize_header(
    dataset: Dataset,
    begins: Dict[str, int],
    vsizes: Dict[str, int],
    offset_width: int,
) -> bytes:
    chunks: List[bytes] = []
    chunks.append(b"CDF\x01" if offset_width == 4 else b"CDF\x02")
    chunks.append(_pack_int(dataset.num_records))

    dims = list(dataset.dimensions.values())
    if dims:
        chunks.append(_pack_int(NC_DIMENSION))
        chunks.append(_pack_int(len(dims)))
        for dim in dims:
            chunks.append(_pack_name(dim.name))
            chunks.append(_pack_int(0 if dim.is_record else dim.size))
    else:
        chunks.append(ABSENT)

    chunks.append(_pack_attr_list(dataset.attributes))

    variables = list(dataset.variables.values())
    if variables:
        dim_ids = {name: index for index, name in enumerate(dataset.dimensions)}
        chunks.append(_pack_int(NC_VARIABLE))
        chunks.append(_pack_int(len(variables)))
        for var in variables:
            chunks.append(_pack_name(var.name))
            chunks.append(_pack_int(len(var.dimensions)))
            for dim in var.dimensions:
                chunks.append(_pack_int(dim_ids[dim.name]))
            chunks.append(_pack_attr_list(var.attributes))
            chunks.append(_pack_int(int(var.nc_type)))
            chunks.append(_pack_int(min(vsizes[var.name], _MAX_CDF1_OFFSET)))
            if offset_width == 4:
                chunks.append(struct.pack(">i", begins[var.name]))
            else:
                chunks.append(struct.pack(">q", begins[var.name]))
    else:
        chunks.append(ABSENT)
    return b"".join(chunks)


def _choose_layout(dataset: Dataset) -> Tuple[int, Dict[str, int], int, int, Dict[str, int]]:
    """Pick CDF-1/CDF-2 and plan offsets; returns
    (offset_width, begins, header_size, recsize, vsizes)."""
    vsizes = _vsizes(dataset)
    offset_width = 4
    begins, header_size, recsize = _plan_offsets(dataset, offset_width)
    numrecs = dataset.num_records
    end = max(
        [header_size]
        + [
            begins[v.name] + (vsizes[v.name] if not v.is_record else 0)
            for v in dataset.variables.values()
        ]
        + ([begins[v.name] + numrecs * recsize for v in dataset.variables.values() if v.is_record] or [0])
    )
    if end > _MAX_CDF1_OFFSET:
        offset_width = 8
        begins, header_size, recsize = _plan_offsets(dataset, offset_width)
    return offset_width, begins, header_size, recsize, vsizes


def _write_record_slabs(
    out: bytearray,
    record_vars: Sequence[Variable],
    begins: Dict[str, int],
    recsize: int,
    numrecs: int,
) -> None:
    """Fill the record region with one strided scatter per variable.

    The region is pre-zeroed (so inter-record padding needs no explicit
    writes); each record variable's slices land ``recsize`` bytes apart.
    Assigning through a big-endian view keeps on-disk byte order without
    the per-record ``ascontiguousarray(...).tobytes()`` loop.
    """
    base = len(out)
    if base != min(begins[v.name] for v in record_vars):
        raise NcFormatError(
            f"internal offset mismatch for record slabs: at {base}, "
            f"planned {min(begins[v.name] for v in record_vars)}"
        )
    out += b"\x00" * (numrecs * recsize)
    if numrecs == 0:
        return
    view_buffer = memoryview(out)
    for var in record_vars:
        info = TYPE_INFO[var.nc_type]
        per_rec = _per_record_size(var)
        count = per_rec // info.size
        if count == 0:
            continue
        target = np.ndarray(
            shape=(numrecs, count),
            dtype=info.dtype,
            buffer=view_buffer,
            offset=begins[var.name],
            strides=(recsize, info.size),
        )
        target[:] = np.ascontiguousarray(var.data).reshape(numrecs, count)


def to_bytes(dataset: Dataset) -> bytes:
    """Serialize a dataset to NetCDF classic bytes."""
    for var in dataset.variables.values():
        if var.is_record and var.shape[0] != dataset.num_records:
            raise NcFormatError(f"record variable {var.name!r} has inconsistent record count")

    offset_width, begins, _header_size, recsize, vsizes = _choose_layout(dataset)
    out = bytearray(_serialize_header(dataset, begins, vsizes, offset_width))

    # Fixed-size variable data, in definition order, zero-padded to vsize.
    for var in dataset.variables.values():
        if var.is_record:
            continue
        if len(out) != begins[var.name]:
            raise NcFormatError(
                f"internal offset mismatch for {var.name!r}: "
                f"at {len(out)}, planned {begins[var.name]}"
            )
        payload = np.ascontiguousarray(var.data, dtype=var.data.dtype).tobytes()
        out += payload
        out += b"\x00" * (vsizes[var.name] - len(payload))

    record_vars = [v for v in dataset.variables.values() if v.is_record]
    if record_vars:
        _write_record_slabs(out, record_vars, begins, recsize, dataset.num_records)
    return bytes(out)


@dataclass(frozen=True)
class CanonicalLayout:
    """Byte layout of a serialization this writer produced (see
    :func:`canonical_layout`)."""

    offset_width: int
    header_size: int
    begins: Dict[str, int]
    vsizes: Dict[str, int]
    recsize: int
    numrecs: int


def _serialized_length(
    dataset: Dataset, header_size: int, recsize: int, vsizes: Dict[str, int]
) -> int:
    fixed = sum(vsizes[v.name] for v in dataset.variables.values() if not v.is_record)
    return header_size + fixed + dataset.num_records * recsize


def canonical_layout(dataset: Dataset, raw: bytes) -> Optional[CanonicalLayout]:
    """Layout of ``raw`` if it is exactly what :func:`to_bytes` would emit
    for ``dataset`` — or None for files from non-canonical producers.

    This is the precondition for :func:`splice_bytes`: when it holds, the
    data region of ``raw`` can be reused verbatim after a metadata-only
    change instead of re-serializing every unchanged variable.
    """
    offset_width, begins, header_size, recsize, vsizes = _choose_layout(dataset)
    if len(raw) != _serialized_length(dataset, header_size, recsize, vsizes):
        return None
    if bytes(raw[:header_size]) != _serialize_header(dataset, begins, vsizes, offset_width):
        return None
    return CanonicalLayout(
        offset_width=offset_width,
        header_size=header_size,
        begins=dict(begins),
        vsizes=dict(vsizes),
        recsize=recsize,
        numrecs=dataset.num_records,
    )


def splice_bytes(
    dataset: Dataset,
    raw: bytes,
    layout: CanonicalLayout,
    changed: Sequence[str],
) -> bytes:
    """Re-serialize ``dataset`` by rewriting only the header and the
    ``changed`` variables, splicing the rest of the data region from
    ``raw``.

    ``layout`` must come from :func:`canonical_layout` called *before*
    the dataset was mutated; since then only attributes and the values of
    the ``changed`` variables may have been touched (shapes and dtypes
    fixed).  This is the inference stage's label-append fast path: the
    radiance cube — the bulk of a tile file — is copied once as raw
    bytes instead of being re-encoded record by record.
    """
    offset_width, begins, header_size, recsize, vsizes = _choose_layout(dataset)
    if (
        offset_width != layout.offset_width
        or recsize != layout.recsize
        or vsizes != layout.vsizes
        or dataset.num_records != layout.numrecs
        or {n: b - header_size for n, b in begins.items()}
        != {n: b - layout.header_size for n, b in layout.begins.items()}
    ):
        # The relative layout moved (e.g. a variable was added): fall
        # back to the full serializer.
        return to_bytes(dataset)

    header = _serialize_header(dataset, begins, vsizes, offset_width)
    if header_size == layout.header_size:
        # Same header length: one whole-file copy, header overwritten in
        # place — cheaper than slicing the data region out separately.
        out = bytearray(raw)
        out[:header_size] = header
    else:
        out = bytearray(header_size + (len(raw) - layout.header_size))
        out[:header_size] = header
        out[header_size:] = memoryview(raw)[layout.header_size:]
    view_buffer = memoryview(out)
    for name in changed:
        var = dataset.variables[name]
        info = TYPE_INFO[var.nc_type]
        if var.is_record:
            per_rec = _per_record_size(var)
            count = per_rec // info.size
            if dataset.num_records == 0 or count == 0:
                continue
            target = np.ndarray(
                shape=(dataset.num_records, count),
                dtype=info.dtype,
                buffer=view_buffer,
                offset=begins[name],
                strides=(recsize, info.size),
            )
            target[:] = np.ascontiguousarray(var.data).reshape(dataset.num_records, count)
        else:
            payload = np.ascontiguousarray(var.data, dtype=info.dtype).tobytes()
            out[begins[name]: begins[name] + len(payload)] = payload
    return bytes(out)


def write(dataset: Dataset, target: Union[str, BinaryIO]) -> int:
    """Write a dataset to a path or binary file object; returns byte count."""
    payload = to_bytes(dataset)
    if isinstance(target, str):
        with open(target, "wb") as handle:
            handle.write(payload)
    else:
        target.write(payload)
    return len(payload)
