"""NetCDF classic (CDF-1 / CDF-2) parser.

Parses bytes produced by :mod:`repro.netcdf.writer` — or by any conforming
NetCDF classic writer — back into a :class:`repro.netcdf.dataset.Dataset`.
Bounds are validated before every read so truncated or corrupt files fail
with :class:`NcFormatError` rather than silent garbage.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Dict, List, Tuple, Union

import numpy as np

from repro.netcdf.dataset import Dataset
from repro.netcdf.types import NcFormatError, NcType, TYPE_INFO
from repro.netcdf.writer import NC_ATTRIBUTE, NC_DIMENSION, NC_VARIABLE, _pad4

__all__ = ["read", "from_bytes"]


class _Cursor:
    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes):
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.buf):
            raise NcFormatError(
                f"truncated file: needed {n} bytes at offset {self.pos}, "
                f"have {len(self.buf) - self.pos}"
            )
        chunk = self.buf[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def int32(self) -> int:
        return struct.unpack(">i", self.take(4))[0]

    def int64(self) -> int:
        return struct.unpack(">q", self.take(8))[0]

    def name(self) -> str:
        length = self.int32()
        if length < 0:
            raise NcFormatError(f"negative name length at offset {self.pos - 4}")
        raw = self.take(_pad4(length))[:length]
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise NcFormatError(f"name at offset {self.pos} is not valid UTF-8") from exc


def _read_attr_list(cursor: _Cursor) -> Dict[str, Union[str, np.ndarray]]:
    tag = cursor.int32()
    count = cursor.int32()
    if tag == 0:
        if count != 0:
            raise NcFormatError("ABSENT attribute list with non-zero count")
        return {}
    if tag != NC_ATTRIBUTE:
        raise NcFormatError(f"expected NC_ATTRIBUTE tag, got {tag:#x}")
    attrs: Dict[str, Union[str, np.ndarray]] = {}
    for _ in range(count):
        name = cursor.name()
        type_tag = cursor.int32()
        try:
            nc_type = NcType(type_tag)
        except ValueError as exc:
            raise NcFormatError(f"unknown attribute type {type_tag}") from exc
        nelems = cursor.int32()
        if nelems < 0:
            raise NcFormatError(f"negative attribute element count for {name!r}")
        info = TYPE_INFO[nc_type]
        payload = cursor.take(_pad4(nelems * info.size))[: nelems * info.size]
        if nc_type is NcType.CHAR:
            attrs[name] = payload.decode("utf-8", errors="replace")
        else:
            attrs[name] = np.frombuffer(payload, dtype=info.dtype).copy()
    return attrs


def from_bytes(buf: bytes) -> Dataset:
    """Parse NetCDF classic bytes into a Dataset."""
    cursor = _Cursor(buf)
    magic = cursor.take(4)
    if magic[:3] != b"CDF":
        raise NcFormatError(f"not a NetCDF classic file (magic {magic!r})")
    version = magic[3]
    if version not in (1, 2):
        raise NcFormatError(f"unsupported NetCDF version byte {version}")
    offset_width = 4 if version == 1 else 8

    numrecs = cursor.int32()
    if numrecs < 0:
        raise NcFormatError("streaming numrecs (-1) is not supported")

    # Dimensions.
    tag = cursor.int32()
    count = cursor.int32()
    dims: List[Tuple[str, int]] = []
    if tag == NC_DIMENSION:
        for _ in range(count):
            name = cursor.name()
            size = cursor.int32()
            if size < 0:
                raise NcFormatError(f"negative dimension size for {name!r}")
            dims.append((name, size))
    elif tag != 0 or count != 0:
        raise NcFormatError(f"expected NC_DIMENSION tag, got {tag:#x}")

    global_attrs = _read_attr_list(cursor)

    # Variables.
    tag = cursor.int32()
    count = cursor.int32()
    headers = []
    if tag == NC_VARIABLE:
        for _ in range(count):
            name = cursor.name()
            ndims = cursor.int32()
            if ndims < 0:
                raise NcFormatError(f"negative rank for variable {name!r}")
            dim_ids = [cursor.int32() for _ in range(ndims)]
            for dim_id in dim_ids:
                if not 0 <= dim_id < len(dims):
                    raise NcFormatError(f"variable {name!r} references bad dimension id {dim_id}")
            attrs = _read_attr_list(cursor)
            type_tag = cursor.int32()
            try:
                nc_type = NcType(type_tag)
            except ValueError as exc:
                raise NcFormatError(f"unknown variable type {type_tag}") from exc
            _vsize = cursor.int32()
            begin = cursor.int32() if offset_width == 4 else cursor.int64()
            if begin < 0:
                raise NcFormatError(f"variable {name!r} has negative data offset {begin}")
            # Upper-bound validation happens at data-read time: with zero
            # records a record variable's begin may legitimately point at
            # (or past) end-of-file.
            headers.append((name, dim_ids, attrs, nc_type, begin))
    elif tag != 0 or count != 0:
        raise NcFormatError(f"expected NC_VARIABLE tag, got {tag:#x}")

    dataset = Dataset()
    # The classic format marks the (single) record dimension with length 0.
    record_dim_id = None
    for dim_id, (name, size) in enumerate(dims):
        if size == 0 and record_dim_id is None:
            record_dim_id = dim_id
            dataset.create_dimension(name, None)
        else:
            dataset.create_dimension(name, size)
    for name, value in global_attrs.items():
        dataset.attributes[name] = value

    dim_names = [name for name, _ in dims]

    # Compute the record slab layout (mirrors the writer).
    record_headers = [h for h in headers if h[1] and h[1][0] == record_dim_id and record_dim_id is not None]
    sole_record = len(record_headers) == 1

    def per_record_bytes(header) -> int:
        _name, dim_ids, _attrs, nc_type, _begin = header
        size = TYPE_INFO[nc_type].size
        for dim_id in dim_ids[1:]:
            size *= dims[dim_id][1]
        return size

    recsize = sum(
        per_record_bytes(h) if sole_record else _pad4(per_record_bytes(h)) for h in record_headers
    )

    for header in headers:
        name, dim_ids, attrs, nc_type, begin = header
        info = TYPE_INFO[nc_type]
        is_record = record_dim_id is not None and dim_ids and dim_ids[0] == record_dim_id
        if is_record:
            tail_shape = tuple(dims[d][1] for d in dim_ids[1:])
            per_rec = per_record_bytes(header)
            count = per_rec // info.size
            if numrecs == 0 or count == 0:
                data = np.empty((numrecs, *tail_shape), dtype=info.dtype)
            else:
                if begin + (numrecs - 1) * recsize + per_rec > len(buf):
                    raise NcFormatError(
                        f"records of {name!r} extend past end of file"
                    )
                # One strided gather over the whole record region instead
                # of a per-record frombuffer loop: records of this
                # variable sit ``recsize`` bytes apart in the slab.
                strided = np.ndarray(
                    shape=(numrecs, count),
                    dtype=info.dtype,
                    buffer=buf,
                    offset=begin,
                    strides=(recsize, info.size),
                )
                # .copy() also detaches the view from the immutable
                # ``buf`` so the variable's data stays writable.
                data = strided.copy().reshape((numrecs, *tail_shape))
            shape_dims = [dim_names[d] for d in dim_ids]
        else:
            shape = tuple(dims[d][1] for d in dim_ids)
            count_elems = 1
            for extent in shape:
                count_elems *= extent
            if begin + count_elems * info.size > len(buf):
                raise NcFormatError(f"variable {name!r} extends past end of file")
            data = np.frombuffer(buf, dtype=info.dtype, count=count_elems, offset=begin).reshape(shape).copy()
            shape_dims = [dim_names[d] for d in dim_ids]
        variable = dataset.create_variable(name, nc_type, shape_dims, data)
        for attr_name, attr_value in attrs.items():
            variable.attributes[attr_name] = attr_value
    return dataset


def read(source: Union[str, BinaryIO, bytes]) -> Dataset:
    """Read a dataset from a path, binary file object, or bytes."""
    if isinstance(source, bytes):
        return from_bytes(source)
    if isinstance(source, str):
        with open(source, "rb") as handle:
            return from_bytes(handle.read())
    return from_bytes(source.read())
