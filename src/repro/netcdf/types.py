"""NetCDF classic (CDF-1/CDF-2) on-disk type system.

The EO-ML workflow's data contract is NetCDF: preprocessing "saves the
processed files as NetCDFs", inference "append[s] cloud labels to NetCDF
file[s]".  netCDF4/h5py are unavailable offline, so :mod:`repro.netcdf`
implements the classic file format from the format specification.  This
module maps the six external types to NumPy dtypes and default fill
values.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict

import numpy as np

__all__ = ["NcType", "TYPE_INFO", "dtype_to_nctype", "NcFormatError"]


class NcFormatError(ValueError):
    """Raised on malformed NetCDF bytes or unrepresentable data."""


class NcType(IntEnum):
    """External type tags from the classic format specification."""

    BYTE = 1
    CHAR = 2
    SHORT = 3
    INT = 4
    FLOAT = 5
    DOUBLE = 6


@dataclass(frozen=True)
class _TypeInfo:
    nc_type: NcType
    size: int
    dtype: np.dtype
    fill: object


# All on-disk data is big-endian.
TYPE_INFO: Dict[NcType, _TypeInfo] = {
    NcType.BYTE: _TypeInfo(NcType.BYTE, 1, np.dtype(">i1"), np.int8(-127)),
    NcType.CHAR: _TypeInfo(NcType.CHAR, 1, np.dtype("S1"), b"\x00"),
    NcType.SHORT: _TypeInfo(NcType.SHORT, 2, np.dtype(">i2"), np.int16(-32767)),
    NcType.INT: _TypeInfo(NcType.INT, 4, np.dtype(">i4"), np.int32(-2147483647)),
    NcType.FLOAT: _TypeInfo(NcType.FLOAT, 4, np.dtype(">f4"), np.float32(9.969209968386869e36)),
    NcType.DOUBLE: _TypeInfo(NcType.DOUBLE, 8, np.dtype(">f8"), np.float64(9.969209968386869e36)),
}

_KIND_MAP = {
    ("i", 1): NcType.BYTE,
    ("u", 1): NcType.BYTE,
    ("S", 1): NcType.CHAR,
    ("i", 2): NcType.SHORT,
    ("i", 4): NcType.INT,
    ("f", 4): NcType.FLOAT,
    ("f", 8): NcType.DOUBLE,
}


def dtype_to_nctype(dtype: np.dtype) -> NcType:
    """The classic external type for a NumPy dtype.

    Widening conversions are *not* implicit: int64 data must be cast by the
    caller (classic NetCDF has no 64-bit integer), which keeps silent
    truncation out of the write path.
    """
    dtype = np.dtype(dtype)
    key = (dtype.kind, dtype.itemsize)
    if key not in _KIND_MAP:
        raise NcFormatError(
            f"dtype {dtype} has no NetCDF classic external type; "
            "cast to one of int8/int16/int32/float32/float64/S1"
        )
    return _KIND_MAP[key]
