"""Chaos surfaces: where injected faults meet the real workflow objects.

Each surface wraps one of the workflow's genuine failure points and
translates fired :class:`~repro.chaos.engine.FaultEvent` records into the
*same observable behaviour* the paper's operational failures produce:

* :class:`ChaosArchive` — LAADS 503s (transient and permanent) and slow
  HTTPS streams, at the archive ``fetch`` boundary;
* :func:`chaos_atomic_write` — torn writes (a dead writer's ``.part``
  litter) and post-completion corruption (crawler-visible partials /
  bit-rot) at the NetCDF write boundary;
* :class:`ChaosTransferClient` — WAN degradation on the shipment path;
* :func:`chaos_stall` — compute workers that hang before progressing;
* :class:`ChaosTransport` — the control-plane *wire* itself: partitions,
  blackouts, lossy links, and reset-after-delivery between a
  :class:`~repro.server.client.ControlPlaneClient` and the service.

Every wrapper takes ``Optional[FaultInjector]`` and degenerates to the
undecorated behaviour when it is ``None``, so production code paths pay
nothing when chaos is off.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
import urllib.parse
import urllib.request
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.chaos.engine import FaultInjector
from repro.journal.manifest import sha256_file
from repro.netcdf import Dataset, to_bytes
from repro.transfer import LocalTransferClient, TransferError
from repro.util.atomic import fsync_dir

__all__ = [
    "CRASH_EXIT_CODE",
    "ChaosArchive",
    "ChaosTransferClient",
    "ChaosTransport",
    "chaos_atomic_write",
    "chaos_crash",
    "chaos_stall",
    "damage_file",
]

# Distinctive exit status for an injected crash, so harnesses can tell a
# scheduled kill from an ordinary failure.
CRASH_EXIT_CODE = 86

# Indirection over os._exit so tests can observe crashes without dying.
_abort = os._exit


def chaos_crash(chaos: Optional[FaultInjector], stage: str, key: str = "") -> None:
    """Die like a preempted job: immediate process abort, no cleanup.

    ``os._exit`` skips atexit handlers, finally blocks, and buffered
    flushes — the honest model of SIGKILL-class death.  Fired at a
    surface *between* an artifact's publication and its journal record,
    it exercises exactly the window crash-consistent resume must close.
    """
    if chaos is not None and chaos.fire(stage, "crash", key):
        _abort(CRASH_EXIT_CODE)


def chaos_stall(
    chaos: Optional[FaultInjector],
    stage: str,
    key: str,
    sleeper: Callable[[float], None] = time.sleep,
) -> float:
    """Apply any ``worker_stall`` faults; returns the injected seconds."""
    if chaos is None:
        return 0.0
    stalled = 0.0
    for event in chaos.fire(stage, "worker_stall", key):
        sleeper(event.latency)
        stalled += event.latency
    return stalled


def damage_file(path: str, keep_fraction: float = 0.5) -> None:
    """Truncate a completed file, simulating partial/corrupted content.

    Truncation is the corruption classic NetCDF reliably detects (the
    header promises more data than the file holds), unlike single-byte
    flips which may land in data sections and parse cleanly.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in [0, 1)")
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(max(1, int(size * keep_fraction)))


def chaos_atomic_write(
    ds: Dataset,
    final_path: str,
    chaos: Optional[FaultInjector] = None,
    stage: str = "preprocess",
    key: str = "",
) -> Tuple[int, str]:
    """Atomic (temp + rename) NetCDF write with torn/corrupt injection.

    Returns ``(nbytes, sha256_hex)`` of the *published* file: the digest
    is computed while the bytes stream to the temp file (no second read),
    except under ``corrupt_tile`` where the damaged on-disk content is
    re-digested — the manifest must describe what the filesystem actually
    holds, so the integrity gate and resume logic see the corruption.

    * ``torn_write`` — the writer "dies" mid-file: a truncated ``.part``
      temp file is left behind (never renamed) and :class:`OSError` is
      raised, exactly what a crashed worker leaves on a shared
      filesystem.  Pattern-matching crawlers must never pick it up.
    * ``corrupt_tile`` — the rename completes but the file's bytes are
      damaged (truncated), i.e. a *crawler-visible* partial: downstream
      readers see a well-named file whose parse fails.
    * ``crash`` — the process aborts after the temp file is fully
      written but *before* the rename: the exact torn window resume
      logic must treat as "never happened".

    The production path (no chaos) is the full crash-consistency
    triple: temp write, file fsync, atomic rename, directory fsync.
    """
    key = key or final_path
    temp_path = final_path + ".part"
    blob = to_bytes(ds)
    if chaos is not None and chaos.fire(stage, "torn_write", key):
        with open(temp_path, "wb") as handle:
            handle.write(blob[: max(1, len(blob) // 3)])
        raise OSError(f"chaos: torn write, partial left at {os.path.basename(temp_path)}")
    digest = hashlib.sha256()
    with open(temp_path, "wb") as handle:
        handle.write(blob)
        digest.update(blob)
        handle.flush()
        os.fsync(handle.fileno())
    chaos_crash(chaos, stage, key)
    os.replace(temp_path, final_path)
    fsync_dir(os.path.dirname(final_path))
    if chaos is not None and chaos.fire(stage, "corrupt_tile", key):
        damage_file(final_path)
        return os.path.getsize(final_path), sha256_file(final_path)
    return len(blob), digest.hexdigest()


class ChaosArchive:
    """A LAADS archive whose ``fetch`` exhibits scheduled HTTP failures.

    Wraps any archive object (composition, not subclassing, so it also
    wraps test doubles); everything but ``fetch`` delegates unchanged.
    """

    def __init__(
        self,
        inner,
        chaos: FaultInjector,
        sleeper: Callable[[float], None] = time.sleep,
    ):
        self._inner = inner
        self._chaos = chaos
        self._sleeper = sleeper

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def fetch(self, ref, bands: Optional[Iterable[int]] = None):
        key = ref.filename
        chaos_crash(self._chaos, "download", key)
        for event in self._chaos.fire("download", "slow_fetch", key):
            self._sleeper(event.latency)
        if self._chaos.fire("download", "http_permanent", key):
            raise OSError(f"chaos: HTTP 503 Service Unavailable (permanent) for {key}")
        if self._chaos.fire("download", "http_transient", key):
            raise OSError(f"chaos: HTTP 503 Service Unavailable for {key}")
        return self._inner.fetch(ref, bands)


class ChaosTransport:
    """The control-plane wire as a failure surface.

    An ``opener``-compatible callable for
    :class:`~repro.server.client.ControlPlaneClient` — drop-in for
    ``urllib.request.urlopen`` — that interprets the plan's ``net``-stage
    fault kinds against a **stateful link model**:

    * ``partition`` / ``blackout`` are *outages*: the first request whose
      protocol phase matches the spec's ``match`` prefix trigger-trips the
      link, and for the next ``latency`` seconds **every** phase is
      severed — a partitioned site cannot even reach ``/v1/health``.
      Partition refuses connections instantly
      (:class:`ConnectionRefusedError`); blackout is a black hole — the
      caller burns its full timeout before :class:`TimeoutError`.
    * ``flaky`` drops individual requests per-call at the spec's ``rate``
      (keys are ``{phase}#{seq}``, so the drop pattern is seeded and
      repeatable).
    * ``slow_link`` delivers after ``latency`` seconds of added delay.
    * ``reset`` is the nastiest: the request IS delivered to the server,
      then the response is torn away — the client cannot tell "server
      never saw it" from "server acted and the ack was lost".  This is
      the at-least-once hazard that forces dedupe keys and fencing on
      every non-idempotent POST.

    Share one instance across every client of a site to model one
    physical link: when the link is down, the agent's poll loop, its
    heartbeat thread, and its reconnect probes all see the same outage.
    Thread-safe; ``clock`` and ``sleeper`` are injectable for tests.
    """

    def __init__(
        self,
        chaos: FaultInjector,
        inner: Optional[Callable[..., object]] = None,
        clock: Callable[[], float] = time.monotonic,
        sleeper: Callable[[float], None] = time.sleep,
    ):
        self._chaos = chaos
        self._inner = inner or urllib.request.urlopen
        self._clock = clock
        self._sleeper = sleeper
        self._lock = threading.Lock()
        self._seq = 0
        self._outage_kind: Optional[str] = None
        self._outage_until = 0.0
        self.stats: dict = {
            "outages": 0, "refused": 0, "blackholed": 0,
            "dropped": 0, "delayed": 0, "resets": 0, "delivered": 0,
        }

    def _bump(self, name: str) -> None:
        with self._lock:
            self.stats[name] += 1

    @property
    def severed(self) -> bool:
        """Is an outage window open right now?"""
        with self._lock:
            return self._clock() < self._outage_until

    def heal(self) -> None:
        """Close any open outage window (operator fixed the link)."""
        with self._lock:
            self._outage_until = 0.0
            self._outage_kind = None

    def __call__(self, req, timeout: Optional[float] = None):
        phase = _request_phase(req)
        with self._lock:
            self._seq += 1
            key = f"{phase}#{self._seq}"
            now = self._clock()
            active = now < self._outage_until
            kind = self._outage_kind
            remaining = self._outage_until - now
        if not active:
            # An un-severed link: a matched phase may trip a new outage.
            for want in ("partition", "blackout"):
                events = self._chaos.fire("net", want, phase)
                if events:
                    with self._lock:
                        self._outage_kind = want
                        self._outage_until = now + events[0].latency
                        self.stats["outages"] += 1
                    active, kind, remaining = True, want, events[0].latency
                    break
        if active:
            if kind == "blackout":
                wait = remaining if timeout is None else min(timeout, remaining)
                self._sleeper(max(0.0, wait))
                self._bump("blackholed")
                raise TimeoutError(f"chaos: blackout, {phase} request timed out")
            self._bump("refused")
            raise ConnectionRefusedError(
                f"chaos: partition, {phase} connection refused"
            )
        for event in self._chaos.fire("net", "slow_link", key, count_key=phase):
            self._sleeper(event.latency)
            self._bump("delayed")
        if self._chaos.fire("net", "flaky", key, count_key=phase):
            self._bump("dropped")
            raise ConnectionResetError(f"chaos: flaky wire dropped {phase} request")
        if self._chaos.fire("net", "reset", key, count_key=phase):
            # Deliver the request, then tear the response away: the server
            # acted, the client will never know.
            response = self._inner(req, timeout=timeout)
            try:
                response.read()
            finally:
                response.close()
            self._bump("resets")
            raise ConnectionResetError(
                f"chaos: connection reset after {phase} request was delivered"
            )
        self._bump("delivered")
        return self._inner(req, timeout=timeout)


def _request_phase(req) -> str:
    """The protocol phase of one urllib Request (lazy import: net.http)."""
    from repro.net.http import classify_phase

    return classify_phase(req.get_method(), urllib.parse.urlsplit(req.full_url).path)


class ChaosTransferClient(LocalTransferClient):
    """A transfer client whose per-file moves suffer WAN degradation."""

    def __init__(
        self,
        chaos: FaultInjector,
        sleeper: Callable[[float], None] = time.sleep,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self._chaos = chaos
        self._sleeper = sleeper

    def _move_one(self, src_root, dst_root, name: str, sync: bool):
        chaos_crash(self._chaos, "shipment", name)
        events = self._chaos.fire("shipment", "wan_degrade", name)
        for event in events:
            self._sleeper(event.latency)
        if events:
            raise TransferError(f"chaos: WAN degraded moving {name}")
        return super()._move_one(src_root, dst_root, name, sync)
