"""Fault plans: the declarative schedule of what chaos to inject where.

A :class:`FaultPlan` is the user-facing contract of the chaos engine:
a seed plus a list of :class:`FaultSpec` entries, each naming a workflow
stage, a fault kind, and how often/how many times it fires.  Plans are
parsed from the workflow YAML's ``chaos:`` section (or a standalone
chaos file via the CLI's ``--chaos`` flag) with the same schema
machinery the rest of the configuration uses, so malformed plans fail
with pointed messages.

The plan is pure data — deciding *whether a given operation is hit* is
the engine's job (:mod:`repro.chaos.engine`), and *what the fault looks
like to the consumer* is the surfaces' job (:mod:`repro.chaos.surfaces`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.util.config import ConfigError, Field, Schema, boolean, integer, number, string

__all__ = [
    "FAULT_KINDS",
    "NET_KINDS",
    "CACHE_KINDS",
    "STAGES",
    "FaultSpec",
    "FaultPlan",
    "load_plan",
]

# The workflow stages faults can target: Fig. 2's five boxes, plus the
# control-plane site agent (killed-mid-lease faults, repro.server.agent),
# the control-plane wire itself (``net``, repro.chaos.surfaces.
# ChaosTransport between ControlPlaneClient and the service), and the
# shared content-addressed artifact store (``cache``, repro.cas.store).
STAGES = (
    "download", "preprocess", "monitor", "inference", "shipment",
    "agent", "net", "cache",
)

# The failure surfaces the paper names as operational reality:
#   http_transient — LAADS 503 / dropped connection that a retry recovers;
#   http_permanent — a granule the archive never serves (all attempts fail);
#   slow_fetch     — a slow archive stream / slow Slurm node (added latency);
#   torn_write     — a writer dies mid-file, leaving a .part temp file;
#   corrupt_tile   — a completed file whose bytes are damaged (truncated),
#                    i.e. a crawler-visible partial or bit-rotted NetCDF;
#   wan_degrade    — the Defiant->Frontier WAN path fails or crawls;
#   worker_stall   — a compute worker hangs before making progress;
#   crash          — the orchestrator process dies outright (Slurm
#                    preemption, node crash): os._exit at the surface,
#                    no cleanup, no handlers — resume must cope.
#
# Wire-level kinds (stage ``net``, interpreted by ChaosTransport against
# the control-plane link; ``latency`` is the outage window in seconds
# for the stateful kinds):
#   partition      — the link is severed: connects are refused instantly
#                    for the whole outage window (site firewall drop);
#   blackout       — the link is a black hole: requests hang until the
#                    client timeout expires, for the whole window;
#   flaky          — individual requests are dropped per-call at ``rate``
#                    (lossy WAN), no sustained outage;
#   slow_link      — requests are delivered after ``latency`` seconds of
#                    added delay (degraded WAN path);
#   reset          — the request is DELIVERED but the response is lost
#                    (connection reset after the server acted) — the
#                    at-least-once hazard that forces idempotent POSTs.
# Cache-volume kinds (stage ``cache``, interpreted by
# :class:`repro.cas.store.CASStore` against the shared artifact store):
#   cache_corrupt  — an object's bytes rot on the cache volume; the
#                    read-time digest check must quarantine it and the
#                    caller must fall back to the authoritative source;
#   cache_enospc   — the cache volume is full: a store attempt fails
#                    with ENOSPC, which the pipeline must absorb as "no
#                    future hit", never as a failed unit.
FAULT_KINDS = (
    "http_transient",
    "http_permanent",
    "slow_fetch",
    "torn_write",
    "corrupt_tile",
    "wan_degrade",
    "worker_stall",
    "crash",
    "partition",
    "blackout",
    "flaky",
    "slow_link",
    "reset",
    "cache_corrupt",
    "cache_enospc",
)

# Wire-only kinds: valid only with stage "net".
NET_KINDS = frozenset({"partition", "blackout", "flaky", "slow_link", "reset"})

# Cache-only kinds: valid only with stage "cache" (which also accepts
# "crash", for kills mid-materialization).
CACHE_KINDS = frozenset({"cache_corrupt", "cache_enospc"})

# Kinds that keep firing on every retry of the same key (times ignored).
_UNBOUNDED_KINDS = frozenset({"http_permanent", "corrupt_tile"})


def _rate(value: Any) -> float:
    result = number(value)
    if not 0.0 <= result <= 1.0:
        raise ValueError(f"expected a rate in [0, 1], got {result}")
    return result


def _non_negative_number(value: Any) -> float:
    result = number(value)
    if result < 0:
        raise ValueError(f"expected a non-negative number, got {result}")
    return result


def _positive_or_none(value: Any) -> Optional[int]:
    if value is None:
        return None
    result = integer(value)
    if result <= 0:
        raise ValueError(f"expected a positive integer or null, got {result}")
    return result


_FAULT = Schema(
    "chaos.faults[]",
    [
        Field("stage", string, choices=STAGES),
        Field("kind", string, choices=FAULT_KINDS),
        Field("rate", _rate, required=False, default=1.0),
        Field("times", _positive_or_none, required=False, default=1),
        Field("latency", _non_negative_number, required=False, default=0.05),
        Field("match", string, required=False, default=""),
    ],
)

def _fault_list(value: Any) -> List[Any]:
    if not isinstance(value, (list, tuple)):
        raise ValueError(f"expected a list of fault mappings, got {type(value).__name__}")
    return list(value)


_CHAOS = Schema(
    "chaos",
    [
        Field("enabled", boolean, required=False, default=True),
        Field("seed", integer, required=False, default=0),
        Field("faults", _fault_list, required=False, default=[]),
    ],
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``rate`` selects which operation keys (filenames, granule keys, …)
    the fault applies to — the selection is a deterministic hash of the
    plan seed and the key, not a draw per call, so retries of the same
    key see a consistent world.  ``times`` caps how many times the fault
    fires per selected key (``None`` = every time; forced for kinds that
    model permanent damage).  ``latency`` is the injected delay, for the
    kinds that slow rather than fail — and, for the stateful wire kinds
    ``partition``/``blackout``, the *duration* of the outage window.
    ``match`` restricts the fault to operation keys starting with the
    given prefix; wire specs use it to pick the protocol *phase* that
    triggers an outage (e.g. ``match: "heartbeat"`` severs the link the
    first time a heartbeat crosses it).
    """

    stage: str
    kind: str
    rate: float = 1.0
    times: Optional[int] = 1
    latency: float = 0.05
    match: str = ""

    def __post_init__(self) -> None:
        if self.stage not in STAGES:
            raise ValueError(f"unknown stage {self.stage!r} (stages: {STAGES})")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (kinds: {FAULT_KINDS})")
        if self.kind in NET_KINDS and self.stage != "net":
            raise ValueError(
                f"fault kind {self.kind!r} is wire-level and requires stage 'net'"
            )
        if self.stage == "net" and self.kind not in NET_KINDS:
            raise ValueError(
                f"stage 'net' only takes wire-level kinds {sorted(NET_KINDS)}, "
                f"got {self.kind!r}"
            )
        if self.kind in CACHE_KINDS and self.stage != "cache":
            raise ValueError(
                f"fault kind {self.kind!r} targets the artifact store and "
                f"requires stage 'cache'"
            )
        if self.stage == "cache" and self.kind not in CACHE_KINDS | {"crash"}:
            raise ValueError(
                f"stage 'cache' only takes kinds "
                f"{sorted(CACHE_KINDS | {'crash'})}, got {self.kind!r}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.times is not None and self.times <= 0:
            raise ValueError("times must be positive or None")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.kind in _UNBOUNDED_KINDS and self.times is not None:
            # Permanent damage does not heal after N observations.
            object.__setattr__(self, "times", None)

    def to_mapping(self) -> Dict[str, Any]:
        out = {
            "stage": self.stage,
            "kind": self.kind,
            "rate": self.rate,
            "times": self.times,
            "latency": self.latency,
        }
        if self.match:
            out["match"] = self.match
        return out


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative chaos schedule."""

    seed: int = 0
    enabled: bool = True
    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    @property
    def active(self) -> bool:
        return self.enabled and bool(self.faults)

    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({spec.kind for spec in self.faults}))

    def stages(self) -> Tuple[str, ...]:
        return tuple(sorted({spec.stage for spec in self.faults}))

    def for_stage(self, stage: str) -> Tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.faults if spec.stage == stage)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    @staticmethod
    def from_mapping(raw: Mapping[str, Any], path: str = "chaos") -> "FaultPlan":
        """Parse a ``chaos:`` section mapping into a plan."""
        top = _CHAOS.validate(raw, path)
        specs: List[FaultSpec] = []
        for index, entry in enumerate(top["faults"]):
            if not isinstance(entry, Mapping):
                raise ConfigError(
                    f"{path}.faults[{index}]",
                    f"expected a mapping, got {type(entry).__name__}",
                )
            resolved = _FAULT.validate(entry, f"{path}.faults[{index}]")
            specs.append(FaultSpec(**resolved))
        return FaultPlan(seed=top["seed"], enabled=top["enabled"], faults=tuple(specs))

    def to_mapping(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "seed": self.seed,
            "faults": [spec.to_mapping() for spec in self.faults],
        }


def load_plan(source: Mapping[str, Any] | str) -> FaultPlan:
    """Parse a chaos plan from YAML text or a mapping.

    Accepts either a bare chaos mapping (``enabled`` / ``seed`` /
    ``faults``) or a document with a top-level ``chaos:`` key, so the
    CLI flag can point at a standalone file or a full workflow config.
    """
    if isinstance(source, str):
        from repro.util.yamlish import loads as yaml_loads

        parsed = yaml_loads(source)
        if not isinstance(parsed, Mapping):
            raise ConfigError("chaos", "chaos plan must be a mapping")
        source = parsed
    if "chaos" in source and isinstance(source["chaos"], Mapping):
        source = source["chaos"]
    return FaultPlan.from_mapping(source)
