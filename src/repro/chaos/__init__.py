"""Deterministic fault injection for the five-stage EO-ML workflow.

The paper's multi-facility pipeline lives with operational failure —
LAADS 503s, slow Slurm nodes, WAN degradation between Defiant and
Frontier.  This package makes those failures *schedulable*: a seeded
:class:`FaultPlan` (the ``chaos:`` section of the workflow YAML, or the
CLI's ``--chaos`` flag) drives a :class:`FaultInjector` whose decisions
are deterministic functions of (seed, fault, operation key), and thin
surface wrappers translate fired faults into the real failure modes the
stages must survive.

Layering: ``plan`` (pure config) -> ``engine`` (decisions + ledger) ->
``surfaces`` (behaviour).  ``repro.core`` wires injectors through the
stages; with chaos disabled every hook is ``None`` and the workflow is
byte-for-byte the production path.
"""

from repro.chaos.engine import FaultEvent, FaultInjector, build_injector
from repro.chaos.plan import FAULT_KINDS, NET_KINDS, STAGES, FaultPlan, FaultSpec, load_plan
from repro.chaos.surfaces import (
    CRASH_EXIT_CODE,
    ChaosArchive,
    ChaosTransferClient,
    ChaosTransport,
    chaos_atomic_write,
    chaos_crash,
    chaos_stall,
    damage_file,
)

__all__ = [
    "FAULT_KINDS",
    "NET_KINDS",
    "STAGES",
    "FaultPlan",
    "FaultSpec",
    "load_plan",
    "FaultEvent",
    "FaultInjector",
    "build_injector",
    "CRASH_EXIT_CODE",
    "ChaosArchive",
    "ChaosTransferClient",
    "ChaosTransport",
    "chaos_atomic_write",
    "chaos_crash",
    "chaos_stall",
    "damage_file",
]
