"""The fault-injection engine: deterministic decisions + a fault ledger.

:class:`FaultInjector` turns a :class:`~repro.chaos.plan.FaultPlan` into
per-operation decisions.  Two properties make the injected chaos usable
in tests and reproducible across runs:

* **Determinism under concurrency** — whether a fault hits operation
  ``key`` is a SHA-256 function of (plan seed, spec index, key), never of
  arrival order, so multi-threaded stages produce the same fault set no
  matter how the scheduler interleaves them.  Per-key firing *counts*
  (``times``) are tracked under a lock.
* **Observability** — every fired fault lands in a ledger of
  :class:`FaultEvent` records; :meth:`FaultInjector.counts_by_kind`
  feeds the workflow's ``faults_injected`` metrics so a report can
  account for every injected fault.

Consumers hold ``Optional[FaultInjector]`` and guard every chaos branch
with ``if chaos is not None`` — a disabled plan yields ``None`` from
:func:`build_injector`, making the passthrough genuinely zero-overhead.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chaos.plan import FaultPlan, FaultSpec

__all__ = ["FaultEvent", "FaultInjector", "build_injector"]


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired."""

    stage: str
    kind: str
    key: str
    ordinal: int        # how many times this (spec, key) has fired, 1-based
    latency: float

    def describe(self) -> str:
        return f"{self.stage}/{self.kind} #{self.ordinal} on {self.key!r}"


class FaultInjector:
    """Evaluates a plan, fault by fault, operation by operation."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._fired: Dict[Tuple[int, str], int] = {}
        self.ledger: List[FaultEvent] = []
        # Pre-index specs by (stage, kind) so the hot path is a dict hit.
        self._by_site: Dict[Tuple[str, str], List[Tuple[int, FaultSpec]]] = {}
        for index, spec in enumerate(plan.faults):
            self._by_site.setdefault((spec.stage, spec.kind), []).append((index, spec))

    # -- decisions ----------------------------------------------------------

    def _selects(self, spec_index: int, key: str) -> bool:
        spec = self.plan.faults[spec_index]
        if spec.rate >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.plan.seed}:chaos:{spec_index}:{key}".encode()
        ).digest()
        draw = int.from_bytes(digest[:8], "little") / 2**64
        return draw < spec.rate

    def fire(
        self, stage: str, kind: str, key: str = "",
        count_key: Optional[str] = None,
    ) -> List[FaultEvent]:
        """Decide whether faults of (stage, kind) hit ``key`` right now.

        Returns the fired events (empty list = proceed normally) and
        records them in the ledger.  A spec with ``times=N`` fires on the
        first N calls for each selected key; ``times=None`` fires on
        every call.

        ``count_key`` splits the two roles ``key`` normally plays:
        selection (the rate draw, the ``match`` prefix) still uses
        ``key``, but the ``times`` budget is counted against
        ``count_key`` instead.  The wire transport uses this — each call
        gets a unique key so ``rate`` behaves like per-packet loss, while
        ``times`` still caps how many calls per protocol phase a spec
        may hit.
        """
        specs = self._by_site.get((stage, kind))
        if not specs:
            return []
        budget_key = key if count_key is None else count_key
        events: List[FaultEvent] = []
        for spec_index, spec in specs:
            if spec.match and not key.startswith(spec.match):
                continue
            if not self._selects(spec_index, key):
                continue
            with self._lock:
                count = self._fired.get((spec_index, budget_key), 0)
                if spec.times is not None and count >= spec.times:
                    continue
                self._fired[(spec_index, budget_key)] = count + 1
                event = FaultEvent(
                    stage=stage, kind=kind, key=key,
                    ordinal=count + 1, latency=spec.latency,
                )
                self.ledger.append(event)
            events.append(event)
        return events

    def would_select(self, stage: str, kind: str, key: str) -> bool:
        """Is ``key`` in the blast radius of any (stage, kind) spec?

        A read-only probe: no counters move, nothing is recorded.
        """
        specs = self._by_site.get((stage, kind), [])
        return any(
            self._selects(index, key)
            for index, spec in specs
            if not spec.match or key.startswith(spec.match)
        )

    # -- accounting ---------------------------------------------------------

    @property
    def faults_injected(self) -> int:
        with self._lock:
            return len(self.ledger)

    def counts_by_kind(self) -> Dict[str, int]:
        with self._lock:
            out: Dict[str, int] = {}
            for event in self.ledger:
                out[event.kind] = out.get(event.kind, 0) + 1
            return out

    def counts_by_stage(self) -> Dict[str, int]:
        with self._lock:
            out: Dict[str, int] = {}
            for event in self.ledger:
                out[event.stage] = out.get(event.stage, 0) + 1
            return out

    def summary(self) -> Dict[str, object]:
        return {
            "seed": self.plan.seed,
            "faults_injected": self.faults_injected,
            "by_kind": self.counts_by_kind(),
            "by_stage": self.counts_by_stage(),
        }


def build_injector(plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """The one constructor consumers use: ``None`` unless chaos is live."""
    if plan is None or not plan.active:
        return None
    return FaultInjector(plan)
