"""A GOES-archive-like facade for ABI full-disk granules.

Mirrors :class:`repro.modis.archive.LaadsArchive`'s surface — ``query``
returns refs with ``.filename``/``.gid``/``.nbytes`` and ``fetch``
materializes deterministic content — so :class:`DownloadStage` and the
chaos wrapper drive it unchanged.
"""

from __future__ import annotations

import datetime as dt
import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.abi.constants import GRANULES_PER_DAY, MINI_DISK, GridSpec, resolve_product
from repro.abi.granule import EPOCH, AbiGranuleId, generate_granule
from repro.netcdf import Dataset

__all__ = ["AbiGranuleRef", "AbiArchive"]


@dataclass(frozen=True)
class AbiGranuleRef:
    """A catalog entry: enough to plan and execute a download."""

    gid: AbiGranuleId
    nbytes: int

    @property
    def filename(self) -> str:
        return self.gid.filename


class AbiArchive:
    """The archive facade.

    ``seed`` fixes both scan content and the size distribution;
    ``grid`` sets the raster scale at which :meth:`fetch` materializes
    content (tests/examples use :data:`MINI_DISK`).
    """

    def __init__(self, seed: int = 0, grid: GridSpec = MINI_DISK):
        self.seed = int(seed)
        self.grid = grid

    # -- catalog ------------------------------------------------------------

    def _size_draw(self, gid: AbiGranuleId) -> float:
        digest = hashlib.sha256(f"{self.seed}:size:{gid.key}".encode()).digest()
        return int.from_bytes(digest[:8], "little") / 2**64

    def granule_ref(self, gid: AbiGranuleId) -> AbiGranuleRef:
        spec = resolve_product(gid.product)
        return AbiGranuleRef(gid=gid, nbytes=spec.granule_bytes(self._size_draw(gid)))

    def query(
        self,
        product: str,
        start: dt.date,
        end: Optional[dt.date] = None,
        max_per_day: Optional[int] = None,
    ) -> List[AbiGranuleRef]:
        """Catalog full-disk scans of ``product`` with dates in
        [start, end]; ``max_per_day`` truncates each day's 144 scans."""
        spec = resolve_product(product)
        end = end or start
        if end < start:
            raise ValueError("end date before start date")
        if start < EPOCH:
            raise ValueError(f"archive begins at {EPOCH.isoformat()}")
        per_day = (
            GRANULES_PER_DAY if max_per_day is None
            else min(max_per_day, GRANULES_PER_DAY)
        )
        refs: List[AbiGranuleRef] = []
        day = start
        while day <= end:
            for index in range(per_day):
                gid = AbiGranuleId(product=spec.short_name, date=day, index=index)
                refs.append(self.granule_ref(gid))
            day += dt.timedelta(days=1)
        return refs

    # -- retrieval ----------------------------------------------------------

    def fetch(self, ref: AbiGranuleRef, bands: Optional[Iterable[int]] = None) -> Dataset:
        """Materialize a scan's content (the laptop-scale 'download')."""
        return generate_granule(
            ref.gid, self.grid, seed=self.seed,
            bands=tuple(bands) if bands else None,
        )

    def total_bytes(self, refs: Iterable[AbiGranuleRef]) -> int:
        return sum(ref.nbytes for ref in refs)
