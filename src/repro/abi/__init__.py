"""ABI-like geostationary full-disk instrument (the second source).

A GOES-R ABI analogue: square fixed-grid full-disk scans every 10
minutes, two products per scene (L1b radiances + L2 cloud/geolocation
product), off-disk pixels masked as land.  Registered as instrument
``abi`` in :mod:`repro.instruments`.
"""

from repro.abi.archive import AbiArchive, AbiGranuleRef
from repro.abi.constants import (
    ABI_BANDS,
    FULL_DISK,
    GRANULE_MINUTES,
    GRANULES_PER_DAY,
    MINI_DISK,
    AbiProductSpec,
    GridSpec,
    PRODUCT_ALIASES,
    PRODUCTS,
    resolve_product,
)
from repro.abi.contracts import GRANULE_ABI_ACMF, GRANULE_ABI_RADF
from repro.abi.granule import EPOCH, AbiGranuleId, fixed_grid, generate_granule

__all__ = [
    "ABI_BANDS",
    "AbiArchive",
    "AbiGranuleId",
    "AbiGranuleRef",
    "AbiProductSpec",
    "EPOCH",
    "FULL_DISK",
    "GRANULE_ABI_ACMF",
    "GRANULE_ABI_RADF",
    "GRANULE_MINUTES",
    "GRANULES_PER_DAY",
    "GridSpec",
    "MINI_DISK",
    "PRODUCT_ALIASES",
    "PRODUCTS",
    "fixed_grid",
    "generate_granule",
    "resolve_product",
]
