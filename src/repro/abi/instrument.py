"""ABI as a registered :class:`~repro.instruments.Instrument`.

The geostationary counterpart to MODIS: a two-product full-disk scene
every 10 minutes, geolocation carried by the L2 product, off-disk
pixels pre-masked as land by the generator so ocean-cloud tiling works
unmodified on the square fixed grid.
"""

from __future__ import annotations

from typing import Any

from repro.abi.archive import AbiArchive
from repro.abi.constants import (
    GRANULE_MINUTES,
    GRANULES_PER_DAY,
    MINI_DISK,
    resolve_product,
)
from repro.abi.contracts import GRANULE_ABI_ACMF, GRANULE_ABI_RADF
from repro.instruments.base import Instrument, SceneInputs
from repro.instruments.registry import register_instrument
from repro.netcdf import read as nc_read

__all__ = ["AbiInstrument"]


class AbiInstrument(Instrument):
    """Geostationary full-disk imager, 10-minute scans (GOES-East)."""

    name = "abi"
    title = "ABI (GOES-16) full-disk via the GOES archive"
    archive_host = "goes-archive"
    default_products = ("ABI-L1b-RadF", "ABI-L2-ACMF")
    granules_per_day = GRANULES_PER_DAY
    cadence_minutes = GRANULE_MINUTES
    default_tile_size = MINI_DISK.tile_size

    def resolve_product(self, name: str) -> str:
        return resolve_product(name).short_name

    def build_archive(self, seed: int = 0) -> AbiArchive:
        return AbiArchive(seed=seed)

    def load_scene(self, granules: Any) -> SceneInputs:
        radf = nc_read(granules.path_for("RadF"))
        acmf = nc_read(granules.path_for("ACMF"))
        GRANULE_ABI_RADF.validate(radf)
        GRANULE_ABI_ACMF.validate(acmf)
        return SceneInputs(
            radiance=radf["radiance"].data,
            cloud_mask=acmf["cloud_mask"].data.astype(bool),
            land_mask=acmf["land_mask"].data.astype(bool),
            latitude=acmf["latitude"].data,
            longitude=acmf["longitude"].data,
            optical_thickness=acmf["cloud_optical_thickness"].data,
            cloud_top_pressure=acmf["cloud_top_pressure"].data,
            attrs={"true_regime": str(radf.get_attr("true_regime", "unknown"))},
        )


register_instrument(AbiInstrument())
