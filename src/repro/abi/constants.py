"""ABI instrument, product, and fixed-grid constants.

An ABI-like geostationary imager (GOES-R series): instead of a polar
swath marching around the planet, the sensor stares at one hemisphere
and produces a **full-disk** scan every 10 minutes (mode 6) — 144
granules per day, each a square fixed-grid raster whose corners are
off-Earth.  Two products make a scene: the Level-1b full-disk
radiances and the Level-2 clear-sky-mask/cloud product (which also
carries the fixed-grid geolocation and the land mask).

``MINI_DISK`` is the test-scale geometry: a 192 x 192 fixed grid with
24-pixel tiles — deliberately *different* tiling geometry from the
MODIS mini swath (256 x 176 @ 16) so multi-instrument fan-out
exercises heterogeneous tile shapes end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "ABI_BANDS",
    "GRANULES_PER_DAY",
    "GRANULE_MINUTES",
    "AbiProductSpec",
    "PRODUCTS",
    "PRODUCT_ALIASES",
    "resolve_product",
    "GridSpec",
    "FULL_DISK",
    "MINI_DISK",
]

# The four ABI bands the labelling branch consumes: 0.64 um visible,
# 3.9 um shortwave IR, 10.3 um clean IR window, 11.2 um IR window.
ABI_BANDS: Tuple[int, ...] = (2, 7, 13, 14)

# Mode-6 full-disk cadence: one scan every 10 minutes, 144 per day.
GRANULES_PER_DAY = 144
GRANULE_MINUTES = 10


@dataclass(frozen=True)
class AbiProductSpec:
    """One ABI product family as served by the GOES archive."""

    short_name: str
    description: str
    mean_granule_bytes: int
    granule_bytes_cv: float

    def granule_bytes(self, u: float) -> int:
        """Deterministic size for a uniform draw ``u`` (triangular
        spread around the mean, same model as the MODIS archive)."""
        spread = self.mean_granule_bytes * self.granule_bytes_cv
        return max(1, int(self.mean_granule_bytes + (2.0 * u - 1.0) * spread))


# Full-disk product volumes (approximate public CLASS sizes): the
# multi-band L1b full disk runs ~300 MB, the L2 cloud product ~60 MB.
PRODUCTS: Dict[str, AbiProductSpec] = {
    "ABI-L1b-RadF": AbiProductSpec(
        short_name="ABI-L1b-RadF",
        description="Level-1b full-disk radiances",
        mean_granule_bytes=300 * 10**6,
        granule_bytes_cv=0.15,
    ),
    "ABI-L2-ACMF": AbiProductSpec(
        short_name="ABI-L2-ACMF",
        description="Level-2 full-disk clear-sky mask + cloud product",
        mean_granule_bytes=60 * 10**6,
        granule_bytes_cv=0.20,
    ),
}

#: Short aliases for configs (the scan-family suffix alone).
PRODUCT_ALIASES: Dict[str, str] = {
    "RadF": "ABI-L1b-RadF",
    "ACMF": "ABI-L2-ACMF",
}


def resolve_product(name: str) -> AbiProductSpec:
    """Look up an ABI product by canonical or alias name."""
    canonical = PRODUCT_ALIASES.get(name, name)
    if canonical not in PRODUCTS:
        raise KeyError(
            f"unknown ABI product {name!r}; known: {sorted(PRODUCTS)} "
            f"(aliases: {sorted(PRODUCT_ALIASES)})"
        )
    return PRODUCTS[canonical]


@dataclass(frozen=True)
class GridSpec:
    """Fixed-grid raster geometry (square full disk), test-scalable."""

    lines: int
    pixels: int
    tile_size: int

    def __post_init__(self) -> None:
        if self.lines < self.tile_size or self.pixels < self.tile_size:
            raise ValueError("grid smaller than one tile")
        if self.tile_size < 2:
            raise ValueError("tile size must be >= 2")

    @property
    def tile_rows(self) -> int:
        return self.lines // self.tile_size

    @property
    def tile_cols(self) -> int:
        return self.pixels // self.tile_size

    @property
    def max_tiles(self) -> int:
        return self.tile_rows * self.tile_cols


#: Real 2-km full-disk geometry.
FULL_DISK = GridSpec(lines=5424, pixels=5424, tile_size=128)
#: Test-scale geometry: different tile size than the MODIS mini swath.
MINI_DISK = GridSpec(lines=192, pixels=192, tile_size=24)
