"""Published file contracts for ABI granules (Section V-A discipline).

Same machinery as the MODIS granule contracts in
:mod:`repro.core.contracts`; validated by the ABI instrument's
``load_scene`` at the preprocess stage boundary.
"""

from __future__ import annotations

from repro.core.contracts import FileContract, VariableSpec

__all__ = ["GRANULE_ABI_RADF", "GRANULE_ABI_ACMF"]

GRANULE_ABI_RADF = FileContract(
    name="ABI-L1b-RadF granule",
    required_dimensions=("band", "line", "pixel"),
    variables=(VariableSpec("radiance", "f", ("band", "line", "pixel")),),
    required_attributes=("granule", "product", "acquisition_date", "band_list"),
)

GRANULE_ABI_ACMF = FileContract(
    name="ABI-L2-ACMF granule",
    required_dimensions=("line", "pixel"),
    variables=(
        VariableSpec("cloud_mask", "i", ("line", "pixel"), min_value=0, max_value=1),
        VariableSpec("land_mask", "i", ("line", "pixel"), min_value=0, max_value=1),
        VariableSpec("cloud_optical_thickness", "f", ("line", "pixel"), min_value=0.0),
        VariableSpec("cloud_top_pressure", "f", ("line", "pixel"), min_value=0.0,
                     max_value=1100.0),
        VariableSpec("latitude", "f", ("line", "pixel"), min_value=-90.0,
                     max_value=90.0),
        VariableSpec("longitude", "f", ("line", "pixel"), min_value=-180.0,
                     max_value=180.0),
    ),
    required_attributes=("granule", "product"),
)
