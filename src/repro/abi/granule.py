"""ABI granule identity, GOES-style naming, and full-disk synthesis.

The GOES-R ground segment names files
``OR_<product>-M6_G16_s<YYYYDDDHHMMSST>_c<YYYYDDDHHMMSST>`` (scan
start + creation stamp).  This module implements that naming plus
deterministic synthesis of the two product files a scene needs — the
L1b full-disk radiances and the L2 cloud product.

The latent cloud state reuses the shared scene-synthesis library
(:mod:`repro.modis.synthesis` — regimes, Gaussian random fields, the
frozen synthetic planet), seeded by SHA-256 of ``(seed, scene_key)``
exactly like the MODIS generator, so the same determinism contract
holds: content depends on (date, index, seed) but not on the product,
and the two products of one scan are physically consistent.

Geostationary geometry: the fixed grid is a square raster whose
normalized scan coordinates span [-1, 1]; pixels with
``x^2 + y^2 > 1`` are off-Earth and arrive masked as land (never
selected by ocean-cloud tiling).  Latitude/longitude are a smooth
deterministic function of the scan angles centred on the sub-satellite
longitude.
"""

from __future__ import annotations

import datetime as dt
import hashlib
import re
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.abi.constants import (
    ABI_BANDS,
    GRANULE_MINUTES,
    GRANULES_PER_DAY,
    GridSpec,
    resolve_product,
)
from repro.modis import synthesis
from repro.netcdf import Dataset

__all__ = ["AbiGranuleId", "fixed_grid", "generate_granule", "EPOCH"]

EPOCH = dt.date(2017, 7, 10)  # GOES-16 full-disk ops begin

#: Sub-satellite longitude (GOES-East) and the angular half-width the
#: mini grid maps the disk onto, in degrees.
SUBPOINT_LON = -75.2
DISK_HALF_WIDTH_DEG = 80.0

_FILENAME_RE = re.compile(
    r"^OR_(?P<product>[A-Za-z0-9-]+)-M6_G16"
    r"_s(?P<syear>\d{4})(?P<sdoy>\d{3})(?P<shh>\d{2})(?P<smm>\d{2})\d{3}"
    r"_c\d{14}$"
)


@dataclass(frozen=True, order=True)
class AbiGranuleId:
    """Identity of one 10-minute full-disk scan of one product."""

    product: str
    date: dt.date
    index: int  # 0..143 within the day

    def __post_init__(self) -> None:
        resolve_product(self.product)  # validates
        if not 0 <= self.index < GRANULES_PER_DAY:
            raise ValueError(f"scan index out of range: {self.index}")

    @property
    def hhmm(self) -> str:
        minutes = self.index * GRANULE_MINUTES
        return f"{minutes // 60:02d}{minutes % 60:02d}"

    @property
    def day_of_year(self) -> int:
        return self.date.timetuple().tm_yday

    @property
    def filename(self) -> str:
        # Creation stamp is deterministic: scan start plus a pseudo-
        # random-but-fixed sub-hour latency derived from the key.
        digest = int(hashlib.sha256(self.key.encode()).hexdigest()[:6], 16)
        creation_s = (self.index * GRANULE_MINUTES * 60 + 600 + digest % 1800) % 86400
        creation = (
            f"{self.date.year:04d}{self.day_of_year:03d}"
            f"{creation_s // 3600:02d}{(creation_s % 3600) // 60:02d}"
            f"{creation_s % 60:02d}0"
        )
        return (
            f"OR_{self.product}-M6_G16"
            f"_s{self.date.year:04d}{self.day_of_year:03d}{self.hhmm}000"
            f"_c{creation}"
        )

    @property
    def key(self) -> str:
        """A stable identity string (product + scan time)."""
        return f"{self.product}.{self.date.isoformat()}.{self.index:03d}"

    @property
    def scene_key(self) -> str:
        """Identity of the observed scene (product-independent)."""
        return f"scene.goes16.{self.date.isoformat()}.{self.index:03d}"

    @classmethod
    def parse(cls, filename: str) -> "AbiGranuleId":
        match = _FILENAME_RE.match(filename)
        if match is None:
            raise ValueError(f"not a GOES ABI filename: {filename!r}")
        year = int(match.group("syear"))
        date = dt.date(year, 1, 1) + dt.timedelta(days=int(match.group("sdoy")) - 1)
        index = (int(match.group("shh")) * 60 + int(match.group("smm"))) // GRANULE_MINUTES
        return cls(product=match.group("product"), date=date, index=index)


def _scene_rng(gid: AbiGranuleId, seed: int) -> np.random.Generator:
    digest = hashlib.sha256(f"{seed}:{gid.scene_key}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def _product_rng(gid: AbiGranuleId, seed: int, purpose: str) -> np.random.Generator:
    digest = hashlib.sha256(f"{seed}:{gid.key}:{purpose}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def fixed_grid(grid: GridSpec) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The fixed scan grid: (latitude, longitude, on_disk).

    Normalized scan coordinates span [-1, 1] corner to corner; the
    inscribed unit circle is the Earth disk.  Geolocation is a smooth
    deterministic mapping of the scan angles (adequate for tiling —
    the pipeline only averages it per tile), with off-disk pixels
    clamped to the disk edge so no NaN ever enters a tile.
    """
    y = np.linspace(1.0, -1.0, grid.lines, dtype=np.float64)[:, None]
    x = np.linspace(-1.0, 1.0, grid.pixels, dtype=np.float64)[None, :]
    r2 = x * x + y * y
    on_disk = r2 <= 1.0
    lat = np.broadcast_to(DISK_HALF_WIDTH_DEG * y, (grid.lines, grid.pixels))
    lon = np.broadcast_to(SUBPOINT_LON + DISK_HALF_WIDTH_DEG * x,
                          (grid.lines, grid.pixels))
    lat = np.clip(lat, -90.0, 90.0).astype(np.float32)
    lon = np.clip(lon, -180.0, 180.0).astype(np.float32)
    return np.ascontiguousarray(lat), np.ascontiguousarray(lon), on_disk


def generate_granule(
    gid: AbiGranuleId,
    grid: GridSpec,
    seed: int = 0,
    bands: Optional[Sequence[int]] = None,
) -> Dataset:
    """Materialize one ABI product file as a NetCDF dataset.

    * ``ABI-L1b-RadF``: float32 ``radiance`` (band, line, pixel) for
      the ABI bands (or ``bands``), band list in ``band_list``;
    * ``ABI-L2-ACMF``: the cloud/land masks, cloud optical thickness
      and top pressure, plus the fixed-grid ``latitude``/``longitude``
      (ABI L2 files carry their own geolocation — there is no separate
      geolocation product as with MOD03).
    """
    spec = resolve_product(gid.product)
    lat, lon, on_disk = fixed_grid(grid)
    scene = synthesis.synthesize_scene(
        (grid.lines, grid.pixels), _scene_rng(gid, seed)
    )
    # Land plus everything off the Earth disk: ocean-cloud tiling must
    # never select space pixels.
    land = synthesis.land_mask(lat, lon) | ~on_disk
    cloud = scene.cloud_mask & on_disk

    ds = Dataset()
    ds.create_dimension("line", grid.lines)
    ds.create_dimension("pixel", grid.pixels)
    ds.set_attr("granule", gid.filename)
    ds.set_attr("product", gid.product)
    ds.set_attr("platform", "goes16")
    ds.set_attr("scan_mode", "full_disk")
    ds.set_attr("acquisition_date", gid.date.isoformat())
    ds.set_attr("granule_index", gid.index)
    ds.set_attr("true_regime", scene.regime)

    if spec.short_name == "ABI-L1b-RadF":
        use_bands = tuple(bands) if bands is not None else ABI_BANDS
        ds.create_dimension("band", len(use_bands))
        rng = _product_rng(gid, seed, "radiance")
        tau_norm = np.tanh(scene.tau / 10.0)
        layers = []
        for position, band in enumerate(use_bands):
            # Bright cloud over a darker surface, with per-band offsets
            # so the channels are correlated but not identical; off-disk
            # pixels read as cold space (zero scaled radiance).
            base = 0.08 + 0.05 * position
            image = (
                base
                + 0.08 * land
                + (0.55 + 0.06 * position) * tau_norm * cloud
                + rng.normal(0.0, 0.02, size=(grid.lines, grid.pixels))
            )
            layers.append(np.where(on_disk, image, 0.0).astype(np.float32))
        ds.create_variable(
            "radiance",
            "f4",
            ("band", "line", "pixel"),
            np.stack(layers),
            attributes={"units": "scaled", "long_name": "ABI scaled radiance"},
        )
        ds.set_attr("band_list", np.array(use_bands, dtype=np.int32))
    elif spec.short_name == "ABI-L2-ACMF":
        ds.create_variable(
            "cloud_mask",
            "i1",
            ("line", "pixel"),
            cloud.astype(np.int8),
            attributes={"flag_meanings": "0=clear 1=cloudy"},
        )
        ds.create_variable(
            "land_mask",
            "i1",
            ("line", "pixel"),
            land.astype(np.int8),
            attributes={"flag_meanings": "0=ocean 1=land_or_space"},
        )
        ds.create_variable(
            "cloud_optical_thickness", "f4", ("line", "pixel"),
            np.where(on_disk, scene.tau, 0.0).astype(np.float32),
            attributes={"units": "1"},
        )
        ds.create_variable(
            "cloud_top_pressure", "f4", ("line", "pixel"),
            np.where(on_disk, scene.ctp, 1013.25).astype(np.float32),
            attributes={"units": "hPa"},
        )
        ds.create_variable(
            "latitude", "f4", ("line", "pixel"), lat,
            attributes={"units": "degrees_north"},
        )
        ds.create_variable(
            "longitude", "f4", ("line", "pixel"), lon,
            attributes={"units": "degrees_east"},
        )
    else:  # pragma: no cover - resolve_product already rejects others
        raise ValueError(f"unknown ABI product {gid.product!r}")
    return ds
