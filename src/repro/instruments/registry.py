"""Instrument and label-model registries.

Two flat name → implementation maps with lazy built-in loading: the
built-in packages (``repro.modis``, ``repro.abi``, ``repro.ricc``, the
heuristic classifier next door) register themselves at import time, and
the first lookup imports them.  Laziness matters for layering —
``repro.core`` imports this module at module scope, and the built-ins
import ``repro.core`` helpers (contracts), so eager imports here would
cycle.

Unknown names raise ``KeyError`` listing what is available; the config
layer wraps that into a ``ConfigError`` pointing at the offending key.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.instruments.base import Instrument

__all__ = [
    "register_instrument",
    "register_model",
    "get_instrument",
    "get_model",
    "available_instruments",
    "available_models",
]

_INSTRUMENTS: Dict[str, Instrument] = {}
_MODELS: Dict[str, Any] = {}
_builtins_loaded = False


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    # Importing each module runs its register_* call.  Order is not
    # significant; registration is idempotent (last write wins).
    import repro.abi.instrument  # noqa: F401
    import repro.instruments.heuristic  # noqa: F401
    import repro.modis.instrument  # noqa: F401
    import repro.ricc.model  # noqa: F401


def register_instrument(instrument: Instrument) -> Instrument:
    """Register ``instrument`` under its ``name`` (returns it)."""
    _INSTRUMENTS[instrument.name] = instrument
    return instrument


def register_model(model_type: Any) -> Any:
    """Register a model family under its ``name`` (returns it)."""
    _MODELS[model_type.name] = model_type
    return model_type


def get_instrument(name: str) -> Instrument:
    _ensure_builtins()
    try:
        return _INSTRUMENTS[name]
    except KeyError:
        known = ", ".join(sorted(_INSTRUMENTS))
        raise KeyError(
            f"unknown instrument {name!r} (available: {known})"
        ) from None


def get_model(name: str) -> Any:
    _ensure_builtins()
    try:
        return _MODELS[name]
    except KeyError:
        known = ", ".join(sorted(_MODELS))
        raise KeyError(f"unknown model {name!r} (available: {known})") from None


def available_instruments() -> Tuple[str, ...]:
    _ensure_builtins()
    return tuple(sorted(_INSTRUMENTS))


def available_models() -> Tuple[str, ...]:
    _ensure_builtins()
    return tuple(sorted(_MODELS))
