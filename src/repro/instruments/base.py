"""The instrument / label-model interfaces — the pluggability seam.

The paper's pipeline is written against one instrument (MODIS via
LAADS) and one model (RICC).  This module defines the two small
contracts that let anything else flow through the same five stages:

* :class:`Instrument` — everything stage 1 (download) and stage 3
  (preprocess) need to know about a satellite source: how granules are
  named and paced, which products make up a complete scene, how to
  build the (synthetic) archive, and how to decode one scene's granule
  files into the arrays tiling consumes.
* A **label model type** (duck-typed, see :class:`ModelType` for the
  shape) — how stage 2 (model) bootstraps or loads a classifier and
  what attribution string its labels carry.  Model *instances* expose
  ``assign(tiles) -> labels``, ``num_classes`` and ``save(path)``.

``repro.core`` imports only this module and the registry next door —
never an instrument package directly (``tools/check_layering.py``
enforces it), so adding a source or a classifier never touches the
pipeline.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "OCEAN_CLOUD_THRESHOLD",
    "SceneInputs",
    "Instrument",
    "ModelType",
]

# Paper constant: a tile must be >30 % cloudy (over ocean) to enter the
# corpus.  It lives here — not inside any one instrument — because the
# preprocess stage applies the same physical criterion to every source.
OCEAN_CLOUD_THRESHOLD = 0.30


@dataclass
class SceneInputs:
    """One scene's granule files decoded into tiling-ready arrays.

    This is the hand-off between an :class:`Instrument` and the generic
    ``extract_tiles`` kernel: every array is on the instrument's native
    pixel grid, masks are boolean, and geometry differences (polar
    swath vs. geostationary full disk) are already absorbed — off-disk
    or otherwise invalid pixels arrive masked as land so the ocean-only
    tile selection never sees them.
    """

    radiance: np.ndarray                  # (bands, lines, pixels) float32
    cloud_mask: np.ndarray                # (lines, pixels) bool
    land_mask: np.ndarray                 # (lines, pixels) bool
    latitude: np.ndarray                  # (lines, pixels) float32
    longitude: np.ndarray                 # (lines, pixels) float32
    optical_thickness: Optional[np.ndarray] = None
    cloud_top_pressure: Optional[np.ndarray] = None
    attrs: Dict[str, str] = field(default_factory=dict)


class Instrument(abc.ABC):
    """A satellite data source the five-stage pipeline can drive.

    Class attributes describe the static geometry and cadence; the
    three methods cover the pipeline's touch points: product-name
    resolution (config validation), archive construction (download),
    and scene decoding (preprocess).
    """

    #: registry key, also the branch tag in fan-out plans
    name: str
    #: human-readable source description
    title: str
    #: circuit-breaker host key for download retries
    archive_host: str
    #: the products that make up one complete scene
    default_products: Tuple[str, ...]
    #: granules per product per day (cadence)
    granules_per_day: int
    #: minutes between consecutive granules
    cadence_minutes: int
    #: native tile edge length for this instrument's pixel grid
    default_tile_size: int

    @abc.abstractmethod
    def resolve_product(self, name: str) -> str:
        """Canonical short name for ``name`` (aliases accepted).

        Raises ``KeyError`` naming the known products when ``name``
        is not one of this instrument's products.
        """

    @abc.abstractmethod
    def build_archive(self, seed: int = 0) -> Any:
        """The synthetic archive for this source.

        The returned object must provide ``query(product, start, end,
        max_per_day)`` yielding refs with ``.filename``/``.gid`` and
        ``fetch(ref, bands=None)`` returning a dataset — the surface
        ``DownloadStage`` and ``ChaosArchive`` consume.
        """

    @abc.abstractmethod
    def load_scene(self, granules: Any) -> SceneInputs:
        """Decode one complete scene (a ``GranuleSet``) for tiling.

        ``granules`` provides ``path_for(family)`` and ``key``; the
        instrument validates its own file contracts here.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<Instrument {self.name}: {self.title}>"


class ModelType(abc.ABC):
    """A registered label-model family (documentation of the shape).

    Registration is duck-typed — any object with these attributes
    works — but built-ins subclass this for clarity.  Instances
    returned by :meth:`bootstrap`/:meth:`load` must expose
    ``assign(tiles) -> labels``, ``num_classes``, and ``save(path)``,
    and must be picklable (they ride worker-pool envelopes).
    """

    #: registry key, also the branch tag in fan-out plans
    name: str
    #: provenance string stamped on labelled files (``classified_by``)
    attribution: str

    @staticmethod
    @abc.abstractmethod
    def bootstrap(tiles: np.ndarray, num_classes: int, seed: int = 0) -> Any:
        """Train a fresh instance on bootstrap tiles."""

    @staticmethod
    @abc.abstractmethod
    def load(path: str) -> Any:
        """Reload a persisted instance from ``path`` (an ``.npz``)."""
