"""Pluggable instruments and label models (interfaces + registry).

See :mod:`repro.instruments.base` for the contracts and
:mod:`repro.instruments.registry` for the name → implementation maps.
Built-ins: instruments ``modis`` (polar swath, 5-min cadence) and
``abi`` (geostationary full disk, 10-min cadence); models ``ricc``
(the AICCA autoencoder+clustering pipeline) and ``heuristic`` (the
quantile threshold baseline).
"""

from repro.instruments.base import (
    OCEAN_CLOUD_THRESHOLD,
    Instrument,
    ModelType,
    SceneInputs,
)
from repro.instruments.registry import (
    available_instruments,
    available_models,
    get_instrument,
    get_model,
    register_instrument,
    register_model,
)

__all__ = [
    "OCEAN_CLOUD_THRESHOLD",
    "Instrument",
    "ModelType",
    "SceneInputs",
    "available_instruments",
    "available_models",
    "get_instrument",
    "get_model",
    "register_instrument",
    "register_model",
]
