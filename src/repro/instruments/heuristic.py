"""The heuristic threshold classifier — the second registered model.

A deliberately cheap baseline next to RICC: each tile is summarised by
the mean and standard deviation of its radiances, both statistics are
binned against quantile edges fitted on the bootstrap tiles, and the
(mean-bin, std-bin) pair indexes a class.  Deterministic, trains in
microseconds, persists as a tiny ``.npz`` — exactly what an ensemble
or comparison branch wants riding next to the real model, and a useful
pipeline-plumbing probe (if *this* model's labels drift across
drivers, the bug is in the plan, not the classifier).
"""

from __future__ import annotations

import numpy as np

from repro.instruments.registry import register_model

__all__ = ["ThresholdModel", "HeuristicModelType"]


def _tile_stats(tiles: np.ndarray) -> tuple:
    """Per-tile (mean, std) over all pixels and bands, float64."""
    flat = np.asarray(tiles, dtype=np.float64).reshape(tiles.shape[0], -1)
    return flat.mean(axis=1), flat.std(axis=1)


class ThresholdModel:
    """Quantile-binned mean/std classifier.

    ``num_classes`` is an upper bound: the grid has
    ``ceil(sqrt(C)) x ceil(C / ceil(sqrt(C)))`` cells and any overflow
    cell folds into the last class.
    """

    attribution = "heuristic/threshold"

    def __init__(
        self,
        mean_edges: np.ndarray,
        std_edges: np.ndarray,
        num_classes: int,
    ):
        self.mean_edges = np.asarray(mean_edges, dtype=np.float64)
        self.std_edges = np.asarray(std_edges, dtype=np.float64)
        self._num_classes = int(num_classes)

    @property
    def num_classes(self) -> int:
        return self._num_classes

    def assign(self, tiles: np.ndarray) -> np.ndarray:
        means, stds = _tile_stats(tiles)
        mean_bin = np.searchsorted(self.mean_edges, means, side="right")
        std_bin = np.searchsorted(self.std_edges, stds, side="right")
        n_std = len(self.std_edges) + 1
        labels = mean_bin * n_std + std_bin
        return np.minimum(labels, self._num_classes - 1).astype(np.int32)

    def assign_with_margin(self, tiles: np.ndarray) -> tuple:
        """Labels plus each tile's distance to its nearest bin edge.

        A tile whose mean or std sits right on a quantile edge flips
        class under the slightest perturbation — the analogue of the
        centroid-gap margin the progressive-fidelity pass thresholds.
        With no edges at all (one bin per statistic) margins are
        infinite.
        """
        labels = self.assign(tiles)
        means, stds = _tile_stats(tiles)
        margin = np.full(means.shape[0], np.inf)
        if self.mean_edges.size:
            margin = np.minimum(
                margin,
                np.abs(means[:, None] - self.mean_edges[None, :]).min(axis=1),
            )
        if self.std_edges.size:
            margin = np.minimum(
                margin,
                np.abs(stds[:, None] - self.std_edges[None, :]).min(axis=1),
            )
        return labels, margin

    def save(self, path: str) -> None:
        np.savez(
            path,
            family=np.array("threshold"),
            mean_edges=self.mean_edges,
            std_edges=self.std_edges,
            num_classes=np.array(self._num_classes, dtype=np.int64),
        )

    @classmethod
    def load(cls, path: str) -> "ThresholdModel":
        with np.load(path, allow_pickle=False) as data:
            if str(data["family"]) != "threshold":
                raise ValueError(
                    f"{path} is not a threshold model "
                    f"(family={data['family']!r})"
                )
            return cls(
                mean_edges=data["mean_edges"],
                std_edges=data["std_edges"],
                num_classes=int(data["num_classes"]),
            )

    @classmethod
    def fit(
        cls, tiles: np.ndarray, num_classes: int, seed: int = 0
    ) -> "ThresholdModel":
        """Quantile edges from the bootstrap tiles (seed is unused —
        the fit is fully deterministic — but kept for interface
        symmetry with stochastic models)."""
        del seed
        means, stds = _tile_stats(tiles)
        n_mean = int(np.ceil(np.sqrt(num_classes)))
        n_std = int(np.ceil(num_classes / n_mean))
        mean_edges = np.quantile(means, np.linspace(0.0, 1.0, n_mean + 1)[1:-1])
        std_edges = np.quantile(stds, np.linspace(0.0, 1.0, n_std + 1)[1:-1])
        return cls(mean_edges, std_edges, num_classes)


class HeuristicModelType:
    """Registry entry for the threshold classifier."""

    name = "heuristic"
    attribution = ThresholdModel.attribution
    bootstrap = staticmethod(ThresholdModel.fit)
    load = staticmethod(ThresholdModel.load)


register_model(HeuristicModelType)
