"""Tile extraction and ocean-cloud selection (the preprocessing kernel).

Implements Section III stage 2: subdivide each (bands, lines, pixels)
swath into non-overlapping ``tile_size``-square tiles, fuse the MOD03
geolocation and MOD06 cloud/land masks, and keep only *ocean-cloud*
tiles — no land pixels, cloud fraction above the threshold ("> 30% cloud
pixels over only ocean regions", Section II-B).

The extraction is *selection-first*: the cloud/land selection masks are
computed from zero-copy reshape views, and only the tiles that pass
selection are ever gathered into fresh arrays.  The full-swath
(rows, cols, tile, tile, bands) cube is never materialized, and the
per-tile tau/ctp/lat/lon reductions run as masked batched sums rather
than a Python loop — both matter at paper scale (2030x1354 swaths),
where selection typically keeps a small fraction of the grid.

This module is also the home of the **fidelity ladder**: with
``coarse_stride > 1`` the selected tiles are degraded by within-tile
subsampling (stride then nearest-neighbour repeat), keeping the tile
shape — and therefore every downstream model — unchanged while cutting
the information content.  Selection and the per-tile physical metadata
are always computed from the full-resolution fields, so the *set* of
tiles is identical at every fidelity; only the radiance cube degrades.
The inference stage re-extracts full-fidelity tiles for the positions
whose classifier margin is too thin (``inference.refine_threshold``).

It lives under ``repro.instruments`` (below ``repro.core`` in the
layering) because instruments and the refinement path both need it
without reaching up into the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.instruments.base import OCEAN_CLOUD_THRESHOLD
from repro.netcdf import Dataset

__all__ = [
    "FIDELITY_FULL",
    "FIDELITY_COARSE",
    "Tile",
    "coarsen_tile_data",
    "extract_tiles",
    "tiles_to_dataset",
    "dataset_to_tiles",
]

# The two rungs of the progressive-fidelity ladder.
FIDELITY_FULL = "full"
FIDELITY_COARSE = "coarse"


@dataclass
class Tile:
    """One ocean-cloud tile with its AICCA-relevant metadata."""

    data: np.ndarray          # (tile, tile, bands) float32
    row: int                  # tile-grid position within the swath
    col: int
    latitude: float           # tile-center geolocation
    longitude: float
    cloud_fraction: float
    mean_optical_thickness: float
    mean_cloud_top_pressure: float
    source: str = ""          # granule key
    label: Optional[int] = None
    extra: Dict[str, float] = field(default_factory=dict)


def _tile_view(field_2d: np.ndarray, tile: int) -> np.ndarray:
    """(lines, pixels) -> (rows, cols, tile, tile) by reshape (no copy)."""
    rows = field_2d.shape[0] // tile
    cols = field_2d.shape[1] // tile
    trimmed = field_2d[: rows * tile, : cols * tile]
    return trimmed.reshape(rows, tile, cols, tile).swapaxes(1, 2)


def coarsen_tile_data(data: np.ndarray, stride: int) -> np.ndarray:
    """Degrade tile radiances by subsample-and-repeat, preserving shape.

    ``data`` is ``(..., tile, tile, bands)``; every ``stride``-th pixel
    is kept and repeated back over its block, so a coarse tile carries
    ``1/stride**2`` of the information in exactly the full-fidelity
    layout.  ``stride`` must divide the tile edge (config validation
    enforces it), so the repeat reproduces the shape exactly.
    """
    if stride <= 1:
        return data
    edge = data.shape[-2]
    if edge % stride:
        raise ValueError(f"coarse stride {stride} does not divide tile edge {edge}")
    sub = data[..., ::stride, ::stride, :]
    return np.repeat(np.repeat(sub, stride, axis=-3), stride, axis=-2)


def extract_tiles(
    radiance: np.ndarray,
    cloud_mask: np.ndarray,
    land_mask: np.ndarray,
    latitude: np.ndarray,
    longitude: np.ndarray,
    tile_size: int,
    optical_thickness: Optional[np.ndarray] = None,
    cloud_top_pressure: Optional[np.ndarray] = None,
    cloud_threshold: float = OCEAN_CLOUD_THRESHOLD,
    max_land_fraction: float = 0.0,
    source: str = "",
    coarse_stride: int = 1,
    only_positions: Optional[Sequence[Tuple[int, int]]] = None,
) -> List[Tile]:
    """Cut one swath into selected ocean-cloud tiles.

    ``radiance`` is (bands, lines, pixels); the 2-D fields share
    (lines, pixels).  Selection: tile land fraction <= ``max_land_fraction``
    (0 = the paper's "exclusively ... ocean") and cloud fraction >
    ``cloud_threshold``.  Returns tiles in row-major grid order.

    ``coarse_stride > 1`` emits the coarse rung of the fidelity ladder:
    the same tiles, radiances degraded by :func:`coarsen_tile_data`.
    ``only_positions`` restricts the output to the given (row, col) grid
    positions — the refinement path re-extracts exactly the low-margin
    tiles at full fidelity without paying for the rest of the swath.
    """
    if radiance.ndim != 3:
        raise ValueError(f"radiance must be (bands, lines, pixels); got {radiance.shape}")
    bands, lines, pixels = radiance.shape
    for name, fld in (
        ("cloud_mask", cloud_mask),
        ("land_mask", land_mask),
        ("latitude", latitude),
        ("longitude", longitude),
    ):
        if fld.shape != (lines, pixels):
            raise ValueError(f"{name} shaped {fld.shape}, expected {(lines, pixels)}")
    if tile_size < 2 or tile_size > min(lines, pixels):
        raise ValueError(f"tile size {tile_size} incompatible with swath {lines}x{pixels}")
    if not 0.0 <= cloud_threshold <= 1.0:
        raise ValueError("cloud threshold must be in [0, 1]")
    if coarse_stride > 1 and tile_size % coarse_stride:
        raise ValueError(
            f"coarse stride {coarse_stride} does not divide tile size {tile_size}"
        )

    cloud_tiles = _tile_view(cloud_mask.astype(np.float32), tile_size)
    land_tiles = _tile_view(land_mask.astype(np.float32), tile_size)
    cloud_frac = cloud_tiles.mean(axis=(2, 3))
    land_frac = land_tiles.mean(axis=(2, 3))
    selected = (land_frac <= max_land_fraction + 1e-12) & (cloud_frac > cloud_threshold)
    if only_positions is not None:
        wanted = np.zeros_like(selected)
        for row, col in only_positions:
            if 0 <= row < wanted.shape[0] and 0 <= col < wanted.shape[1]:
                wanted[row, col] = True
        selected &= wanted

    sel_rows, sel_cols = np.nonzero(selected)
    if sel_rows.size == 0:
        return []

    # Gather *only* the selected tiles.  _tile_view is a zero-copy view,
    # so the fancy index below copies just the survivors, one band at a
    # time — never the (rows, cols, tile, tile, bands) full-swath cube.
    sel_data = np.stack(
        [_tile_view(radiance[b], tile_size)[sel_rows, sel_cols] for b in range(bands)],
        axis=-1,
    ).astype(np.float32, copy=False)  # (n_selected, tile, tile, bands)
    if coarse_stride > 1:
        sel_data = np.ascontiguousarray(coarsen_tile_data(sel_data, coarse_stride))

    lat_mean = _tile_view(latitude.astype(np.float64), tile_size)[sel_rows, sel_cols].mean(
        axis=(1, 2)
    )
    lon_mean = _tile_view(longitude.astype(np.float64), tile_size)[sel_rows, sel_cols].mean(
        axis=(1, 2)
    )

    # MOD06 means over cloudy pixels only, as masked batched sums.  A
    # selected tile always has cloud_frac > threshold >= 0, so the count
    # is positive; the guard keeps a clean NaN if that ever changes.
    cloudy = cloud_tiles[sel_rows, sel_cols] > 0.5  # (n_selected, tile, tile)
    cloudy_counts = cloudy.sum(axis=(1, 2))
    safe_counts = np.maximum(cloudy_counts, 1)

    def _cloudy_mean(field_2d: Optional[np.ndarray]) -> np.ndarray:
        if field_2d is None:
            return np.full(sel_rows.size, np.nan)
        gathered = _tile_view(field_2d.astype(np.float64), tile_size)[sel_rows, sel_cols]
        sums = np.where(cloudy, gathered, 0.0).sum(axis=(1, 2))
        return np.where(cloudy_counts > 0, sums / safe_counts, np.nan)

    mean_tau = _cloudy_mean(optical_thickness)
    mean_ctp = _cloudy_mean(cloud_top_pressure)
    sel_cloud_frac = cloud_frac[sel_rows, sel_cols]

    return [
        Tile(
            data=sel_data[index],
            row=row,
            col=col,
            latitude=lat,
            longitude=lon,
            cloud_fraction=frac,
            mean_optical_thickness=tau,
            mean_cloud_top_pressure=ctp,
            source=source,
        )
        for index, (row, col, lat, lon, frac, tau, ctp) in enumerate(
            zip(
                sel_rows.tolist(),
                sel_cols.tolist(),
                lat_mean.tolist(),
                lon_mean.tolist(),
                sel_cloud_frac.tolist(),
                mean_tau.tolist(),
                mean_ctp.tolist(),
            )
        )
    ]


def tiles_to_dataset(
    tiles: List[Tile],
    source: str = "",
    fidelity: Optional[str] = None,
    coarse_stride: int = 1,
    source_files: Optional[Dict[str, str]] = None,
) -> Dataset:
    """Pack tiles into the workflow's NetCDF tile-file layout.

    Record dimension ``tile``; per-tile radiance cube plus the metadata
    AICCA derives from MOD06.  Labels (when present) are stored as int32
    with -1 meaning "not yet classified" — the inference stage appends
    real labels in place of that placeholder.

    The fidelity attributes (``fidelity``, ``coarse_stride``,
    ``source_files``) are stamped only when a fidelity is declared, so a
    classic full-fidelity run stays byte-identical to the golden corpus.
    ``source_files`` (product -> path) lets the refinement path reopen
    the scene a coarse tile file came from.
    """
    if not tiles:
        raise ValueError("cannot build a dataset from zero tiles")
    shape = tiles[0].data.shape
    if any(tile.data.shape != shape for tile in tiles):
        raise ValueError("tiles have inconsistent shapes")
    ds = Dataset()
    ds.create_dimension("tile", None)
    ds.create_dimension("y", shape[0])
    ds.create_dimension("x", shape[1])
    ds.create_dimension("band", shape[2])
    stack = np.stack([tile.data for tile in tiles]).astype(np.float32, copy=False)
    ds.create_variable("radiance", "f4", ("tile", "y", "x", "band"), stack,
                       attributes={"long_name": "ocean-cloud tile radiances"})
    ds.create_variable(
        "latitude", "f4", ("tile",), np.array([t.latitude for t in tiles], dtype=np.float32),
        attributes={"units": "degrees_north"},
    )
    ds.create_variable(
        "longitude", "f4", ("tile",), np.array([t.longitude for t in tiles], dtype=np.float32),
        attributes={"units": "degrees_east"},
    )
    ds.create_variable(
        "cloud_fraction", "f4", ("tile",),
        np.array([t.cloud_fraction for t in tiles], dtype=np.float32),
    )
    ds.create_variable(
        "mean_optical_thickness", "f4", ("tile",),
        np.array([t.mean_optical_thickness for t in tiles], dtype=np.float32),
    )
    ds.create_variable(
        "mean_cloud_top_pressure", "f4", ("tile",),
        np.array([t.mean_cloud_top_pressure for t in tiles], dtype=np.float32),
        attributes={"units": "hPa"},
    )
    ds.create_variable(
        "tile_row", "i4", ("tile",), np.array([t.row for t in tiles], dtype=np.int32)
    )
    ds.create_variable(
        "tile_col", "i4", ("tile",), np.array([t.col for t in tiles], dtype=np.int32)
    )
    labels = np.array(
        [t.label if t.label is not None else -1 for t in tiles], dtype=np.int32
    )
    ds.create_variable(
        "label", "i4", ("tile",), labels,
        attributes={"long_name": "AICCA cloud class", "missing_value": -1},
    )
    ds.set_attr("source_granule", source or (tiles[0].source or "unknown"))
    ds.set_attr("num_tiles", len(tiles))
    if fidelity is not None:
        ds.set_attr("fidelity", fidelity)
        ds.set_attr("coarse_stride", int(coarse_stride))
        if source_files:
            ds.set_attr(
                "source_files",
                ";".join(f"{k}={v}" for k, v in sorted(source_files.items())),
            )
    return ds


def dataset_to_tiles(ds: Dataset) -> List[Tile]:
    """Rebuild Tile objects from a tile-file dataset.

    The per-tile variables are decoded once (one byte-order conversion
    for the whole radiance cube, one ``tolist`` per metadata column)
    instead of re-indexing each record variable inside the loop.
    """
    radiance = np.asarray(ds["radiance"].data, dtype=np.float32)
    n = radiance.shape[0]
    labels = ds["label"].data if "label" in ds else np.full(n, -1, dtype=np.int32)
    source = ds.get_attr("source_granule", "")
    if not isinstance(source, str):
        source = ""
    rows = ds["tile_row"].data.tolist()
    cols = ds["tile_col"].data.tolist()
    lats = ds["latitude"].data.tolist()
    lons = ds["longitude"].data.tolist()
    fracs = ds["cloud_fraction"].data.tolist()
    taus = ds["mean_optical_thickness"].data.tolist()
    ctps = ds["mean_cloud_top_pressure"].data.tolist()
    return [
        Tile(
            data=radiance[index],
            row=int(rows[index]),
            col=int(cols[index]),
            latitude=float(lats[index]),
            longitude=float(lons[index]),
            cloud_fraction=float(fracs[index]),
            mean_optical_thickness=float(taus[index]),
            mean_cloud_top_pressure=float(ctps[index]),
            source=source,
            label=None if label < 0 else label,
        )
        for index, label in enumerate(np.asarray(labels).tolist())
    ]
