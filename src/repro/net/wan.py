"""Site-to-site WAN links for the multi-facility transfer path.

Globus Transfer moves labelled NetCDFs from Defiant to Frontier's Orion
filesystem (Section III, stage 5).  Within OLCF that path rides the
facility fabric; between facilities it rides ESnet.  :class:`WanLink`
models one such pipe: shared bandwidth, propagation latency, and a
per-stream ceiling (GridFTP-style parallel streams raise the per-transfer
share).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim import Event, FluidPipe, Simulation

__all__ = ["WanLink"]


class WanLink:
    """A directed wide-area link between two named sites."""

    def __init__(
        self,
        sim: Simulation,
        src: str,
        dst: str,
        bandwidth: float,
        latency: float = 0.010,
        per_stream_bw: Optional[float] = None,
    ):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.latency = latency
        self.per_stream_bw = per_stream_bw
        self.pipe = FluidPipe(sim, capacity=bandwidth, per_flow_cap=per_stream_bw)

    @property
    def key(self) -> tuple:
        return (self.src, self.dst)

    def send(self, nbytes: int, streams: int = 1) -> Event:
        """Move ``nbytes`` using ``streams`` parallel flows.

        Returns an event firing when the last stream completes; its value
        is the elapsed transfer time.
        """
        if streams < 1:
            raise ValueError("need at least one stream")
        if nbytes < 0:
            raise ValueError("size must be non-negative")
        done = self.sim.event()
        started = self.sim.now
        per_stream = float(nbytes) / streams

        def body() -> Generator:
            yield self.sim.timeout(self.latency)
            flows = [self.pipe.transfer(per_stream) for _ in range(streams)]
            yield self.sim.all_of(flows)
            done.succeed(self.sim.now - started)

        self.sim.process(body(), name=f"wan-{self.src}-{self.dst}")
        return done
