"""An HTTPS file-server model (the LAADS DAAC download path).

Three effects shape the paper's Fig. 3 (download speed vs product size for
3 vs 6 workers):

* **per-request overhead** — TLS + HTTP + catalog round trips dominate
  small files, so single-file downloads see no benefit from more workers;
* **per-connection ceiling** — one HTTPS stream tops out well below the
  WAN capacity (TCP window / server throttling), so adding workers adds
  aggregate bandwidth...
* **shared WAN capacity** — ...until the workers saturate the effective
  site-to-site share, which is why 6 workers gain only a few MB/s over 3.

:class:`HttpServer` composes all three on a :class:`FluidPipe`.

This module also owns the control plane's **wire phase taxonomy**:
every HTTP exchange between a facility and the central service belongs
to one of :data:`PHASES`, and :func:`classify_phase` maps a concrete
``(method, path)`` onto it.  The taxonomy is the shared vocabulary of
the per-endpoint retry budgets in :class:`~repro.server.client.
ControlPlaneClient` and the wire-level fault injector
(:class:`~repro.chaos.surfaces.ChaosTransport`): a fault plan says
"sever the link at the *heartbeat* phase" in the same words the client
uses to decide how hard that request may be retried.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.net.retry import BackoffPolicy, BreakerOpen, CircuitBreaker
from repro.sim import Event, FluidPipe, Simulation
from repro.util.logging import EventLog

__all__ = [
    "HttpServer", "DownloadResult", "HttpError", "retrying_request",
    "PHASES", "classify_phase",
]

# The agent/server interaction phases of the control-plane protocol.
# ``submit``/``status``/``control`` are the operator's phases; ``lease``
# ``heartbeat``/``complete``/``reconcile`` are the agent's; ``health``/
# ``metrics`` are probes.  ``other`` catches unrouted paths.
PHASES = (
    "submit", "status", "control",
    "lease", "heartbeat", "complete", "reconcile",
    "health", "metrics", "other",
)


def classify_phase(method: str, path: str) -> str:
    """Map one control-plane request onto its protocol phase."""
    path = path.rstrip("/")
    if path == "/v1/health":
        return "health"
    if path == "/v1/metrics":
        return "metrics"
    if path == "/v1/lease":
        return "lease"
    if path.startswith("/v1/lease/"):
        if path.endswith("/heartbeat"):
            return "heartbeat"
        if path.endswith("/complete"):
            return "complete"
        return "other"
    if path == "/v1/reconcile":
        return "reconcile"
    if path == "/v1/runs":
        return "submit" if method.upper() == "POST" else "status"
    if path.startswith("/v1/runs/"):
        if path.endswith(("/pause", "/resume", "/retry")):
            return "control"
        return "status"
    return "other"


class HttpError(RuntimeError):
    """A request failed server-side (5xx / dropped connection)."""


class DownloadResult:
    """Timing record for one completed request."""

    __slots__ = ("nbytes", "started_at", "finished_at")

    def __init__(self, nbytes: int, started_at: float, finished_at: float):
        self.nbytes = nbytes
        self.started_at = started_at
        self.finished_at = finished_at

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def mean_rate(self) -> float:
        return self.nbytes / self.duration if self.duration > 0 else float("inf")


class HttpServer:
    """A remote HTTPS archive endpoint with shared egress bandwidth.

    Defaults approximate a well-connected public archive reached from a
    DOE site: ~8 MB/s per HTTPS stream, ~30 MB/s effective per-user WAN
    share, ~2 s of request setup (matching the magnitudes behind Fig. 3's
    5-25 MB/s observed speeds).
    """

    def __init__(
        self,
        sim: Simulation,
        name: str = "laads",
        wan_bandwidth: float = 30e6,
        per_connection_bw: float = 8e6,
        request_overhead: float = 2.0,
        failure_rate: float = 0.0,
        seed: int = 0,
        log: Optional[EventLog] = None,
    ):
        if request_overhead < 0:
            raise ValueError("request overhead must be non-negative")
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError("failure rate must be in [0, 1)")
        self.sim = sim
        self.name = name
        self.pipe = FluidPipe(sim, capacity=wan_bandwidth, per_flow_cap=per_connection_bw)
        self.request_overhead = request_overhead
        self.failure_rate = failure_rate
        self._rng = np.random.default_rng(seed)
        self.log = log or EventLog()
        self.requests_served = 0
        self.requests_failed = 0

    def request(self, nbytes: int, label: str = "") -> Event:
        """Issue one GET; the returned event fires with a DownloadResult."""
        if nbytes < 0:
            raise ValueError("request size must be non-negative")
        done = self.sim.event()
        started = self.sim.now

        def body() -> Generator:
            yield self.sim.timeout(self.request_overhead)
            if self.failure_rate > 0 and self._rng.uniform() < self.failure_rate:
                # Connection dropped partway: the time is spent, the bytes
                # are not delivered.
                yield self.pipe.transfer(float(nbytes) * float(self._rng.uniform(0.05, 0.6)))
                self.requests_failed += 1
                self.log.emit(self.sim.now, self.name, "failed", label=label, nbytes=nbytes)
                done.fail(HttpError(f"connection dropped serving {label or nbytes}"))
                return
            yield self.pipe.transfer(float(nbytes))
            self.requests_served += 1
            result = DownloadResult(nbytes, started, self.sim.now)
            self.log.emit(
                self.sim.now, self.name, "served",
                label=label, nbytes=nbytes, seconds=round(result.duration, 3),
            )
            done.succeed(result)

        self.sim.process(body(), name=f"http-{label or nbytes}")
        return done

    @property
    def active_connections(self) -> int:
        return self.pipe.active_flows


def retrying_request(
    server: HttpServer,
    nbytes: int,
    policy: Optional[BackoffPolicy] = None,
    label: str = "",
    breaker: Optional[CircuitBreaker] = None,
    max_attempts: int = 8,
) -> Generator:
    """A sub-process retrying one GET with backoff and an optional breaker.

    Use from a simulation process via ``result = yield from
    retrying_request(...)``; sleeps are simulated time.  Raises the last
    :class:`HttpError` once ``max_attempts`` are spent, or
    :class:`~repro.net.retry.BreakerOpen` if the circuit never admits the
    request.  Pass a breaker built with ``clock=lambda: sim.now`` so its
    reset window follows the simulation clock.
    """
    if max_attempts < 1:
        raise ValueError("need at least one attempt")
    policy = policy or BackoffPolicy()
    host = server.name
    attempt = 0
    while True:
        if breaker is not None and not breaker.allow(host):
            attempt += 1
            if attempt >= max_attempts:
                raise BreakerOpen(f"circuit open for host {host!r}")
            yield server.sim.timeout(max(policy.cap(attempt), 1e-3))
            continue
        try:
            result = yield server.request(nbytes, label=label)
        except HttpError:
            if breaker is not None:
                breaker.record_failure(host)
            attempt += 1
            if attempt >= max_attempts:
                raise
            yield server.sim.timeout(policy.delay(attempt - 1, key=label or host))
            continue
        if breaker is not None:
            breaker.record_success(host)
        return result
