"""Retry primitives for flaky remote endpoints: backoff + circuit breaker.

The paper's operational reality (Section III) includes LAADS 503s, slow
Slurm nodes, and WAN degradation between Defiant and Frontier.  Naive
immediate retries turn a transient archive hiccup into a retry storm;
this module provides the two standard defenses:

* :class:`BackoffPolicy` — capped exponential backoff with deterministic
  jitter.  Delay sequences are derived from SHA-256 of (seed, key,
  attempt), so a fixed seed reproduces the exact schedule — the same
  determinism discipline the rest of the codebase uses (docs/architecture
  "Determinism") — while distinct keys decorrelate, preventing
  synchronized thundering herds.
* :class:`CircuitBreaker` — per-host failure accounting with the classic
  closed / open / half-open state machine, so a persistently failing
  endpoint is probed instead of hammered.

Both are clock-agnostic: the breaker takes an injectable ``clock`` and
the policy only *computes* delays (callers decide how to sleep), so the
same objects serve the real wall-clock path and the simulated one.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, Iterator, Callable, List

import time

__all__ = [
    "BackoffPolicy",
    "CircuitBreaker",
    "BreakerOpen",
    "EndpointPolicy",
    "ENDPOINT_POLICIES",
    "RetryExhausted",
    "retry_call",
]


def _unit_interval(seed: int, key: str, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) from (seed, key, attempt)."""
    digest = hashlib.sha256(f"{seed}:backoff:{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "little") / 2**64


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with deterministic jitter.

    The *cap* for attempt ``k`` is ``min(max_delay, base * factor**k)``
    — monotone non-decreasing in ``k``.  The actual delay is drawn
    deterministically in ``[(1 - jitter) * cap, cap]``.  ``max_total``
    bounds the cumulative sleep of any schedule: :meth:`schedule` clips
    the last delay and stops once the budget is exhausted.

    With ``full_jitter=True`` the delay is instead drawn over the whole
    ``[0, cap]`` interval (AWS "full jitter").  That is the right shape
    when a *fleet* retries against one endpoint — e.g. every site agent
    reconnecting the moment a network partition heals: partial jitter
    keeps the fleet clustered near the cap and the healed server eats a
    thundering herd, while full jitter spreads the reconnects across the
    whole window.  Determinism is unchanged — the draw is still a hash
    of (seed, key, attempt), so distinct agent keys decorrelate while a
    fixed seed reproduces the exact schedule.
    """

    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 5.0
    max_total: float = 30.0
    jitter: float = 0.5
    seed: int = 0
    full_jitter: bool = False

    def __post_init__(self) -> None:
        if self.base < 0 or self.factor < 1.0:
            raise ValueError("base must be >= 0 and factor >= 1")
        if self.max_delay < 0 or self.max_total < 0:
            raise ValueError("delay bounds must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def cap(self, attempt: int) -> float:
        """The upper bound of the delay for ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(self.max_delay, self.base * self.factor**attempt)

    def delay(self, attempt: int, key: str = "") -> float:
        """The deterministic jittered delay for one attempt."""
        cap = self.cap(attempt)
        if self.full_jitter:
            return cap * _unit_interval(self.seed, key, attempt)
        if self.jitter == 0.0:
            return cap
        return cap * (1.0 - self.jitter * _unit_interval(self.seed, key, attempt))

    def delays(self, key: str = "") -> Iterator[float]:
        """Yield delays until the ``max_total`` sleep budget is spent."""
        total = 0.0
        attempt = 0
        while total < self.max_total:
            step = min(self.delay(attempt, key), self.max_total - total)
            total += step
            attempt += 1
            yield step

    def schedule(self, key: str = "", attempts: int = 8) -> List[float]:
        """The first ``attempts`` delays (fewer if the budget runs out)."""
        out: List[float] = []
        for step in self.delays(key):
            out.append(step)
            if len(out) >= attempts:
                break
        return out


@dataclass(frozen=True)
class EndpointPolicy:
    """The retry/timeout budget for one control-plane protocol phase.

    Retrying a request is only safe when re-applying it cannot change
    state: either the endpoint is **idempotent** (GETs, heartbeat
    extension, reconcile replay) or the caller holds a justification —
    a dedupe key the server replays (submit, lease) or a fencing token
    the server checks (complete).  ``idempotent=False`` means the client
    grants ZERO retries unless such a token accompanies the request.

    ``retries`` overrides the client's default retry count for the phase
    (``None`` = inherit); ``timeout_scale`` multiplies the client's base
    timeout — probes should give up fast (a partitioned agent must
    notice quickly), submissions may legitimately take longer (server-
    side config validation).
    """

    idempotent: bool
    retries: int | None = None
    timeout_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.retries is not None and self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.timeout_scale <= 0:
            raise ValueError("timeout_scale must be positive")


# The canonical per-phase budgets, keyed by repro.net.http.classify_phase
# phases.  Used by ControlPlaneClient; tests pin the safety-critical
# entries (lease/submit/complete are non-idempotent).
ENDPOINT_POLICIES: Dict[str, EndpointPolicy] = {
    "health": EndpointPolicy(idempotent=True, retries=0, timeout_scale=0.5),
    "metrics": EndpointPolicy(idempotent=True),
    "status": EndpointPolicy(idempotent=True),
    "control": EndpointPolicy(idempotent=True),
    "submit": EndpointPolicy(idempotent=False, timeout_scale=2.0),
    "lease": EndpointPolicy(idempotent=False),
    "heartbeat": EndpointPolicy(idempotent=True, retries=1, timeout_scale=0.5),
    "complete": EndpointPolicy(idempotent=False),
    "reconcile": EndpointPolicy(idempotent=True),
    "other": EndpointPolicy(idempotent=False, retries=0),
}


class BreakerOpen(RuntimeError):
    """An operation was refused because the host's circuit is open."""


class RetryExhausted(RuntimeError):
    """A retry budget was spent without a success.

    ``attempts`` counts the failures (``retries + 1`` on exhaustion),
    ``last_error`` the final failure message, and ``last_exception`` the
    final raised exception — ``None`` when the last failure was a
    circuit-breaker refusal rather than an attempt.
    """

    def __init__(self, attempts: int, last_error: str,
                 last_exception: Exception | None = None):
        super().__init__(f"failed after {attempts} attempts: {last_error}")
        self.attempts = attempts
        self.last_error = last_error
        self.last_exception = last_exception


def retry_call(
    fn: Callable[[], "object"],
    retries: int = 0,
    backoff: "BackoffPolicy | None" = None,
    key: str = "",
    sleeper: Callable[[float], None] = time.sleep,
    retry_on: tuple = (Exception,),
    before_attempt: Callable[[], None] | None = None,
    breaker: "CircuitBreaker | None" = None,
    host: str = "",
):
    """Run ``fn`` under the canonical retry discipline; ``(result, failures)``.

    Every retry consumer in the codebase (download fetches, shipment
    moves, the runtime's RetryMiddleware) shares this one loop, so the
    semantics stay uniform:

    * ``before_attempt`` runs ahead of *every* try (deadline checks);
      whatever it raises aborts the loop immediately, never retried;
    * with a ``breaker``, a refused host counts as a failed attempt with
      message ``circuit open for host '<host>'`` — no request is made and
      no breaker failure is recorded;
    * an exception matching ``retry_on`` counts as a failure (recorded on
      the breaker); anything else propagates untouched;
    * between attempts the caller sleeps exactly
      ``backoff.delay(failures - 1, key=key)`` — never an immediate retry;
    * once failures exceed ``retries``, :class:`RetryExhausted` carries
      the attempt count and the final error.
    """
    if retries < 0:
        raise ValueError("retries must be non-negative")
    failures = 0
    while True:
        if before_attempt is not None:
            before_attempt()
        if breaker is not None and not breaker.allow(host):
            last_error = f"circuit open for host {host!r}"
            failures += 1
            if failures > retries:
                raise RetryExhausted(failures, last_error)
            if backoff is not None:
                sleeper(backoff.delay(failures - 1, key=key))
            continue
        try:
            result = fn()
        except retry_on as exc:
            if breaker is not None:
                breaker.record_failure(host)
            failures += 1
            if failures > retries:
                raise RetryExhausted(failures, str(exc), exc) from exc
            if backoff is not None:
                sleeper(backoff.delay(failures - 1, key=key))
            continue
        if breaker is not None:
            breaker.record_success(host)
        return result, failures


class CircuitBreaker:
    """Per-host circuit breaker (closed -> open -> half-open -> closed).

    ``failure_threshold`` consecutive failures open the circuit; after
    ``reset_after`` seconds one probe is allowed (half-open); a probe
    success closes the circuit, a probe failure re-opens it.  Thread-safe
    — download workers share one breaker per archive host.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure threshold must be positive")
        if reset_after < 0:
            raise ValueError("reset window must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self.clock = clock
        self.opened_total = 0
        self._lock = threading.Lock()
        self._failures: Dict[str, int] = {}
        self._opened_at: Dict[str, float] = {}
        self._probing: Dict[str, bool] = {}

    def state(self, host: str) -> str:
        with self._lock:
            return self._state_locked(host)

    def _state_locked(self, host: str) -> str:
        if host not in self._opened_at:
            return self.CLOSED
        if self.clock() - self._opened_at[host] >= self.reset_after:
            return self.HALF_OPEN
        return self.OPEN

    def allow(self, host: str) -> bool:
        """May a request to ``host`` proceed right now?

        In the half-open state exactly one caller is admitted as the
        probe; others keep waiting until its outcome is recorded.
        """
        with self._lock:
            state = self._state_locked(host)
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probing.get(host, False):
                self._probing[host] = True
                return True
            return False

    def record_success(self, host: str) -> None:
        with self._lock:
            self._failures[host] = 0
            self._opened_at.pop(host, None)
            self._probing.pop(host, None)

    def record_failure(self, host: str) -> None:
        with self._lock:
            was_open = host in self._opened_at
            self._failures[host] = self._failures.get(host, 0) + 1
            self._probing.pop(host, None)
            if self._failures[host] >= self.failure_threshold or was_open:
                # Threshold reached, or a half-open probe failed: (re)open.
                self._opened_at[host] = self.clock()
                if not was_open:
                    self.opened_total += 1

    def failures(self, host: str) -> int:
        with self._lock:
            return self._failures.get(host, 0)
