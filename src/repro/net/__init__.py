"""Network substrate: HTTPS archive server model and WAN links."""

from repro.net.http import DownloadResult, HttpServer
from repro.net.wan import WanLink

__all__ = ["HttpServer", "DownloadResult", "WanLink"]
