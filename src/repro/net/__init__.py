"""Network substrate: HTTPS archive server model, WAN links, retry policy."""

from repro.net.http import DownloadResult, HttpServer, retrying_request
from repro.net.retry import BackoffPolicy, BreakerOpen, CircuitBreaker
from repro.net.wan import WanLink

__all__ = [
    "HttpServer",
    "DownloadResult",
    "WanLink",
    "retrying_request",
    "BackoffPolicy",
    "CircuitBreaker",
    "BreakerOpen",
]
