"""The ``@python_app`` decorator (Parsl's programming surface).

>>> dfk = DataFlowKernel({"local": LocalComputeEndpoint("local", 4)})
>>> load(dfk)
>>> @python_app
... def tile(granule):
...     return preprocess(granule)
>>> futures = [tile(g) for g in granules]   # runs in parallel

Apps submitted before :func:`load` raise immediately rather than hanging.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Optional

from repro.pexec.dfk import AppFuture, DataFlowKernel

__all__ = ["python_app", "load", "clear", "current_dfk"]

_ACTIVE: Optional[DataFlowKernel] = None


def load(dfk: DataFlowKernel) -> None:
    """Install the process-wide default DataFlowKernel."""
    global _ACTIVE
    _ACTIVE = dfk


def clear() -> None:
    """Remove the default kernel (used between tests)."""
    global _ACTIVE
    _ACTIVE = None


def current_dfk() -> DataFlowKernel:
    if _ACTIVE is None:
        raise RuntimeError("no DataFlowKernel loaded; call repro.pexec.load(dfk) first")
    return _ACTIVE


def python_app(
    fn: Optional[Callable] = None,
    *,
    dfk: Optional[DataFlowKernel] = None,
    executor: Optional[str] = None,
) -> Callable:
    """Wrap a function so calls return :class:`AppFuture` immediately.

    ``dfk`` pins a specific kernel (otherwise the loaded default is used
    at call time); ``executor`` selects a named executor.
    """

    def decorate(func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> AppFuture:
            kernel = dfk if dfk is not None else current_dfk()
            return kernel.submit(func, args=args, kwargs=kwargs, executor=executor)

        wrapper.__wrapped__ = func
        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate
