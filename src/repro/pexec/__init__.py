"""Parsl-like parallel execution: apps + DFK (real) and SimHtex (simulated)."""

from repro.pexec.apps import clear, current_dfk, load, python_app
from repro.pexec.dfk import AppFuture, DataFlowKernel, DependencyError
from repro.pexec.simexec import Block, SimHtexExecutor, SimTaskSpec, TaskResult
from repro.pexec.strategy import ElasticStrategy

__all__ = [
    "python_app",
    "load",
    "clear",
    "current_dfk",
    "DataFlowKernel",
    "AppFuture",
    "DependencyError",
    "SimHtexExecutor",
    "SimTaskSpec",
    "TaskResult",
    "Block",
    "ElasticStrategy",
]
