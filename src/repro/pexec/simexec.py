"""Simulated Parsl HighThroughputExecutor over Slurm blocks.

This is the engine behind the scaling benchmarks (Figs. 4-5, Table I,
Fig. 6): tasks (one per MODIS file) queue at the executor; *blocks* of
nodes are provisioned through the facility's Slurm scheduler; each node
runs a configurable number of workers that pull tasks until the queue is
empty and then exit gracefully (Parsl's scale-in behaviour, visible as
the ramp-down in Fig. 6's worker timeline).

Task service time composes:

* the task's intrinsic single-worker duration (``base_duration``),
* the facility's on-node USL efficiency at the node's *current* busy
  worker count,
* the cross-node USL efficiency at the current number of active nodes,
* multiplicative lognormal noise (per-file variability: ocean/land mix
  and nighttime band availability — Section III notes "processing time
  can vary").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

import numpy as np

from repro.hpc.facility import Facility
from repro.hpc.slurm import Job, JobState
from repro.sim import Event, Simulation, Store, Tracer
from repro.util.logging import EventLog

__all__ = ["SimTaskSpec", "TaskResult", "Block", "SimHtexExecutor"]


@dataclass(frozen=True)
class SimTaskSpec:
    """One unit of work (e.g. preprocessing one MOD02 granule)."""

    label: str
    base_duration: float  # seconds on one uncontended worker
    tiles: int = 0        # tiles this task produces (throughput accounting)
    output_bytes: int = 0  # bytes written to the shared FS on completion

    def __post_init__(self) -> None:
        if self.base_duration < 0:
            raise ValueError("task duration must be non-negative")


@dataclass(frozen=True)
class TaskResult:
    """Completion record for one task."""

    label: str
    tiles: int
    started_at: float
    finished_at: float
    worker_id: int
    node_key: tuple

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class Block:
    """One Slurm allocation running workers."""

    block_id: int
    job: Job
    num_nodes: int
    workers_per_node: int
    live_workers: int = 0
    node_keys: List[tuple] = field(default_factory=list)


class SimHtexExecutor:
    """Pull-based worker pool over Slurm blocks with USL contention."""

    def __init__(
        self,
        sim: Simulation,
        facility: Facility,
        workers_per_node: int,
        tracer: Optional[Tracer] = None,
        gauge: str = "workers:preprocess",
        seed: int = 0,
        noise_sigma: float = 0.06,
        block_walltime: float = 24 * 3600.0,
        log: Optional[EventLog] = None,
        label: str = "htex",
        task_failure_rate: float = 0.0,
        max_task_retries: int = 3,
    ):
        if workers_per_node < 1:
            raise ValueError("need at least one worker per node")
        if noise_sigma < 0:
            raise ValueError("noise sigma must be non-negative")
        if not 0.0 <= task_failure_rate < 1.0:
            raise ValueError("task failure rate must be in [0, 1)")
        if max_task_retries < 0:
            raise ValueError("max task retries must be non-negative")
        self.sim = sim
        self.facility = facility
        self.workers_per_node = workers_per_node
        self.tracer = tracer
        self.gauge = gauge
        self.rng = np.random.default_rng(seed)
        self.noise_sigma = noise_sigma
        self.block_walltime = block_walltime
        self.log = log or EventLog()
        self.label = label
        self.task_failure_rate = task_failure_rate
        self.max_task_retries = max_task_retries
        self.queue: Store = Store(sim)
        self.blocks: List[Block] = []
        self.results: List[TaskResult] = []
        self.task_retries = 0
        self._attempts: Dict[str, int] = {}
        self._busy_per_node: Dict[tuple, int] = {}
        self._next_block = 1
        self._next_worker = 1

    # -- submission ------------------------------------------------------------

    def submit(self, spec: SimTaskSpec) -> Event:
        """Queue a task; returns an event firing with its TaskResult."""
        done = self.sim.event()
        self.queue.put((spec, done))
        return done

    def submit_all(self, specs: List[SimTaskSpec]) -> List[Event]:
        return [self.submit(spec) for spec in specs]

    # -- block management ------------------------------------------------------

    def scale_out(self, num_nodes: int, workers_per_node: Optional[int] = None) -> Block:
        """Provision a block of ``num_nodes`` through the Slurm scheduler."""
        wpn = workers_per_node or self.workers_per_node
        block = Block(
            block_id=self._next_block,
            job=self.facility.scheduler.submit(
                f"{self.label}-block-{self._next_block}",
                num_nodes=num_nodes,
                walltime=self.block_walltime,
            ),
            num_nodes=num_nodes,
            workers_per_node=wpn,
        )
        self._next_block += 1
        self.blocks.append(block)
        self.sim.process(self._start_block(block), name=f"{self.label}-start-{block.block_id}")
        return block

    def _start_block(self, block: Block) -> Generator:
        job = yield block.job.started
        if job.state.terminal:
            return  # cancelled before it started
        block.node_keys = [(block.block_id, node) for node in block.job.nodes]
        for node_key in block.node_keys:
            self._busy_per_node.setdefault(node_key, 0)
            for _ in range(block.workers_per_node):
                worker_id = self._next_worker
                self._next_worker += 1
                block.live_workers += 1
                if self.tracer is not None:
                    self.tracer.gauge_add(self.gauge, self.sim.now, +1)
                self.sim.process(
                    self._worker(block, node_key, worker_id),
                    name=f"{self.label}-w{worker_id}",
                )

    # -- the worker loop ------------------------------------------------------

    def _active_nodes(self) -> int:
        return max(1, sum(1 for count in self._busy_per_node.values() if count > 0))

    def _worker(self, block: Block, node_key: tuple, worker_id: int) -> Generator:
        while len(self.queue) > 0:
            spec, done = yield self.queue.get()
            self._busy_per_node[node_key] += 1
            started = self.sim.now
            factor = self.facility.contention_factor(
                min(self._busy_per_node[node_key], block.workers_per_node),
                self._active_nodes(),
            )
            noise = (
                float(np.exp(self.rng.normal(0.0, self.noise_sigma)))
                if self.noise_sigma > 0
                else 1.0
            )
            duration = spec.base_duration / factor * noise
            if self.task_failure_rate > 0 and self.rng.uniform() < self.task_failure_rate:
                # Worker crash mid-task: the time is lost, the task
                # requeues (Parsl's retry semantics) up to the budget.
                yield self.sim.timeout(duration * float(self.rng.uniform(0.05, 0.95)))
                self._busy_per_node[node_key] -= 1
                attempts = self._attempts.get(spec.label, 0) + 1
                self._attempts[spec.label] = attempts
                if attempts > self.max_task_retries:
                    done.fail(RuntimeError(
                        f"task {spec.label!r} failed after {attempts} attempts"
                    ))
                else:
                    self.task_retries += 1
                    self.queue.put((spec, done))
                continue
            yield self.sim.timeout(duration)
            if spec.output_bytes > 0:
                yield self.facility.filesystem.write(
                    f"/preproc/{spec.label}.nc", spec.output_bytes, metadata={"tiles": spec.tiles}
                )
            self._busy_per_node[node_key] -= 1
            result = TaskResult(
                label=spec.label,
                tiles=spec.tiles,
                started_at=started,
                finished_at=self.sim.now,
                worker_id=worker_id,
                node_key=node_key,
            )
            self.results.append(result)
            done.succeed(result)
        # Queue drained: the worker exits gracefully (Parsl scale-in).
        block.live_workers -= 1
        if self.tracer is not None:
            self.tracer.gauge_add(self.gauge, self.sim.now, -1)
        if block.live_workers == 0 and block.job.state is JobState.RUNNING:
            self.facility.scheduler.complete(block.job)
            self.log.emit(self.sim.now, self.label, "block_retired", block_id=block.block_id)

    # -- accounting ------------------------------------------------------------

    def completion_time(self) -> float:
        """Time from first task start to last task finish."""
        if not self.results:
            raise ValueError("no completed tasks")
        return max(r.finished_at for r in self.results) - min(r.started_at for r in self.results)

    def throughput_tiles_per_s(self) -> float:
        if not self.results:
            raise ValueError("no completed tasks")
        span = self.completion_time()
        total = sum(r.tiles for r in self.results)
        return total / span if span > 0 else float("inf")
