"""Elastic scaling strategy (Parsl's block scale-out/scale-in).

Fig. 6's point is adaptive resource management: the workflow "increases
resource allocation after completing the network-intensive ... download
task", "dynamically scales down resources as workers complete their
tasks", and runs stages concurrently.  The executor already scales *in*
(workers exit and blocks retire when the queue drains); this strategy
adds demand-driven scale-*out*: watch the queue, add blocks up to a cap
while demand persists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.pexec.simexec import SimHtexExecutor
from repro.runtime.elastic import ElasticPolicy
from repro.sim import Event, Simulation

__all__ = ["ElasticStrategy"]


@dataclass
class ElasticStrategy:
    """Demand-driven block scale-out for a :class:`SimHtexExecutor`.

    ``tasks_per_worker_target`` controls aggressiveness: another block is
    requested while queued tasks exceed target * provisioned workers.
    The demand rule is the shared :class:`ElasticPolicy` — the same
    policy that drives the live process pool's scale-out — so the
    simulator and the real runtime cannot drift apart.
    """

    sim: Simulation
    executor: SimHtexExecutor
    nodes_per_block: int = 1
    max_blocks: int = 4
    poll_interval: float = 1.0
    tasks_per_worker_target: float = 2.0

    def __post_init__(self) -> None:
        if self.max_blocks < 1 or self.nodes_per_block < 1:
            raise ValueError("block limits must be >= 1")
        if self.poll_interval <= 0:
            raise ValueError("poll interval must be positive")
        self._stop: Optional[Event] = None
        # min_workers=0: the executor handles its own scale-in; this
        # strategy only ever asks the policy the scale-out question.
        self._policy = ElasticPolicy(
            enabled=True,
            min_workers=0,
            max_workers=max(1, self.max_blocks),
            tasks_per_worker_target=self.tasks_per_worker_target,
        )

    def start(self) -> None:
        self._stop = self.sim.event()
        self.sim.process(self._loop(), name="elastic-strategy")

    def stop(self) -> None:
        if self._stop is not None and not self._stop.triggered:
            self._stop.succeed(None)

    def _provisioned_workers(self) -> int:
        return sum(
            block.num_nodes * block.workers_per_node
            for block in self.executor.blocks
            if not block.job.state.terminal
        )

    def _active_blocks(self) -> int:
        return sum(1 for block in self.executor.blocks if not block.job.state.terminal)

    def _loop(self) -> Generator:
        while self._stop is not None and not self._stop.triggered:
            queued = len(self.executor.queue)
            workers = self._provisioned_workers()
            if self._active_blocks() < self.max_blocks and self._policy.wants_scale_out(
                queued, workers
            ):
                self.executor.scale_out(self.nodes_per_block)
            yield self.sim.timeout(self.poll_interval)
