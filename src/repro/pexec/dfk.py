"""A Parsl-like DataFlowKernel: dataflow dependency resolution over futures.

The paper's preprocessing stage uses Parsl to fan tile-creation tasks over
Slurm-provisioned workers (Section III, stage 2).  This kernel provides
the Parsl programming model for the real, laptop-scale execution path:
apps return :class:`AppFuture` immediately; passing an AppFuture as an
argument to another app creates a dependency edge; an app launches once
all its inputs have resolved.

Executors are anything with ``submit(fn, *args, **kwargs) -> Future`` —
in practice :class:`repro.compute.LocalComputeEndpoint`.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["AppFuture", "DependencyError", "DataFlowKernel"]


class AppFuture(Future):
    """Future for one app invocation, carrying its task id and label."""

    def __init__(self, task_id: int, label: str):
        super().__init__()
        self.task_id = task_id
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AppFuture {self.task_id} {self.label!r} {self._state}>"


class DependencyError(RuntimeError):
    """An app could not launch because one of its inputs failed."""


def _scan_futures(value: Any, found: List[Future]) -> None:
    if isinstance(value, Future):
        found.append(value)
    elif isinstance(value, (list, tuple)):
        for item in value:
            _scan_futures(item, found)
    elif isinstance(value, dict):
        for item in value.values():
            _scan_futures(item, found)


def _substitute(value: Any) -> Any:
    if isinstance(value, Future):
        return value.result(timeout=0)
    if isinstance(value, list):
        return [_substitute(item) for item in value]
    if isinstance(value, tuple):
        return tuple(_substitute(item) for item in value)
    if isinstance(value, dict):
        return {key: _substitute(item) for key, item in value.items()}
    return value


class DataFlowKernel:
    """Routes app invocations to executors once their inputs resolve."""

    def __init__(self, executors: Dict[str, Any], default_executor: Optional[str] = None):
        if not executors:
            raise ValueError("DataFlowKernel needs at least one executor")
        self.executors = dict(executors)
        self.default_executor = default_executor or next(iter(executors))
        if self.default_executor not in self.executors:
            raise ValueError(f"default executor {self.default_executor!r} not in executors")
        self._lock = threading.Lock()
        self._next_task = 1
        self.tasks_launched = 0
        self.tasks_done = 0

    def submit(
        self,
        fn: Callable,
        args: Tuple = (),
        kwargs: Optional[dict] = None,
        executor: Optional[str] = None,
    ) -> AppFuture:
        kwargs = kwargs or {}
        target = executor or self.default_executor
        if target not in self.executors:
            raise KeyError(f"unknown executor {target!r}; have {sorted(self.executors)}")
        with self._lock:
            task_id = self._next_task
            self._next_task += 1
        app_future = AppFuture(task_id, getattr(fn, "__name__", "app"))

        deps: List[Future] = []
        _scan_futures(args, deps)
        _scan_futures(kwargs, deps)

        pending = {"count": len(deps)}
        lock = threading.Lock()

        def launch() -> None:
            failed = [d for d in deps if d.exception(timeout=0) is not None]
            if failed:
                app_future.set_exception(
                    DependencyError(
                        f"{len(failed)} dependenc{'y' if len(failed) == 1 else 'ies'} "
                        f"of task {task_id} failed: {failed[0].exception(timeout=0)!r}"
                    )
                )
                return
            try:
                real_args = _substitute(args)
                real_kwargs = _substitute(kwargs)
            except Exception as exc:  # noqa: BLE001
                app_future.set_exception(exc)
                return
            inner = self.executors[target].submit(fn, *real_args, **real_kwargs)
            self.tasks_launched += 1

            def relay(done: Future) -> None:
                self.tasks_done += 1
                exc = done.exception()
                if exc is not None:
                    app_future.set_exception(exc)
                else:
                    app_future.set_result(done.result())

            inner.add_done_callback(relay)

        if not deps:
            launch()
        else:
            def on_dep_done(_dep: Future) -> None:
                with lock:
                    pending["count"] -= 1
                    ready = pending["count"] == 0
                if ready:
                    launch()

            for dep in deps:
                dep.add_done_callback(on_dep_done)
        return app_future

    def wait_all(self, futures: List[Future], timeout: Optional[float] = None) -> List[Any]:
        """Resolve all futures, raising the first failure."""
        return [future.result(timeout=timeout) for future in futures]

    @property
    def tasks_submitted(self) -> int:
        return self._next_task - 1

    def status(self) -> Dict[str, int]:
        """A monitoring snapshot (Parsl's "monitors their completion").

        ``waiting_on_dependencies`` counts apps submitted but not yet
        launched because an input future is still unresolved.
        """
        submitted = self.tasks_submitted
        return {
            "submitted": submitted,
            "launched": self.tasks_launched,
            "done": self.tasks_done,
            "running": self.tasks_launched - self.tasks_done,
            "waiting_on_dependencies": submitted - self.tasks_launched,
        }

    def shutdown(self) -> None:
        for executor in self.executors.values():
            shutdown = getattr(executor, "shutdown", None)
            if shutdown is not None:
                shutdown()
