"""A Slurm-like batch scheduler on the discrete-event kernel.

Parsl's ``SlurmProvider`` on Defiant submits *blocks* of nodes through
Slurm (Section III, stage 2); Fig. 7's preprocess latency explicitly
includes "the Slurm scheduler allocating nodes".  This model implements
the pieces that matter to the workflow:

* node pool with exclusive whole-node allocation,
* FIFO queue with EASY backfill (a later job may jump ahead only if it
  cannot delay the queue head's reserved start),
* allocation latency (prolog + launch) and walltime enforcement,
* job lifecycle events so Parsl-like providers can wait on them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Set

from repro.sim import Event, Interrupt, Simulation
from repro.hpc.machine import ClusterSpec
from repro.util.logging import EventLog

__all__ = ["JobState", "Job", "SlurmScheduler"]


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    FAILED = "failed"
    TIMEOUT = "timeout"

    @property
    def terminal(self) -> bool:
        return self not in (JobState.PENDING, JobState.RUNNING)


@dataclass
class Job:
    """One batch job: a node-count request with lifecycle events."""

    job_id: int
    name: str
    num_nodes: int
    walltime: float
    submitted_at: float
    priority: int = 0
    state: JobState = JobState.PENDING
    nodes: List[int] = field(default_factory=list)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    started: Event = None  # type: ignore[assignment]
    finished: Event = None  # type: ignore[assignment]

    @property
    def queue_wait(self) -> float:
        if self.started_at is None:
            raise ValueError("job has not started")
        return self.started_at - self.submitted_at


BodyFactory = Callable[[Job], Generator]


class SlurmScheduler:
    """Whole-node batch scheduler with FIFO + EASY backfill."""

    def __init__(
        self,
        sim: Simulation,
        cluster: ClusterSpec,
        allocation_latency: float = 1.5,
        log: Optional[EventLog] = None,
    ):
        if allocation_latency < 0:
            raise ValueError("allocation latency must be non-negative")
        self.sim = sim
        self.cluster = cluster
        self.allocation_latency = allocation_latency
        self.log = log or EventLog()
        self.free_nodes: Set[int] = set(range(cluster.num_nodes))
        self.queue: List[Job] = []
        self.running: Dict[int, Job] = {}
        self._bodies: Dict[int, Optional[BodyFactory]] = {}
        self._next_id = 1

    # -- public API ---------------------------------------------------------

    def submit(
        self,
        name: str,
        num_nodes: int,
        walltime: float,
        body: Optional[BodyFactory] = None,
        priority: int = 0,
    ) -> Job:
        """Queue a job.

        ``body(job)`` (if given) is started as a simulation process once
        nodes are allocated; the job completes when it returns, or times
        out at ``walltime``.  Without a body, the caller drives completion
        via :meth:`complete`.  Higher ``priority`` jobs sort ahead in the
        queue (ties break by submission order, i.e. FIFO within a
        priority level — Slurm's multifactor ordering reduced to the one
        factor the workflow uses).
        """
        if num_nodes < 1 or num_nodes > self.cluster.num_nodes:
            raise ValueError(
                f"job {name!r} requests {num_nodes} nodes; cluster "
                f"{self.cluster.name!r} has {self.cluster.num_nodes}"
            )
        if walltime <= 0:
            raise ValueError("walltime must be positive")
        job = Job(
            job_id=self._next_id,
            name=name,
            num_nodes=num_nodes,
            walltime=walltime,
            submitted_at=self.sim.now,
            priority=priority,
            started=self.sim.event(),
            finished=self.sim.event(),
        )
        self._next_id += 1
        self._bodies[job.job_id] = body
        self.queue.append(job)
        # Stable sort: priority descending, submission order within ties.
        self.queue.sort(key=lambda j: -j.priority)
        self.log.emit(self.sim.now, "slurm", "submit", job_id=job.job_id, name=name, nodes=num_nodes)
        self._schedule()
        return job

    def cancel(self, job: Job) -> None:
        if job.state.terminal:
            return
        if job.state is JobState.PENDING:
            self.queue.remove(job)
            self._finish(job, JobState.CANCELLED)
            return
        proc = getattr(job, "_proc", None)
        if proc is not None and proc.is_alive:
            job.state = JobState.CANCELLED  # recorded before release below
            proc.interrupt(cause="scancel")
        self._release(job, JobState.CANCELLED)

    def complete(self, job: Job) -> None:
        """Mark a body-less running job as finished successfully."""
        if job.state is not JobState.RUNNING:
            raise ValueError(f"job {job.job_id} is {job.state.value}, not running")
        self._release(job, JobState.COMPLETED)

    @property
    def utilization(self) -> float:
        total = self.cluster.num_nodes
        return (total - len(self.free_nodes)) / total

    # -- scheduling core ------------------------------------------------------

    def _expected_releases(self) -> List[tuple]:
        """(time, num_nodes) for running jobs, by walltime bound.

        Jobs still inside the allocation-latency window have no
        ``started_at`` yet; assume they start now + latency, else the
        backfill shadow time would be infinite and long jobs could jump
        the head.
        """
        return sorted(
            (
                (job.started_at if job.started_at is not None
                 else self.sim.now + self.allocation_latency) + job.walltime,
                job.num_nodes,
            )
            for job in self.running.values()
        )

    def _shadow_time(self, head: Job) -> float:
        """Earliest time the queue head is guaranteed enough nodes."""
        available = len(self.free_nodes)
        if available >= head.num_nodes:
            return self.sim.now
        for when, released in self._expected_releases():
            available += released
            if available >= head.num_nodes:
                return when
        return float("inf")

    def _schedule(self) -> None:
        # FIFO: start queue-head jobs while they fit.
        while self.queue and len(self.free_nodes) >= self.queue[0].num_nodes:
            self._launch(self.queue.pop(0))
        if not self.queue:
            return
        # EASY backfill: a later job may start now only if it fits in the
        # currently free nodes and ends before the head's shadow time.
        head = self.queue[0]
        shadow = self._shadow_time(head)
        index = 1
        while index < len(self.queue):
            job = self.queue[index]
            fits = len(self.free_nodes) >= job.num_nodes
            harmless = self.sim.now + job.walltime <= shadow or (
                len(self.free_nodes) - job.num_nodes >= head.num_nodes
            )
            if fits and harmless:
                self.queue.pop(index)
                self._launch(job, backfilled=True)
                shadow = self._shadow_time(head)
            else:
                index += 1

    def _launch(self, job: Job, backfilled: bool = False) -> None:
        job.nodes = [self.free_nodes.pop() for _ in range(job.num_nodes)]
        job.state = JobState.RUNNING
        self.running[job.job_id] = job
        self.log.emit(
            self.sim.now, "slurm", "allocate",
            job_id=job.job_id, nodes=len(job.nodes), backfilled=backfilled,
        )
        self.sim.process(self._run(job), name=f"slurm-job-{job.job_id}")

    def _run(self, job: Job) -> Generator:
        yield self.sim.timeout(self.allocation_latency)
        job.started_at = self.sim.now
        job.started.succeed(job)
        self.log.emit(self.sim.now, "slurm", "start", job_id=job.job_id)
        body = self._bodies.pop(job.job_id, None)
        if body is None:
            # Caller-driven: enforce only the walltime.
            yield self.sim.timeout(job.walltime)
            if not job.state.terminal:
                self._release(job, JobState.TIMEOUT)
            return
        proc = self.sim.process(body(job), name=f"job-body-{job.job_id}")
        job._proc = proc  # type: ignore[attr-defined]
        timer = self.sim.timeout(job.walltime)
        try:
            index, _value = yield self.sim.any_of([proc, timer])
        except Interrupt:
            # scancel already released the job; nothing more to do.
            return
        except BaseException:
            # The job body raised: a job failure, not a scheduler failure.
            if not job.state.terminal:
                self._release(job, JobState.FAILED)
            return
        if job.state.terminal:
            return
        if index == 0:
            self._release(job, JobState.COMPLETED if proc.ok else JobState.FAILED)
        else:
            if proc.is_alive:
                proc.interrupt(cause="walltime")
            self._release(job, JobState.TIMEOUT)

    def _release(self, job: Job, state: JobState) -> None:
        self.running.pop(job.job_id, None)
        self.free_nodes.update(job.nodes)
        self._finish(job, state)
        self._schedule()

    def _finish(self, job: Job, state: JobState) -> None:
        job.state = state
        job.finished_at = self.sim.now
        if not job.started.triggered:
            # Job ended before it ever started (cancelled while pending).
            # Succeed with the job so waiters wake and can inspect state;
            # failing here would crash runs where nobody joins `started`.
            job.started.succeed(job)
        job.finished.succeed(job)
        self.log.emit(self.sim.now, "slurm", "finish", job_id=job.job_id, state=state.value)
