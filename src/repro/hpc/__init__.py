"""Facility substrate: clusters, Slurm-like scheduling, Lustre-like FS, USL."""

from repro.hpc.contention import (
    DEFIANT_CROSS_NODE_USL,
    DEFIANT_NODE_USL,
    USLModel,
    fit_usl,
)
from repro.hpc.energy import EnergyReport, PowerModel, energy_from_worker_series
from repro.hpc.facility import Facility, build_defiant, build_frontier
from repro.hpc.filesystem import FileEntry, SharedFilesystem
from repro.hpc.machine import DEFIANT, FRONTIER, ClusterSpec, NodeSpec
from repro.hpc.slurm import Job, JobState, SlurmScheduler

__all__ = [
    "USLModel",
    "fit_usl",
    "DEFIANT_NODE_USL",
    "DEFIANT_CROSS_NODE_USL",
    "NodeSpec",
    "ClusterSpec",
    "DEFIANT",
    "FRONTIER",
    "SlurmScheduler",
    "Job",
    "JobState",
    "SharedFilesystem",
    "FileEntry",
    "Facility",
    "build_defiant",
    "build_frontier",
    "PowerModel",
    "EnergyReport",
    "energy_from_worker_series",
]
