"""A Lustre-like shared parallel filesystem model.

Two concerns matter to the workflow:

* **namespace** — stages communicate through files (preprocess writes
  NetCDFs, the monitor crawler discovers them, inference appends labels,
  shipment reads them), so the model keeps a real path -> entry map with
  creation times and a "closed" flag (the paper delays processing "until
  all downloads are complete" to avoid partial-read errors — the flag is
  what makes that race observable);
* **bandwidth** — all clients share the aggregate OST bandwidth
  (max-min fair via :class:`~repro.sim.resources.FluidPipe`) with a
  per-client ceiling, producing the gentle cross-node contention of
  Fig. 4b / 5b.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.sim import Event, FluidPipe, Simulation
from repro.util.logging import EventLog

__all__ = ["FileEntry", "SharedFilesystem"]


@dataclass
class FileEntry:
    """One file in the shared namespace."""

    path: str
    nbytes: int
    created_at: float
    closed: bool = False
    closed_at: Optional[float] = None
    metadata: dict = field(default_factory=dict)


class SharedFilesystem:
    """Shared-bandwidth filesystem with a flat path namespace."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        aggregate_bw: float,
        per_client_bw: Optional[float] = None,
        capacity_bytes: Optional[int] = None,
        log: Optional[EventLog] = None,
    ):
        self.sim = sim
        self.name = name
        self.pipe = FluidPipe(sim, capacity=aggregate_bw, per_flow_cap=per_client_bw)
        self.capacity_bytes = capacity_bytes
        self.log = log or EventLog()
        self.files: Dict[str, FileEntry] = {}
        self.bytes_used = 0

    # -- namespace ----------------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self.files

    def entry(self, path: str) -> FileEntry:
        if path not in self.files:
            raise FileNotFoundError(f"{self.name}:{path}")
        return self.files[path]

    def listdir(self, prefix: str, only_closed: bool = True) -> List[FileEntry]:
        """Entries whose path starts with ``prefix`` (sorted by path)."""
        return sorted(
            (
                entry
                for path, entry in self.files.items()
                if path.startswith(prefix) and (entry.closed or not only_closed)
            ),
            key=lambda e: e.path,
        )

    def created_since(self, prefix: str, time: float) -> List[FileEntry]:
        """Closed entries under ``prefix`` whose close time is > ``time``.

        This is the crawler primitive of the Monitor & Trigger stage.
        """
        return sorted(
            (
                entry
                for path, entry in self.files.items()
                if path.startswith(prefix)
                and entry.closed
                and entry.closed_at is not None
                and entry.closed_at > time
            ),
            key=lambda e: (e.closed_at, e.path),
        )

    def unlink(self, path: str) -> None:
        entry = self.entry(path)
        self.bytes_used -= entry.nbytes
        del self.files[path]
        self.log.emit(self.sim.now, self.name, "unlink", path=path)

    # -- data movement ----------------------------------------------------------

    def write(self, path: str, nbytes: int, metadata: Optional[dict] = None) -> Event:
        """Start writing a file; the returned event fires when it closes.

        While the write is in flight the entry exists but is not
        ``closed`` — exactly the partial-file hazard the paper's download
        barrier avoids.
        """
        if nbytes < 0:
            raise ValueError("file size must be non-negative")
        if path in self.files:
            raise FileExistsError(f"{self.name}:{path}")
        if self.capacity_bytes is not None and self.bytes_used + nbytes > self.capacity_bytes:
            raise OSError(f"filesystem {self.name} is full")
        entry = FileEntry(path=path, nbytes=nbytes, created_at=self.sim.now, metadata=metadata or {})
        self.files[path] = entry
        self.bytes_used += nbytes
        done = self.sim.event()
        flow = self.pipe.transfer(float(nbytes))

        def finish(_event: Event) -> None:
            entry.closed = True
            entry.closed_at = self.sim.now
            self.log.emit(self.sim.now, self.name, "close", path=path, nbytes=nbytes)
            done.succeed(entry)

        flow._add_callback(finish)
        return done

    def read(self, path: str) -> Event:
        """Read a closed file fully; fires with the entry when done."""
        entry = self.entry(path)
        if not entry.closed:
            raise OSError(f"{self.name}:{path} is still being written")
        done = self.sim.event()
        flow = self.pipe.transfer(float(entry.nbytes))
        flow._add_callback(lambda _event: done.succeed(entry))
        return done

    def write_proc(self, path: str, nbytes: int, metadata: Optional[dict] = None) -> Generator:
        """Generator helper: ``yield from fs.write_proc(...)`` in a process."""
        entry = yield self.write(path, nbytes, metadata)
        return entry

    def read_proc(self, path: str) -> Generator:
        entry = yield self.read(path)
        return entry
