"""Machine descriptions: nodes, clusters, and the paper's systems.

Section IV: "we use OLCF's 36-node Defiant cluster.  Each compute node
contains a 64-core AMD EPYC 7662 CPU each with 256GB DDR4 RAM, and linked
to four AMD MI100 GPUs.  Nodes are linked via a 12.5 GB/s Slingshot-10
interconnect, and a 1.6PB Lustre file system."  Frontier/Orion appears as
the shipment target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.units import parse_bytes, parse_rate

__all__ = ["NodeSpec", "ClusterSpec", "DEFIANT", "FRONTIER"]


@dataclass(frozen=True)
class NodeSpec:
    """One compute node's resources."""

    cores: int
    memory_bytes: int
    gpus: int = 0
    memory_bandwidth: float = parse_rate("150 GB/s")  # 8-ch DDR4-3200 class

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("node needs at least one core")
        if self.memory_bytes <= 0:
            raise ValueError("node memory must be positive")
        if self.gpus < 0:
            raise ValueError("gpu count must be non-negative")


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster with a shared filesystem and interconnect."""

    name: str
    num_nodes: int
    node: NodeSpec
    interconnect_bw: float            # per-node link, bytes/s
    fs_capacity_bytes: int
    fs_aggregate_bw: float            # shared filesystem bytes/s
    fs_per_client_bw: float           # one node's max filesystem rate

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("cluster needs at least one node")
        if min(self.interconnect_bw, self.fs_aggregate_bw, self.fs_per_client_bw) <= 0:
            raise ValueError("bandwidths must be positive")

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.node.cores


DEFIANT = ClusterSpec(
    name="defiant",
    num_nodes=36,
    node=NodeSpec(cores=64, memory_bytes=parse_bytes("256GB"), gpus=4),
    interconnect_bw=parse_rate("12.5 GB/s"),
    fs_capacity_bytes=parse_bytes("1.6PB"),
    fs_aggregate_bw=parse_rate("60 GB/s"),
    fs_per_client_bw=parse_rate("10 GB/s"),
)

FRONTIER = ClusterSpec(
    name="frontier",
    num_nodes=9408,
    node=NodeSpec(cores=64, memory_bytes=parse_bytes("512GB"), gpus=8),
    interconnect_bw=parse_rate("25 GB/s"),
    fs_capacity_bytes=parse_bytes("679PB"),  # Orion
    fs_aggregate_bw=parse_rate("5 TB/s"),
    fs_per_client_bw=parse_rate("12 GB/s"),
)
