"""On-node and cross-node scalability models (Universal Scalability Law).

The paper's central performance observation (Figs. 4-5, Table I) is that
preprocessing scales *sub-linearly with workers on a node* ("significant
on-node resource contention") but *near-linearly with nodes*.  We model
both with Gunther's Universal Scalability Law:

    speedup(n) = n / (1 + sigma * (n - 1) + kappa * n * (n - 1))

where ``sigma`` captures contention (serialization on shared resources:
memory bandwidth, filesystem clients) and ``kappa`` captures coherency
(pairwise crosstalk).  The default parameters are least-squares fits to
Table I itself:

* on-node (workers): sigma ~ 0.174, kappa ~ 1.5e-3 — throughput rises to
  ~37 tiles/s around 8-16 workers and plateaus through 64;
* cross-node (nodes at 8 workers/node): sigma ~ 0.039, kappa ~ 0 —
  near-linear to 10 nodes (267 tiles/s from a 36 tiles/s single node).

:func:`fit_usl` recovers (sigma, kappa) from measured throughput curves,
used by the analysis drivers and the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["USLModel", "fit_usl", "DEFIANT_NODE_USL", "DEFIANT_CROSS_NODE_USL"]


@dataclass(frozen=True)
class USLModel:
    """Universal Scalability Law with contention sigma and coherency kappa."""

    sigma: float
    kappa: float

    def __post_init__(self) -> None:
        if self.sigma < 0 or self.kappa < 0:
            raise ValueError("USL parameters must be non-negative")

    def speedup(self, n: int | np.ndarray) -> np.ndarray | float:
        n = np.asarray(n, dtype=np.float64)
        result = n / (1.0 + self.sigma * (n - 1.0) + self.kappa * n * (n - 1.0))
        return float(result) if result.ndim == 0 else result

    def efficiency(self, n: int | np.ndarray) -> np.ndarray | float:
        """Per-worker efficiency: speedup(n) / n, in (0, 1]."""
        n_arr = np.asarray(n, dtype=np.float64)
        result = 1.0 / (1.0 + self.sigma * (n_arr - 1.0) + self.kappa * n_arr * (n_arr - 1.0))
        return float(result) if result.ndim == 0 else result

    def throughput(self, n: int | np.ndarray, base_rate: float) -> np.ndarray | float:
        """Aggregate rate for n workers given a single-worker ``base_rate``."""
        speedup = self.speedup(n)
        if isinstance(speedup, float):
            return base_rate * speedup
        return base_rate * speedup

    def peak_concurrency(self) -> float:
        """The n maximizing throughput (infinite if kappa == 0)."""
        if self.kappa == 0:
            return float("inf")
        return float(np.sqrt((1.0 - self.sigma) / self.kappa))


def fit_usl(
    concurrency: Sequence[int],
    throughput: Sequence[float],
) -> Tuple[USLModel, float]:
    """Least-squares USL fit; returns (model, base_rate).

    Linearization: with y = n / speedup(n) = base * n / X(n),
    (base_rate * n / X(n)) ... we fit the normalized form
    n / (X/X1) against 1 + sigma (n-1) + kappa n (n-1), which is linear in
    (sigma, kappa).  base_rate is taken from the n=1 point when present,
    otherwise estimated jointly.
    """
    n = np.asarray(concurrency, dtype=np.float64)
    x = np.asarray(throughput, dtype=np.float64)
    if n.shape != x.shape or n.size < 2:
        raise ValueError("need matching concurrency/throughput arrays with >= 2 points")
    if (n < 1).any() or (x <= 0).any():
        raise ValueError("concurrency must be >= 1 and throughput positive")
    ones = np.isclose(n, 1.0)
    if ones.any():
        base = float(x[ones].mean())
    else:
        base = float(x[np.argmin(n)] / n[np.argmin(n)])
    # y := base * n / x = 1 + sigma (n-1) + kappa n (n-1)
    y = base * n / x
    a = np.column_stack([n - 1.0, n * (n - 1.0)])
    coef, *_ = np.linalg.lstsq(a, y - 1.0, rcond=None)
    sigma, kappa = float(max(coef[0], 0.0)), float(max(coef[1], 0.0))
    return USLModel(sigma=sigma, kappa=kappa), base


# Fits to Table I (see module docstring).  Defiant: 64-core EPYC 7662
# nodes; the strong on-node sigma reflects memory-bandwidth saturation of
# the tiling workload, which is a streaming transform.
DEFIANT_NODE_USL = USLModel(sigma=0.1737, kappa=0.00151)
DEFIANT_CROSS_NODE_USL = USLModel(sigma=0.0387, kappa=0.0)
