"""A facility = cluster + scheduler + shared filesystem + WAN attachment.

The paper's workflow spans two OLCF facilities: ACE *Defiant* (download,
preprocess, inference) and *Frontier* with the Orion filesystem (shipment
target, downstream analytics).  :func:`build_defiant` / :func:`build_frontier`
assemble simulated instances; :class:`Facility` is the object the
Globus-like services (compute endpoints, transfer endpoints) attach to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hpc.contention import (
    DEFIANT_CROSS_NODE_USL,
    DEFIANT_NODE_USL,
    USLModel,
)
from repro.hpc.filesystem import SharedFilesystem
from repro.hpc.machine import ClusterSpec, DEFIANT, FRONTIER
from repro.hpc.slurm import SlurmScheduler
from repro.sim import Simulation
from repro.util.logging import EventLog

__all__ = ["Facility", "build_defiant", "build_frontier"]


@dataclass
class Facility:
    """One computing facility in the multi-facility ecosystem."""

    name: str
    cluster: ClusterSpec
    scheduler: SlurmScheduler
    filesystem: SharedFilesystem
    node_usl: USLModel
    cross_node_usl: USLModel
    wan_bandwidth: float  # facility border bandwidth, bytes/s

    def contention_factor(self, workers_per_node: int, num_nodes: int) -> float:
        """Per-worker rate multiplier for a (workers/node, nodes) layout.

        Composes the on-node USL efficiency at ``workers_per_node`` with
        the cross-node efficiency at ``num_nodes`` — the calibrated model
        behind Figs. 4-5 / Table I (see :mod:`repro.hpc.contention`).
        """
        if workers_per_node < 1 or num_nodes < 1:
            raise ValueError("worker/node counts must be >= 1")
        on_node = self.node_usl.efficiency(workers_per_node)
        cross = self.cross_node_usl.efficiency(num_nodes)
        return float(on_node * cross)


def build_defiant(
    sim: Simulation,
    log: Optional[EventLog] = None,
    allocation_latency: float = 1.5,
) -> Facility:
    """The ACE Defiant testbed (Section IV)."""
    log = log or EventLog()
    return Facility(
        name="defiant",
        cluster=DEFIANT,
        scheduler=SlurmScheduler(sim, DEFIANT, allocation_latency=allocation_latency, log=log),
        filesystem=SharedFilesystem(
            sim,
            "defiant-lustre",
            aggregate_bw=DEFIANT.fs_aggregate_bw,
            per_client_bw=DEFIANT.fs_per_client_bw,
            capacity_bytes=DEFIANT.fs_capacity_bytes,
            log=log,
        ),
        node_usl=DEFIANT_NODE_USL,
        cross_node_usl=DEFIANT_CROSS_NODE_USL,
        wan_bandwidth=12.5e9,
    )


def build_frontier(sim: Simulation, log: Optional[EventLog] = None) -> Facility:
    """Frontier with the Orion Lustre filesystem (shipment target)."""
    log = log or EventLog()
    return Facility(
        name="frontier",
        cluster=FRONTIER,
        scheduler=SlurmScheduler(sim, FRONTIER, log=log),
        filesystem=SharedFilesystem(
            sim,
            "orion",
            aggregate_bw=FRONTIER.fs_aggregate_bw,
            per_client_bw=FRONTIER.fs_per_client_bw,
            capacity_bytes=FRONTIER.fs_capacity_bytes,
            log=log,
        ),
        node_usl=DEFIANT_NODE_USL,
        cross_node_usl=DEFIANT_CROSS_NODE_USL,
        wan_bandwidth=25e9,
    )
