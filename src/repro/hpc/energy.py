"""Node-level energy and carbon accounting.

Section V closes with the goal of "minimizing the carbon footprint of the
climate research activities on the IRI".  This model turns the worker
timelines the system already records into energy numbers: nodes draw
idle power while allocated and busy power while their workers run, so

    energy = P_idle * allocated_node_seconds
           + (P_busy - P_idle) * busy_node_seconds / workers_per_node_cap

Power figures default to a 64-core EPYC 7662 node with 4 MI100s at idle
(GPUs parked for this CPU workload).  Carbon intensity defaults to a
US-grid-like 0.4 kgCO2/kWh.  The elastic-scaling ablation uses this to
price static vs elastic allocations in kWh, not just worker-seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.trace import StepSeries

__all__ = ["PowerModel", "EnergyReport", "energy_from_worker_series"]

JOULES_PER_KWH = 3.6e6


@dataclass(frozen=True)
class PowerModel:
    """Per-node power draw (watts)."""

    idle_watts: float = 250.0      # CPU node floor incl. parked GPUs
    busy_watts: float = 480.0      # all cores streaming
    workers_per_node: int = 8      # the experiment's worker packing
    carbon_kg_per_kwh: float = 0.4

    def __post_init__(self) -> None:
        if self.idle_watts < 0 or self.busy_watts < self.idle_watts:
            raise ValueError("need 0 <= idle <= busy watts")
        if self.workers_per_node < 1:
            raise ValueError("workers per node must be >= 1")

    def node_power(self, busy_workers_on_node: float) -> float:
        """Interpolated node draw for a partial busy-worker load."""
        load = min(max(busy_workers_on_node / self.workers_per_node, 0.0), 1.0)
        return self.idle_watts + (self.busy_watts - self.idle_watts) * load


@dataclass(frozen=True)
class EnergyReport:
    """Energy/carbon for one allocation policy over a time window."""

    policy: str
    node_seconds: float
    worker_seconds: float
    energy_kwh: float
    carbon_kg: float

    def __str__(self) -> str:
        return (
            f"{self.policy}: {self.energy_kwh:.3f} kWh "
            f"({self.carbon_kg * 1000:.1f} gCO2), "
            f"{self.node_seconds:.0f} node-s, {self.worker_seconds:.0f} worker-s"
        )


def energy_from_worker_series(
    policy: str,
    workers: StepSeries,
    start: float,
    end: float,
    power: PowerModel | None = None,
    static_nodes: int | None = None,
) -> EnergyReport:
    """Integrate a worker-count series into energy.

    Elastic policy (``static_nodes=None``): allocated nodes at time t are
    ``ceil(workers(t) / workers_per_node)``.  Static policy: the given
    node count is held for the whole [start, end] window regardless of
    instantaneous demand.
    """
    if end < start:
        raise ValueError("window ends before it starts")
    power = power or PowerModel()
    # Integrate piecewise over the series' change points within the window.
    times = [start] + [t for t in workers.times if start < t < end] + [end]
    energy_j = 0.0
    node_seconds = 0.0
    worker_seconds = 0.0
    for t0, t1 in zip(times, times[1:]):
        span = t1 - t0
        if span <= 0:
            continue
        count = workers.at(t0)
        if static_nodes is not None:
            nodes = static_nodes
        else:
            nodes = int(-(-count // power.workers_per_node)) if count > 0 else 0
        if nodes == 0:
            continue
        per_node_busy = count / nodes if nodes else 0.0
        energy_j += nodes * power.node_power(per_node_busy) * span
        node_seconds += nodes * span
        worker_seconds += count * span
    energy_kwh = energy_j / JOULES_PER_KWH
    return EnergyReport(
        policy=policy,
        node_seconds=node_seconds,
        worker_seconds=worker_seconds,
        energy_kwh=energy_kwh,
        carbon_kg=energy_kwh * power.carbon_kg_per_kwh,
    )
