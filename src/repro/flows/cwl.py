"""A CWL-subset front end for the flows engine.

Section V-A: "our goal is to enable users to define, customize, and
execute EO-ML workflows using high-level languages like the Common
Workflow Language (CWL) or Globus Flows."  This module accepts the CWL
``Workflow`` shape (inputs / steps / outputs, with ``step/output``
source references) and compiles it to a flows-engine definition:

* each step becomes an ``Action`` state whose ``ActionUrl`` is the step's
  ``run`` target and whose result lands under the step's name;
* ``in`` entries reference workflow inputs (``day``) or upstream step
  outputs (``download/files`` -> ``$.download.files``);
* steps are topologically ordered from their data dependencies (CWL's
  implicit DAG), and the chain ends in a ``Succeed`` state;
* workflow ``outputs`` are extracted from the final run document with
  :func:`extract_outputs`.

Scatter, subworkflows, and expressions are out of scope; using them
raises :class:`CwlError` with a pointed message.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

from repro.flows.definition import FlowError, resolve_ref, validate

__all__ = ["CwlError", "cwl_to_flow", "extract_outputs"]


class CwlError(ValueError):
    """Raised for documents outside the supported CWL subset."""


def _check_document(doc: Mapping[str, Any]) -> None:
    if not isinstance(doc, Mapping):
        raise CwlError("CWL document must be a mapping")
    if doc.get("class") != "Workflow":
        raise CwlError(f"only class: Workflow is supported, got {doc.get('class')!r}")
    for key in ("inputs", "steps"):
        if key not in doc or not isinstance(doc[key], Mapping):
            raise CwlError(f"workflow requires a {key!r} mapping")
    for name, step in doc["steps"].items():
        if not isinstance(step, Mapping):
            raise CwlError(f"step {name!r} must be a mapping")
        if "scatter" in step:
            raise CwlError(f"step {name!r}: scatter is not supported in this subset")
        run = step.get("run")
        if not isinstance(run, str):
            raise CwlError(f"step {name!r}: 'run' must name an action provider")
        if not isinstance(step.get("in", {}), Mapping):
            raise CwlError(f"step {name!r}: 'in' must be a mapping")


def _source_to_ref(
    source: Any,
    inputs: Mapping[str, Any],
    steps: Mapping[str, Any],
    context: str,
) -> Any:
    """Translate a CWL source into a flows ``$.`` reference (or literal)."""
    if isinstance(source, Mapping) and "default" in source:
        return source["default"]
    if not isinstance(source, str):
        return source  # literal value
    if "/" in source:
        step_name, _, output = source.partition("/")
        if step_name not in steps:
            raise CwlError(f"{context}: references unknown step {step_name!r}")
        declared = steps[step_name].get("out", [])
        if output not in declared:
            raise CwlError(
                f"{context}: step {step_name!r} does not declare output "
                f"{output!r} (declares {declared})"
            )
        return f"$.{step_name}.{output}"
    if source in inputs:
        return f"$.{source}"
    raise CwlError(f"{context}: source {source!r} is neither an input nor 'step/output'")


def _step_dependencies(step: Mapping[str, Any]) -> List[str]:
    deps = []
    for source in (step.get("in") or {}).values():
        if isinstance(source, str) and "/" in source:
            deps.append(source.partition("/")[0])
    return deps


def _topological_order(steps: Mapping[str, Any]) -> List[str]:
    order: List[str] = []
    state: Dict[str, int] = {}

    def visit(name: str) -> None:
        if state.get(name) == 1:
            raise CwlError(f"workflow steps form a cycle through {name!r}")
        if state.get(name) == 2:
            return
        state[name] = 1
        for dep in _step_dependencies(steps[name]):
            if dep not in steps:
                raise CwlError(f"step {name!r} depends on unknown step {dep!r}")
            visit(dep)
        state[name] = 2
        order.append(name)

    for name in steps:
        visit(name)
    return order


def cwl_to_flow(doc: Mapping[str, Any]) -> Tuple[Dict[str, Any], List[str]]:
    """Compile a CWL Workflow into (flow definition, step order).

    The returned definition passes :func:`repro.flows.definition.validate`;
    run it with a flows engine whose providers match the steps' ``run``
    targets, passing the CWL input values as the run's input document.
    """
    _check_document(doc)
    inputs = doc["inputs"]
    steps = doc["steps"]
    if not steps:
        raise CwlError("workflow has no steps")
    order = _topological_order(steps)

    states: Dict[str, Any] = {}
    for index, name in enumerate(order):
        step = steps[name]
        parameters = {
            key: _source_to_ref(source, inputs, steps, f"step {name!r} input {key!r}")
            for key, source in (step.get("in") or {}).items()
        }
        states[name] = {
            "Type": "Action",
            "ActionUrl": step["run"],
            "Parameters": parameters,
            "ResultPath": name,
            "Next": order[index + 1] if index + 1 < len(order) else "Done",
        }
    states["Done"] = {"Type": "Succeed"}
    definition = {
        "Comment": doc.get("doc", "compiled from CWL"),
        "StartAt": order[0],
        "States": states,
    }
    # Output sources must resolve; check eagerly so bad outputs fail at
    # compile time, not after a full run.
    for out_name, out_spec in (doc.get("outputs") or {}).items():
        source = out_spec.get("outputSource") if isinstance(out_spec, Mapping) else out_spec
        _source_to_ref(source, inputs, steps, f"output {out_name!r}")
    try:
        validate(definition)
    except FlowError as exc:  # pragma: no cover - compiler bug guard
        raise CwlError(f"compiled flow is invalid: {exc}") from exc
    return definition, order


def extract_outputs(doc: Mapping[str, Any], run_document: Mapping[str, Any]) -> Dict[str, Any]:
    """Resolve the workflow's declared outputs from a finished run."""
    outputs = {}
    inputs = doc.get("inputs", {})
    steps = doc.get("steps", {})
    for out_name, out_spec in (doc.get("outputs") or {}).items():
        source = out_spec.get("outputSource") if isinstance(out_spec, Mapping) else out_spec
        ref = _source_to_ref(source, inputs, steps, f"output {out_name!r}")
        outputs[out_name] = resolve_ref(ref, run_document)
    return outputs
