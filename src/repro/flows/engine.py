"""The flow execution engine.

Runs validated definitions on the discrete-event kernel.  Each state
transition costs ``action_latency`` (Fig. 7 measures this hop at ~50 ms:
"the overhead becomes extremely fast, with latency requiring the action to
move execution and termination at approximately 50 milliseconds").

Action providers are callables ``provider(engine, params) -> Event | value``
registered by name (``ActionUrl``).  Returning an Event defers completion
to the simulation; returning a plain value completes immediately (after
the action hop latency).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Mapping, Optional

from repro.flows.definition import FlowError, resolve_ref, validate
from repro.sim import Event, Simulation
from repro.util.logging import EventLog

__all__ = ["RunStatus", "StateRecord", "FlowRun", "FlowsEngine"]


class RunStatus(enum.Enum):
    ACTIVE = "active"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class StateRecord:
    """One executed state: timing for the Fig. 7 latency breakdown."""

    name: str
    state_type: str
    entered_at: float
    exited_at: Optional[float] = None
    action_url: Optional[str] = None

    @property
    def duration(self) -> float:
        if self.exited_at is None:
            raise ValueError(f"state {self.name!r} has not exited")
        return self.exited_at - self.entered_at


@dataclass
class FlowRun:
    """One execution of a flow definition."""

    run_id: int
    label: str
    definition: Mapping[str, Any]
    document: Dict[str, Any]
    status: RunStatus = RunStatus.ACTIVE
    history: List[StateRecord] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: Optional[float] = None
    error: Optional[str] = None
    done: Event = None  # type: ignore[assignment]

    @property
    def duration(self) -> float:
        if self.finished_at is None:
            raise ValueError("run has not finished")
        return self.finished_at - self.started_at

    def mean_hop_latency(self, engine_latency_only: bool = True) -> float:
        """Mean per-state overhead excluding action bodies.

        With ``engine_latency_only`` this is the pure engine hop — the
        ~50 ms Fig. 7 reports.
        """
        hops = [
            record.duration
            for record in self.history
            if record.exited_at is not None and record.state_type in ("Pass", "Succeed", "Fail", "Choice")
        ]
        if not hops:
            raise ValueError("no engine-only states in run history")
        return sum(hops) / len(hops)


ActionProvider = Callable[["FlowsEngine", Dict[str, Any]], Any]


class FlowsEngine:
    """Validates, runs, and monitors flows."""

    def __init__(
        self,
        sim: Simulation,
        action_providers: Optional[Dict[str, ActionProvider]] = None,
        action_latency: float = 0.05,
        log: Optional[EventLog] = None,
    ):
        if action_latency < 0:
            raise ValueError("action latency must be non-negative")
        self.sim = sim
        self.providers: Dict[str, ActionProvider] = dict(action_providers or {})
        self.action_latency = action_latency
        self.log = log or EventLog()
        self.runs: List[FlowRun] = []
        self._next_run = 1

    def register_provider(self, name: str, provider: ActionProvider) -> None:
        self.providers[name] = provider

    def run(
        self,
        definition: Mapping[str, Any],
        input_document: Optional[Mapping[str, Any]] = None,
        label: str = "",
    ) -> FlowRun:
        """Validate and start a run; returns immediately with the FlowRun.

        The run's ``done`` event fires with the final document, or fails
        with :class:`FlowError` if the flow reaches a Fail state or a
        provider raises.
        """
        validate(definition)
        self._check_providers(definition)
        run = FlowRun(
            run_id=self._next_run,
            label=label or f"flow-{self._next_run}",
            definition=definition,
            document=dict(input_document or {}),
            started_at=self.sim.now,
            done=self.sim.event(),
        )
        self._next_run += 1
        self.runs.append(run)
        self.log.emit(self.sim.now, "flows", "start", run_id=run.run_id, label=run.label)
        self.sim.process(self._execute(run), name=f"flow-{run.run_id}")
        return run

    def _check_providers(self, definition: Mapping[str, Any]) -> None:
        for name, state in definition["States"].items():
            if state["Type"] == "Action" and state["ActionUrl"] not in self.providers:
                raise FlowError(
                    f"state {name!r} uses unregistered action {state['ActionUrl']!r}; "
                    f"registered: {sorted(self.providers)}"
                )
            if state["Type"] == "Parallel":
                for branch in state["Branches"]:
                    self._check_providers(branch)
            if state["Type"] == "Map":
                self._check_providers(state["Iterator"])

    # -- execution ------------------------------------------------------------

    def _execute(self, run: FlowRun) -> Generator:
        states = run.definition["States"]
        current = run.definition["StartAt"]
        try:
            while True:
                state = states[current]
                record = StateRecord(
                    name=current,
                    state_type=state["Type"],
                    entered_at=self.sim.now,
                    action_url=state.get("ActionUrl"),
                )
                run.history.append(record)
                if self.action_latency > 0:
                    yield self.sim.timeout(self.action_latency)
                state_type = state["Type"]
                if state_type == "Succeed":
                    record.exited_at = self.sim.now
                    self._finish(run, RunStatus.SUCCEEDED)
                    return
                if state_type == "Fail":
                    record.exited_at = self.sim.now
                    run.error = state.get("Error", f"flow failed at {current!r}")
                    self._finish(run, RunStatus.FAILED)
                    return
                if state_type == "Pass":
                    if "Result" in state:
                        key = state.get("ResultPath", "result")
                        run.document[key] = resolve_ref(state["Result"], run.document)
                elif state_type == "Wait":
                    yield self.sim.timeout(float(state["Seconds"]))
                elif state_type == "Choice":
                    record.exited_at = self.sim.now
                    current = self._choose(state, run.document, current)
                    continue
                elif state_type == "Action":
                    params = resolve_ref(state.get("Parameters", {}), run.document)
                    provider = self.providers[state["ActionUrl"]]
                    retry = state.get("Retry") or {}
                    max_attempts = int(retry.get("MaxAttempts", 1))
                    interval = float(retry.get("IntervalSeconds", 0.0))
                    result = None
                    for attempt in range(1, max_attempts + 1):
                        try:
                            result = provider(self, params)
                            if isinstance(result, Event):
                                result = yield result
                            break
                        except Exception as exc:  # noqa: BLE001 - retried/caught
                            self.log.emit(
                                self.sim.now, "flows", "action_failed",
                                run_id=run.run_id, state=current,
                                attempt=attempt, error=str(exc),
                            )
                            if attempt < max_attempts:
                                if interval > 0:
                                    yield self.sim.timeout(interval)
                                continue
                            catch = state.get("Catch")
                            if catch is None:
                                raise
                            # Catch: record the error and divert.
                            run.document[catch.get("ResultPath", "error")] = str(exc)
                            record.exited_at = self.sim.now
                            current = catch["Next"]
                            break
                    else:  # pragma: no cover - loop always breaks/raises
                        pass
                    if record.exited_at is not None:
                        continue  # caught: already transitioned
                    key = state.get("ResultPath")
                    if key:
                        run.document[key] = result
                elif state_type == "Parallel":
                    branch_runs = [
                        self.run(branch, dict(run.document), label=f"{run.label}/{current}[{index}]")
                        for index, branch in enumerate(state["Branches"])
                    ]
                    results = yield self.sim.all_of([b.done for b in branch_runs])
                    key = state.get("ResultPath")
                    if key:
                        run.document[key] = list(results)
                elif state_type == "Map":
                    items = resolve_ref(state["ItemsPath"], run.document)
                    if not isinstance(items, list):
                        raise FlowError(
                            f"Map state {current!r}: ItemsPath resolved to "
                            f"{type(items).__name__}, expected a list"
                        )
                    concurrency = int(state.get("MaxConcurrency", 0)) or len(items)
                    results: List[Any] = [None] * len(items)
                    for start in range(0, len(items), max(concurrency, 1)):
                        window = items[start : start + concurrency]
                        iteration_runs = []
                        for offset, item in enumerate(window):
                            document = dict(run.document)
                            document["item"] = item
                            document["index"] = start + offset
                            iteration_runs.append(
                                self.run(
                                    state["Iterator"], document,
                                    label=f"{run.label}/{current}[{start + offset}]",
                                )
                            )
                        if iteration_runs:
                            window_results = yield self.sim.all_of(
                                [r.done for r in iteration_runs]
                            )
                            results[start : start + len(window)] = list(window_results)
                    key = state.get("ResultPath")
                    if key:
                        run.document[key] = results
                record.exited_at = self.sim.now
                if state.get("End"):
                    self._finish(run, RunStatus.SUCCEEDED)
                    return
                current = state["Next"]
        except Exception as exc:  # noqa: BLE001 - recorded on the run
            if run.history and run.history[-1].exited_at is None:
                run.history[-1].exited_at = self.sim.now
            run.error = str(exc)
            self._finish(run, RunStatus.FAILED)

    @staticmethod
    def _compare(choice: Mapping[str, Any], value: Any) -> bool:
        if "Equals" in choice:
            return value == choice["Equals"]
        if "NotEquals" in choice:
            return value != choice["NotEquals"]
        if "GreaterThan" in choice:
            return value > choice["GreaterThan"]
        if "GreaterThanOrEqual" in choice:
            return value >= choice["GreaterThanOrEqual"]
        if "LessThan" in choice:
            return value < choice["LessThan"]
        if "LessThanOrEqual" in choice:
            return value <= choice["LessThanOrEqual"]
        raise FlowError(f"choice has no comparator: {dict(choice)!r}")

    def _choose(self, state: Mapping[str, Any], document: Mapping[str, Any], name: str) -> str:
        for choice in state["Choices"]:
            value = resolve_ref(choice["Variable"], document)
            if self._compare(choice, value):
                return choice["Next"]
        default = state.get("Default")
        if default is None:
            raise FlowError(f"Choice state {name!r}: no choice matched and no Default")
        return default

    def _finish(self, run: FlowRun, status: RunStatus) -> None:
        run.status = status
        run.finished_at = self.sim.now
        self.log.emit(
            self.sim.now, "flows", "finish",
            run_id=run.run_id, status=status.value, error=run.error,
        )
        if status is RunStatus.SUCCEEDED:
            run.done.succeed(run.document)
        else:
            run.done.fail(FlowError(run.error or "flow failed"))
