"""Federated flow registry (the paper's pipeline-as-a-service vision).

Section V-A envisions "a shareable and publicly accessible repository of
complete workflows or individual workflow steps, which can be customized
with various components from a community-driven pipeline service".  This
module implements that registry: validated flow definitions published
under versioned names, discoverable by tag, composable by substituting
sub-flows, and serializable through the YAML subset for exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.flows.definition import FlowError, validate
from repro.util.yamlish import dumps as yaml_dumps, loads as yaml_loads

__all__ = ["PublishedFlow", "FlowRegistry"]


@dataclass(frozen=True)
class PublishedFlow:
    """One published, validated flow version."""

    name: str
    version: int
    definition: Mapping[str, Any]
    owner: str
    description: str = ""
    tags: Tuple[str, ...] = ()


class FlowRegistry:
    """Versioned, taggable catalog of flow definitions."""

    def __init__(self) -> None:
        self._flows: Dict[str, List[PublishedFlow]] = {}

    def publish(
        self,
        name: str,
        definition: Mapping[str, Any],
        owner: str,
        description: str = "",
        tags: Optional[List[str]] = None,
    ) -> PublishedFlow:
        """Validate and publish; returns the new version record."""
        validate(definition)
        versions = self._flows.setdefault(name, [])
        flow = PublishedFlow(
            name=name,
            version=len(versions) + 1,
            definition=dict(definition),
            owner=owner,
            description=description,
            tags=tuple(tags or ()),
        )
        versions.append(flow)
        return flow

    def get(self, name: str, version: Optional[int] = None) -> PublishedFlow:
        """Latest (or specific) version of a published flow."""
        if name not in self._flows:
            raise KeyError(f"no published flow {name!r}")
        versions = self._flows[name]
        if version is None:
            return versions[-1]
        if not 1 <= version <= len(versions):
            raise KeyError(f"flow {name!r} has versions 1..{len(versions)}, not {version}")
        return versions[version - 1]

    def search(self, tag: str) -> List[PublishedFlow]:
        """Latest versions carrying ``tag``."""
        return [versions[-1] for versions in self._flows.values() if tag in versions[-1].tags]

    def names(self) -> List[str]:
        return sorted(self._flows)

    # -- composition & exchange ------------------------------------------------

    def compose(
        self,
        name: str,
        base: str,
        overrides: Mapping[str, Mapping[str, Any]],
        owner: str,
    ) -> PublishedFlow:
        """Publish a customization of ``base`` with some states replaced.

        ``overrides`` maps state names to replacement state bodies; the
        composed definition is re-validated, so a broken override fails
        at publish time.
        """
        parent = self.get(base)
        states = {key: dict(value) for key, value in parent.definition["States"].items()}
        for state_name, replacement in overrides.items():
            if state_name not in states:
                raise FlowError(f"override targets unknown state {state_name!r} of {base!r}")
            states[state_name] = dict(replacement)
        composed = dict(parent.definition)
        composed["States"] = states
        return self.publish(name, composed, owner=owner, description=f"derived from {base}")

    def export_yaml(self, name: str, version: Optional[int] = None) -> str:
        flow = self.get(name, version)
        return yaml_dumps(
            {
                "name": flow.name,
                "version": flow.version,
                "owner": flow.owner,
                "description": flow.description,
                "tags": list(flow.tags),
                "definition": dict(flow.definition),
            }
        )

    def import_yaml(self, text: str) -> PublishedFlow:
        doc = yaml_loads(text)
        if not isinstance(doc, dict) or "definition" not in doc:
            raise FlowError("imported document lacks a 'definition'")
        return self.publish(
            doc.get("name", "imported"),
            doc["definition"],
            owner=doc.get("owner", "imported"),
            description=doc.get("description", ""),
            tags=doc.get("tags") or [],
        )
