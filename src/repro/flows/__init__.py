"""Globus-Flows-like automation: definitions, engine, registry."""

from repro.flows.cwl import CwlError, cwl_to_flow, extract_outputs
from repro.flows.definition import FlowError, resolve_ref, validate
from repro.flows.engine import FlowRun, FlowsEngine, RunStatus, StateRecord
from repro.flows.pipeline import (
    plan_providers,
    run_plan_with_flows,
    to_flow_definition,
)
from repro.flows.registry import FlowRegistry, PublishedFlow

__all__ = [
    "to_flow_definition",
    "plan_providers",
    "run_plan_with_flows",
    "validate",
    "resolve_ref",
    "FlowError",
    "cwl_to_flow",
    "extract_outputs",
    "CwlError",
    "FlowsEngine",
    "FlowRun",
    "RunStatus",
    "StateRecord",
    "FlowRegistry",
    "PublishedFlow",
]
