"""Drive a runtime :class:`PipelinePlan` with the Globus-Flows engine.

The workflow's structure lives in the plan (barriers as ``after`` edges,
the monitor/inference window as an ``overlaps`` edge); this adapter
compiles it to a flows state machine — one ``Action`` state per node,
``ActionUrl`` ``runtime:<name>`` — and registers providers that delegate
to :meth:`PlanExecution.run_node`.  The edges are therefore enforced by
the execution (a mis-ordered definition raises ``PlanError`` instead of
silently reordering the pipeline), while the flows engine contributes
what it owns: state-transition latency accounting, run monitoring, and
the Fig. 7 hop-latency measurements — same plan, different engine.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.flows.engine import FlowRun, FlowsEngine
from repro.runtime import PipelinePlan, PlanExecution
from repro.sim import Simulation

__all__ = [
    "ACTION_PREFIX",
    "to_flow_definition",
    "plan_providers",
    "run_plan_with_flows",
]

ACTION_PREFIX = "runtime:"


def to_flow_definition(plan: PipelinePlan) -> Dict[str, Any]:
    """Compile a plan to a flows definition.

    One ``Action`` state per node, chained in the plan's listed order —
    which the plan has already validated against every ``after`` edge.
    Each node's value lands in the flow document under the node name.
    """
    names = plan.names
    if not names:
        raise ValueError("cannot compile an empty plan")
    states: Dict[str, Any] = {}
    for index, name in enumerate(names):
        state: Dict[str, Any] = {
            "Type": "Action",
            "ActionUrl": ACTION_PREFIX + name,
            "ResultPath": name,
        }
        if index + 1 < len(names):
            state["Next"] = names[index + 1]
        else:
            state["End"] = True
        states[name] = state
    return {"StartAt": names[0], "States": states}


def plan_providers(execution: PlanExecution) -> Dict[str, Any]:
    """Action providers delegating each ``runtime:<name>`` to the plan."""

    def make(name: str):
        def provider(engine: FlowsEngine, params: Mapping[str, Any]) -> Any:
            return execution.run_node(name)

        return provider

    return {
        ACTION_PREFIX + node.name: make(node.name) for node in execution.plan.nodes
    }


def run_plan_with_flows(
    plan: PipelinePlan,
    state: Optional[Dict[str, Any]] = None,
    sim: Optional[Simulation] = None,
    engine: Optional[FlowsEngine] = None,
    label: str = "",
) -> Tuple[FlowRun, PlanExecution]:
    """Execute a plan end-to-end on a flows engine; returns (run, execution).

    The node values are in ``execution.state`` (and mirrored into the
    flow document); any concurrency window still open when the flow dies
    is torn down before returning.
    """
    sim = sim or Simulation()
    engine = engine or FlowsEngine(sim)
    execution = PlanExecution(plan, state=state)
    for url, provider in plan_providers(execution).items():
        engine.register_provider(url, provider)
    run = engine.run(to_flow_definition(plan), label=label or "pipeline-plan")
    try:
        sim.run()
    finally:
        execution.close()
    return run, execution
