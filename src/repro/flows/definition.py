"""Flow definitions: a Globus-Flows / Amazon-States-Language-style schema.

A flow is a JSON-able mapping::

    {
      "Comment": "inference pipeline",
      "StartAt": "Crawl",
      "States": {
        "Crawl":   {"Type": "Action", "ActionUrl": "crawler",
                     "Parameters": {"prefix": "$.watch_dir"},
                     "ResultPath": "fresh", "Next": "AnyNew"},
        "AnyNew":  {"Type": "Choice",
                     "Choices": [{"Variable": "$.fresh_count",
                                   "GreaterThan": 0, "Next": "Infer"}],
                     "Default": "Done"},
        "Infer":   {"Type": "Action", "ActionUrl": "compute", ...},
        "Done":    {"Type": "Succeed"}
      }
    }

Supported state types: ``Action``, ``Choice``, ``Wait``, ``Pass``,
``Succeed``, ``Fail``.  ``$.`` strings reference keys of the run's current
document.  :func:`validate` checks structural integrity up front so broken
flows fail at registration, not mid-run — part of the paper's "publishing
clear input and output schemas for each workflow component" goal (S V-A).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

__all__ = ["FlowError", "validate", "STATE_TYPES"]

STATE_TYPES = ("Action", "Choice", "Wait", "Pass", "Succeed", "Fail", "Parallel", "Map")

_COMPARATORS = ("Equals", "NotEquals", "GreaterThan", "GreaterThanOrEqual", "LessThan", "LessThanOrEqual")


class FlowError(ValueError):
    """Raised for invalid flow definitions or runtime flow errors."""


def _check_state(name: str, state: Mapping[str, Any], all_states: Mapping[str, Any]) -> None:
    if not isinstance(state, Mapping):
        raise FlowError(f"state {name!r} must be a mapping")
    state_type = state.get("Type")
    if state_type not in STATE_TYPES:
        raise FlowError(f"state {name!r} has unknown Type {state_type!r}; expected one of {STATE_TYPES}")

    def check_next(key: str = "Next", required: bool = True) -> None:
        target = state.get(key)
        if target is None:
            if required:
                raise FlowError(f"state {name!r} ({state_type}) requires {key!r}")
            return
        if target not in all_states:
            raise FlowError(f"state {name!r} transitions to unknown state {target!r}")

    if state_type == "Action":
        if not isinstance(state.get("ActionUrl"), str):
            raise FlowError(f"Action state {name!r} requires a string 'ActionUrl'")
        if "Parameters" in state and not isinstance(state["Parameters"], Mapping):
            raise FlowError(f"Action state {name!r}: 'Parameters' must be a mapping")
        retry = state.get("Retry")
        if retry is not None:
            if not isinstance(retry, Mapping):
                raise FlowError(f"Action state {name!r}: 'Retry' must be a mapping")
            attempts = retry.get("MaxAttempts")
            if not isinstance(attempts, int) or isinstance(attempts, bool) or attempts < 1:
                raise FlowError(
                    f"Action state {name!r}: Retry.MaxAttempts must be a positive int"
                )
            interval = retry.get("IntervalSeconds", 0)
            if not isinstance(interval, (int, float)) or isinstance(interval, bool) or interval < 0:
                raise FlowError(
                    f"Action state {name!r}: Retry.IntervalSeconds must be >= 0"
                )
        catch = state.get("Catch")
        if catch is not None:
            if not isinstance(catch, Mapping) or "Next" not in catch:
                raise FlowError(f"Action state {name!r}: 'Catch' must be a mapping with 'Next'")
            if catch["Next"] not in all_states:
                raise FlowError(
                    f"Action state {name!r}: Catch.Next targets unknown state "
                    f"{catch['Next']!r}"
                )
        if not state.get("End"):
            check_next()
    elif state_type == "Map":
        items_path = state.get("ItemsPath")
        if not isinstance(items_path, str) or not items_path.startswith("$."):
            raise FlowError(f"Map state {name!r} requires an 'ItemsPath' reference")
        iterator = state.get("Iterator")
        if not isinstance(iterator, Mapping):
            raise FlowError(f"Map state {name!r} requires an 'Iterator' flow")
        try:
            validate(iterator)
        except FlowError as exc:
            raise FlowError(f"Map state {name!r}: iterator: {exc}") from exc
        concurrency = state.get("MaxConcurrency", 0)
        if not isinstance(concurrency, int) or isinstance(concurrency, bool) or concurrency < 0:
            raise FlowError(f"Map state {name!r}: MaxConcurrency must be an int >= 0")
        if not state.get("End"):
            check_next()
    elif state_type == "Parallel":
        branches = state.get("Branches")
        if not isinstance(branches, list) or not branches:
            raise FlowError(f"Parallel state {name!r} requires a non-empty 'Branches' list")
        for index, branch in enumerate(branches):
            if not isinstance(branch, Mapping):
                raise FlowError(f"Parallel state {name!r}: branch {index} must be a flow")
            try:
                validate(branch)
            except FlowError as exc:
                raise FlowError(f"Parallel state {name!r}: branch {index}: {exc}") from exc
        if not state.get("End"):
            check_next()
    elif state_type == "Choice":
        choices = state.get("Choices")
        if not isinstance(choices, list) or not choices:
            raise FlowError(f"Choice state {name!r} requires a non-empty 'Choices' list")
        for index, choice in enumerate(choices):
            if not isinstance(choice, Mapping):
                raise FlowError(f"Choice state {name!r}: choice {index} must be a mapping")
            if "Variable" not in choice:
                raise FlowError(f"Choice state {name!r}: choice {index} lacks 'Variable'")
            comparators = [key for key in choice if key in _COMPARATORS]
            if len(comparators) != 1:
                raise FlowError(
                    f"Choice state {name!r}: choice {index} needs exactly one "
                    f"comparator of {_COMPARATORS}"
                )
            target = choice.get("Next")
            if target not in all_states:
                raise FlowError(f"Choice state {name!r}: choice {index} 'Next' unknown: {target!r}")
        default = state.get("Default")
        if default is not None and default not in all_states:
            raise FlowError(f"Choice state {name!r}: 'Default' unknown: {default!r}")
    elif state_type == "Wait":
        seconds = state.get("Seconds")
        if not isinstance(seconds, (int, float)) or isinstance(seconds, bool) or seconds < 0:
            raise FlowError(f"Wait state {name!r} requires non-negative 'Seconds'")
        if not state.get("End"):
            check_next()
    elif state_type == "Pass":
        if not state.get("End"):
            check_next()
    # Succeed/Fail are terminal and need nothing else.


def validate(definition: Mapping[str, Any]) -> None:
    """Validate a definition; raises :class:`FlowError` with a pointed message."""
    if not isinstance(definition, Mapping):
        raise FlowError("flow definition must be a mapping")
    states = definition.get("States")
    if not isinstance(states, Mapping) or not states:
        raise FlowError("flow requires a non-empty 'States' mapping")
    start = definition.get("StartAt")
    if start not in states:
        raise FlowError(f"'StartAt' ({start!r}) is not a state")
    for name, state in states.items():
        _check_state(name, state, states)
    # Reachability: warn-level issue promoted to an error (a dead state in
    # a shared registry flow is almost certainly a typo).
    reachable = set()
    frontier: List[str] = [start]
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        state = states[name]
        for key in ("Next", "Default"):
            if isinstance(state.get(key), str):
                frontier.append(state[key])
        for choice in state.get("Choices", []) or []:
            if isinstance(choice.get("Next"), str):
                frontier.append(choice["Next"])
        catch = state.get("Catch")
        if isinstance(catch, Mapping) and isinstance(catch.get("Next"), str):
            frontier.append(catch["Next"])
    orphans = sorted(set(states) - reachable)
    if orphans:
        raise FlowError(f"unreachable states: {orphans}")
    # Termination: at least one terminal state must be reachable.
    terminal = [
        name
        for name in reachable
        if states[name]["Type"] in ("Succeed", "Fail") or states[name].get("End")
    ]
    if not terminal:
        raise FlowError("no reachable terminal state (Succeed/Fail/End)")


def resolve_ref(value: Any, document: Mapping[str, Any]) -> Any:
    """Resolve ``$.key`` / ``$.a.b`` references against the run document.

    Non-string values and strings not starting with ``$.`` pass through;
    mappings/lists are resolved recursively.
    """
    if isinstance(value, str) and value.startswith("$."):
        current: Any = document
        for part in value[2:].split("."):
            if not isinstance(current, Mapping) or part not in current:
                raise FlowError(f"reference {value!r} not found in run document")
            current = current[part]
        return current
    if isinstance(value, Mapping):
        return {key: resolve_ref(item, document) for key, item in value.items()}
    if isinstance(value, list):
        return [resolve_ref(item, document) for item in value]
    return value
