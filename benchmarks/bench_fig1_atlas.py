"""Fig. 1 / Section II — AICCA classification quality on synthetic regimes.

Fig. 1 is the paper's science exhibit: spatially coherent, visually
similar cloud textures land in the same class.  This benchmark trains the
atlas on a three-regime corpus, then measures the properties that make
Fig. 1 meaningful: agreement with the generating regimes (ARI), label
stability under rotation (the RICC property), and the cluster-evaluation
gate (silhouette + bootstrap stability).
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.modis.synthesis import synthesize_scene
from repro.ricc import AICCAModel, adjusted_rand_index, transform_batch

TILE = 16
REGIMES = ("closed_cell_sc", "open_cell_sc", "cirrus")


def regime_corpus(per_regime=50, seed=0):
    rng = np.random.default_rng(seed)
    tiles, truth = [], []
    for label, regime in enumerate(REGIMES):
        count = 0
        while count < per_regime:
            scene = synthesize_scene((TILE * 4, TILE * 4), rng, regime=regime)
            stack = np.stack([scene.tau / 30.0, scene.ctp / 1013.0], axis=-1).astype(np.float32)
            for row in range(4):
                for col in range(4):
                    cloud = scene.cloud_mask[row * TILE:(row + 1) * TILE,
                                              col * TILE:(col + 1) * TILE]
                    if cloud.mean() > 0.3 and count < per_regime:
                        tiles.append(stack[row * TILE:(row + 1) * TILE,
                                           col * TILE:(col + 1) * TILE])
                        truth.append(label)
                        count += 1
    return np.stack(tiles), np.array(truth)


@pytest.mark.benchmark(group="fig1")
def test_fig1_atlas_quality(once):
    tiles, truth = regime_corpus()

    def build():
        ri_model, _ = AICCAModel.train(
            tiles, num_classes=len(REGIMES) * 2, latent_dim=6, hidden=(64,),
            epochs=15, lambda_inv=2.0, seed=0,
        )
        plain_model, _ = AICCAModel.train(
            tiles, num_classes=len(REGIMES) * 2, latent_dim=6, hidden=(64,),
            epochs=15, lambda_inv=0.0, seed=0,
        )
        return ri_model, plain_model

    model, plain = once(build)
    labels = model.assign(tiles)
    ari = adjusted_rand_index(labels, truth)

    def rotation_agreement(m):
        base = m.assign(tiles)
        return float((base == m.assign(transform_batch(tiles, 1))).mean())

    ri_agreement = rotation_agreement(model)
    plain_agreement = rotation_agreement(plain)
    report = model.evaluate(tiles, truth=truth)

    print()
    print(render_table(
        ["metric", "value", "meaning"],
        [
            ("ARI vs generating regimes", round(ari, 3), "1 = classes == regimes"),
            ("rotation agreement (RICC)", round(ri_agreement, 3),
             "labels survive rotation"),
            ("rotation agreement (plain AE)", round(plain_agreement, 3),
             "the no-invariance baseline"),
            ("silhouette", round(report.silhouette, 3), "cluster separation"),
            ("bootstrap stability", round(report.stability, 3), "clusters are real"),
        ],
        title=f"Fig. 1 atlas quality ({tiles.shape[0]} tiles, "
              f"{model.num_classes} classes, 3 true regimes)",
    ))
    # The properties Fig. 1 demonstrates:
    assert ari > 0.3                          # classes track physical regimes
    assert ri_agreement > 0.5                 # labels largely survive rotation...
    assert ri_agreement >= plain_agreement    # ...and the RI loss is why
    assert report.stability > 0.3             # clusters are not sampling noise
