"""Fig. 6 — the automation timeline (active workers per stage over time).

Regenerates the figure's three series (3 download workers, 32 preprocess
workers, 1 inference worker) and asserts the properties the paper calls
out: staged allocation, elastic scale-down, and inference overlapping the
preprocessing tail.
"""

import pytest

from repro.analysis import automation_timeline
from repro.core import SimWorkflowParams


@pytest.mark.benchmark(group="fig6")
def test_fig6_automation_timeline(once):
    result = once(
        automation_timeline, SimWorkflowParams(num_granule_sets=40), samples=400
    )
    print()
    print(result.render())
    print({stage: round(ws, 1) for stage, ws in result.worker_seconds.items()},
          "worker-seconds per stage")
    print(f"inference/preprocess overlap: {result.overlap_s:.2f}s")

    # (1) Resource allocation increases after the download phase.
    assert result.peak("download") == 3
    assert result.peak("preprocess") == 32
    assert result.peak("inference") == 1
    # (2) Elastic scale-down: every series returns to zero.
    for stage in ("download", "preprocess", "inference"):
        assert result.series[stage][-1] == 0
    # (3) Concurrent stages: inference starts before preprocessing ends.
    assert result.overlap_s > 0
    # Download and preprocess do NOT overlap (the barrier).
    download = result.series["download"]
    preprocess = result.series["preprocess"]
    assert not ((download > 0) & (preprocess > 0)).any()
