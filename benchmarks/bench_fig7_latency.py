"""Fig. 7 — the end-to-end workflow latency breakdown.

Regenerates Section IV-D's numbers: download launch 5.63 s (Globus
Compute worker launch + LAADS connection + file listing), preprocess
32.80 s (Parsl start + Slurm allocation + tile creation), and the ~50 ms
Globus Flow action hop, plus the inter-stage communication gaps.
"""

import pytest

from repro.analysis import FIG7_LATENCIES, latency_breakdown, render_table


@pytest.mark.benchmark(group="fig7")
def test_fig7_latency_breakdown(once):
    breakdown = once(latency_breakdown)
    paper = {
        "download_launch": FIG7_LATENCIES["download_launch"],
        "preprocess": FIG7_LATENCIES["preprocess"],
        "flow_action_hop": FIG7_LATENCIES["flow_action_hop"],
    }
    print()
    print(render_table(
        ["stage", "ours (s)", "paper (s)"],
        [
            (name, round(seconds, 3), paper.get(name, "-"))
            for name, seconds in breakdown.rows()
        ],
        title="Fig. 7: EO-ML workflow latency breakdown",
    ))
    print(render_table(
        ["hop", "gap (s)"],
        [(name, round(gap, 3)) for name, gap in breakdown.gaps.items()],
        title="inter-stage communication gaps",
    ))
    print(f"makespan: {breakdown.makespan_s:.1f}s")

    assert breakdown.download_launch_s == pytest.approx(
        FIG7_LATENCIES["download_launch"], rel=0.01
    )
    assert breakdown.preprocess_s == pytest.approx(FIG7_LATENCIES["preprocess"], rel=0.35)
    assert breakdown.flow_action_hop_s == pytest.approx(
        FIG7_LATENCIES["flow_action_hop"], abs=0.02
    )
    # The async monitor gap is "inconsequential": tiny relative to stages.
    for name, gap in breakdown.gaps.items():
        assert gap < 0.1 * breakdown.makespan_s, name
