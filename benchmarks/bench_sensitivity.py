"""Calibration-sensitivity benchmark: perturb sigma, watch the plateau.

Companion to the Table I reproduction: the contention plateau is a robust
consequence of *any* substantial on-node contention, not a knife-edge
artifact — halving or 1.5x-ing sigma moves the plateau height but keeps
the saturating shape.
"""

import pytest

from repro.analysis.sensitivity import sigma_sensitivity
from repro.analysis import render_table


@pytest.mark.benchmark(group="ablation")
def test_sigma_sensitivity(once):
    points = once(sigma_sensitivity)
    print()
    rows = []
    for point in points:
        rows.append(
            (
                f"{point.sigma_scale:.2f}x",
                round(point.sigma, 4),
                round(point.throughput[1], 1),
                round(point.throughput[16], 1),
                round(point.throughput[64], 1),
                round(point.plateau_ratio(), 2),
            )
        )
    print(render_table(
        ["sigma scale", "sigma", "1w tiles/s", "16w", "64w", "plateau/1w"],
        rows,
        title="Sensitivity of the Fig. 4a plateau to the contention calibration",
    ))
    baseline = next(p for p in points if p.sigma_scale == 1.0)
    # Paper's plateau ratio: ~37.5 / 10.52 ~ 3.6.
    assert baseline.plateau_ratio() == pytest.approx(3.6, rel=0.2)
    # The plateau *shape* survives +/-50% calibration error: even at
    # 0.5x sigma, 64 workers is nowhere near 64x of one worker.
    loosest = next(p for p in points if p.sigma_scale == 0.5)
    assert loosest.throughput[64] < 0.15 * 64 * loosest.throughput[1]
    # And sigma ordering orders the plateaus.
    ordered = sorted(points, key=lambda p: p.sigma)
    plateaus = [p.throughput[64] for p in ordered]
    assert all(a >= b for a, b in zip(plateaus, plateaus[1:]))
