"""Shared benchmark helpers.

Every figure/table benchmark runs its experiment driver once under
pytest-benchmark timing (the drivers are full experiments, not
microkernels) and prints a paper-vs-measured table so the console output
doubles as the reproduction report.
"""

import pytest


@pytest.fixture(autouse=True)
def _show_tables(request, monkeypatch):
    """Emit benchmark prints even under output capture.

    The printed paper-vs-measured tables ARE the reproduction report, so
    they must land on the console/log without the user passing ``-s``.
    Prints are buffered during the test and flushed at teardown inside an
    explicit capture suspension (writes during the test phase would land
    in the per-test capture buffer and be discarded on pass).
    """
    import builtins
    import sys

    capman = request.config.pluginmanager.getplugin("capturemanager")
    real_print = builtins.print
    buffered = []

    def buffering_print(*args, sep=" ", end="\n", file=None, flush=False):
        if file is None:
            buffered.append(sep.join(str(a) for a in args) + end)
        else:
            real_print(*args, sep=sep, end=end, file=file, flush=flush)

    monkeypatch.setattr(builtins, "print", buffering_print)
    yield
    if not buffered:
        return
    text = "".join(buffered)
    if capman is not None:
        with capman.global_and_fixture_disabled():
            sys.stdout.write(text)
            sys.stdout.flush()
    else:  # pragma: no cover - capture disabled (-s)
        sys.stdout.write(text)


@pytest.fixture
def once(benchmark):
    """Run a driver exactly once under timing and return its result."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return run
