"""Fig. 4 — strong scaling of preprocessing.

(a) completion time vs workers (128 files fixed; sub-linear with on-node
contention; 64->128 workers spans a second node), and
(b) completion time vs nodes (80 files, 8 workers/node; near-linear).
"""

import pytest

from repro.analysis import (
    TABLE1_STRONG_NODES,
    TABLE1_STRONG_WORKERS,
    render_comparison,
    render_table,
    shape_error,
    strong_scaling_nodes,
    strong_scaling_workers,
)


@pytest.mark.benchmark(group="fig4")
def test_fig4a_strong_scaling_workers(once):
    curve = once(strong_scaling_workers, repeats=5)
    print()
    print(render_table(
        ["workers", "mean s", "std s", "tiles/s"],
        [
            (p.concurrency, round(p.mean_seconds, 2), round(p.std_seconds, 2),
             round(p.mean_tiles_per_s, 2))
            for p in curve.points
        ],
        title="Fig. 4a: strong scaling over workers (128 files)",
    ))
    print(render_comparison(
        "workers", curve.throughput_map(), TABLE1_STRONG_WORKERS,
        title="vs Table I (strong, workers)",
    ))
    error = shape_error(curve.throughput_map(), TABLE1_STRONG_WORKERS)
    print(f"max normalized-shape deviation: {error:.3f}")
    assert error < 0.20
    times = curve.completion_map()
    # Sub-linear: 64 workers nowhere near 64x faster than 1.
    assert times[1] / times[64] < 10.0
    # Second node relieves contention.
    assert times[128] < times[64] * 0.7


@pytest.mark.benchmark(group="fig4")
def test_fig4b_strong_scaling_nodes(once):
    curve = once(strong_scaling_nodes, repeats=5)
    print()
    print(render_table(
        ["nodes", "mean s", "std s", "tiles/s"],
        [
            (p.concurrency, round(p.mean_seconds, 2), round(p.std_seconds, 2),
             round(p.mean_tiles_per_s, 2))
            for p in curve.points
        ],
        title="Fig. 4b: strong scaling over nodes (80 files, 8 workers/node)",
    ))
    print(render_comparison(
        "nodes", curve.throughput_map(), TABLE1_STRONG_NODES,
        title="vs Table I (strong, nodes)",
    ))
    error = shape_error(curve.throughput_map(), TABLE1_STRONG_NODES)
    print(f"max normalized-shape deviation: {error:.3f} "
          "(paper's 9-node point is anomalously superlinear)")
    assert error < 0.35
    tput = curve.throughput_map()
    assert 6.0 < tput[10] / tput[1] < 10.0  # near-linear
