"""Perf-regression harness: measure the hot kernels, emit BENCH_*.json.

Runs the three paper-critical kernels (tile extraction, NetCDF codec,
encoder inference) plus a small end-to-end preprocess+inference pipeline,
and writes machine-readable, schema-versioned baselines:

    PYTHONPATH=src python benchmarks/baseline.py              # paper scale
    PYTHONPATH=src python benchmarks/baseline.py --quick      # CI smoke

Outputs ``BENCH_kernels.json`` and ``BENCH_endtoend.json``.  Every entry
carries both raw ``seconds`` and a ``normalized`` value — seconds divided
by the runtime of a fixed calibration matmul measured in the same
process — so baselines recorded on one machine remain comparable on
another.  ``benchmarks/check_regression.py`` consumes these files and
fails on >20 % normalized regression against the committed baseline.

The kernels are timed against *naive reference implementations* (the
pre-optimization code paths) where one exists, so the JSON also records
the speedup the optimized paths deliver on this machine.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from typing import Callable, Dict, List, Optional

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.core.tiles import Tile, extract_tiles, tiles_to_dataset  # noqa: E402
from repro.netcdf import from_bytes, to_bytes  # noqa: E402
from repro.netcdf.writer import canonical_layout, splice_bytes  # noqa: E402
from repro.ricc import AICCAModel, AgglomerativeClustering, RotationInvariantAutoencoder  # noqa: E402

SCHEMA_VERSION = 1

# Paper-scale MODIS swath (Section II-A): 2030 x 1354 pixels, 6 bands.
PAPER_SWATH = dict(lines=2030, pixels=1354, bands=6, tile=128)
QUICK_SWATH = dict(lines=512, pixels=512, bands=6, tile=32)


def _time(fn: Callable[[], object], repeats: int, warmup: int = 1) -> Dict[str, float]:
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {
        "seconds": statistics.median(samples),
        "best": min(samples),
        "runs": repeats,
    }


def _calibrate(repeats: int) -> float:
    """A fixed float64 matmul whose runtime anchors cross-machine ratios."""
    rng = np.random.default_rng(0)
    a = rng.normal(size=(384, 384))
    b = rng.normal(size=(384, 384))
    return _time(lambda: a @ b, repeats=max(repeats, 5), warmup=2)["seconds"]


def _swath(lines: int, pixels: int, bands: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    radiance = rng.normal(size=(bands, lines, pixels)).astype(np.float32)
    cloud = rng.uniform(size=(lines, pixels)) < 0.6
    # A coastline, not per-pixel noise: the left quarter of the swath is
    # land so ocean tiles exist (selection requires land_fraction == 0).
    land = np.zeros((lines, pixels), dtype=bool)
    land[:, : pixels // 4] = True
    lat = rng.uniform(-60, 60, size=(lines, pixels))
    lon = rng.uniform(-180, 180, size=(lines, pixels))
    tau = rng.uniform(0, 30, size=(lines, pixels))
    ctp = rng.uniform(200, 1000, size=(lines, pixels))
    return radiance, cloud, land, lat, lon, tau, ctp


def _naive_extract_tiles(
    radiance, cloud_mask, land_mask, latitude, longitude, tile_size,
    optical_thickness=None, cloud_top_pressure=None,
    cloud_threshold=0.3, max_land_fraction=0.0, source="",
) -> List[Tile]:
    """The pre-optimization extraction: materialize the full-swath tile
    cube, then loop over selected tiles in Python.  Kept as the speedup
    yardstick for the selection-first implementation."""

    def view(field_2d, tile):
        rows = field_2d.shape[0] // tile
        cols = field_2d.shape[1] // tile
        return field_2d[: rows * tile, : cols * tile].reshape(
            rows, tile, cols, tile
        ).swapaxes(1, 2)

    bands = radiance.shape[0]
    cloud_tiles = view(cloud_mask.astype(np.float32), tile_size)
    land_tiles = view(land_mask.astype(np.float32), tile_size)
    cloud_frac = cloud_tiles.mean(axis=(2, 3))
    land_frac = land_tiles.mean(axis=(2, 3))
    selected = (land_frac <= max_land_fraction + 1e-12) & (cloud_frac > cloud_threshold)
    lat_tiles = view(latitude.astype(np.float64), tile_size)
    lon_tiles = view(longitude.astype(np.float64), tile_size)
    band_tiles = np.stack([view(radiance[b], tile_size) for b in range(bands)], axis=-1)
    tau_tiles = (
        view(optical_thickness.astype(np.float64), tile_size)
        if optical_thickness is not None else None
    )
    ctp_tiles = (
        view(cloud_top_pressure.astype(np.float64), tile_size)
        if cloud_top_pressure is not None else None
    )
    out: List[Tile] = []
    for row, col in zip(*np.nonzero(selected)):
        cloudy = cloud_tiles[row, col] > 0.5
        mean_tau = (
            float(tau_tiles[row, col][cloudy].mean())
            if tau_tiles is not None and cloudy.any() else float("nan")
        )
        mean_ctp = (
            float(ctp_tiles[row, col][cloudy].mean())
            if ctp_tiles is not None and cloudy.any() else float("nan")
        )
        out.append(Tile(
            data=np.ascontiguousarray(band_tiles[row, col]).astype(np.float32),
            row=int(row), col=int(col),
            latitude=float(lat_tiles[row, col].mean()),
            longitude=float(lon_tiles[row, col].mean()),
            cloud_fraction=float(cloud_frac[row, col]),
            mean_optical_thickness=mean_tau,
            mean_cloud_top_pressure=mean_ctp,
            source=source,
        ))
    return out


def bench_kernels(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    swath = QUICK_SWATH if quick else PAPER_SWATH
    radiance, cloud, land, lat, lon, tau, ctp = _swath(
        swath["lines"], swath["pixels"], swath["bands"]
    )
    tile = swath["tile"]
    results: Dict[str, Dict[str, float]] = {}

    # --- tile extraction: selection-first vs naive full-swath copy
    args = (radiance, cloud, land, lat, lon, tile)
    kwargs = dict(optical_thickness=tau, cloud_top_pressure=ctp)
    results["extract_tiles"] = _time(lambda: extract_tiles(*args, **kwargs), repeats)
    results["extract_tiles_naive"] = _time(
        lambda: _naive_extract_tiles(*args, **kwargs), max(1, repeats // 2)
    )
    results["extract_tiles_naive"]["reference"] = 1.0
    results["extract_tiles"]["speedup_vs_naive"] = (
        results["extract_tiles_naive"]["seconds"] / results["extract_tiles"]["seconds"]
    )
    tiles = extract_tiles(*args, **kwargs)
    results["extract_tiles"]["tiles_selected"] = float(len(tiles))

    # --- NetCDF codec round-trip on the resulting tile file
    ds = tiles_to_dataset(tiles)
    raw = to_bytes(ds)
    results["netcdf_to_bytes"] = _time(lambda: to_bytes(ds), repeats)
    results["netcdf_from_bytes"] = _time(lambda: from_bytes(raw), repeats)
    results["netcdf_to_bytes"]["payload_mb"] = len(raw) / 1e6

    # --- label append: header-rewrite splice vs full re-serialization
    parsed = from_bytes(raw)
    labels = np.zeros(parsed.num_records, dtype=np.int32)

    def label_splice():
        layout = canonical_layout(parsed, raw)
        parsed["label"].data[:] = labels
        return splice_bytes(parsed, raw, layout, ("label",))

    def label_full():
        parsed["label"].data[:] = labels
        return to_bytes(parsed)

    results["label_append_splice"] = _time(label_splice, repeats)
    results["label_append_full"] = _time(label_full, max(1, repeats // 2))
    results["label_append_full"]["reference"] = 1.0
    results["label_append_splice"]["speedup_vs_full"] = (
        results["label_append_full"]["seconds"] / results["label_append_splice"]["seconds"]
    )

    # --- encoder inference: float32 fast path vs float64 upcast
    hidden = (128, 32) if quick else (256, 64)
    batch_n = 256 if quick else 1024
    tile_hw = 16
    model = RotationInvariantAutoencoder((tile_hw, tile_hw, 6), latent_dim=16, hidden=hidden)
    rng = np.random.default_rng(0)
    batch32 = rng.normal(size=(batch_n, tile_hw, tile_hw, 6)).astype(np.float32)
    batch64 = batch32.astype(np.float64)
    results["encoder_inference_float32"] = _time(lambda: model.encode(batch32), repeats)
    results["encoder_inference_float64"] = _time(lambda: model.encode(batch64), repeats)
    results["encoder_inference_float32"]["speedup_vs_float64"] = (
        results["encoder_inference_float64"]["seconds"]
        / results["encoder_inference_float32"]["seconds"]
    )
    return results


def bench_endtoend(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    """Preprocess -> label pipeline throughput on a synthetic swath."""
    swath = QUICK_SWATH if quick else PAPER_SWATH
    radiance, cloud, land, lat, lon, tau, ctp = _swath(
        swath["lines"], swath["pixels"], swath["bands"], seed=1
    )
    tile = swath["tile"]
    tiles = extract_tiles(
        radiance, cloud, land, lat, lon, tile,
        optical_thickness=tau, cloud_top_pressure=ctp,
    )
    ds = tiles_to_dataset(tiles)
    raw = to_bytes(ds)

    # A tiny frozen model: random-seeded encoder + fitted centroids.
    hw = 16
    train = np.random.default_rng(2).normal(size=(64, hw, hw, swath["bands"])).astype(np.float32)
    encoder = RotationInvariantAutoencoder((hw, hw, swath["bands"]), latent_dim=8, hidden=(64,))
    clustering = AgglomerativeClustering(n_clusters=8)
    clustering.fit(encoder.encode(train.astype(np.float64)))
    model = AICCAModel(encoder, clustering)

    # Tile cubes are (tile, tile, bands); the encoder sees hw x hw crops
    # so the pipeline exercises realistic per-file tile counts.
    cube = from_bytes(raw)["radiance"].data
    crops = np.asarray(cube[:, :hw, :hw, :], dtype=np.float32)

    def pipeline():
        extracted = extract_tiles(
            radiance, cloud, land, lat, lon, tile,
            optical_thickness=tau, cloud_top_pressure=ctp,
        )
        packed = to_bytes(tiles_to_dataset(extracted))
        parsed = from_bytes(packed)
        labels = model.assign(crops)
        layout = canonical_layout(parsed, packed)
        parsed["label"].data[:] = labels.astype(np.int32)
        return splice_bytes(parsed, packed, layout, ("label",))

    results: Dict[str, Dict[str, float]] = {}
    results["preprocess_label_pipeline"] = _time(pipeline, repeats)
    results["preprocess_label_pipeline"]["tiles_per_second"] = (
        len(tiles) / results["preprocess_label_pipeline"]["seconds"]
    )
    results["preprocess_label_pipeline"]["tiles"] = float(len(tiles))
    return results


def bench_makespan(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    """End-to-end makespan: the streaming topology vs the barrier one.

    Runs the *real* five-stage workflow twice over a synthetic archive
    whose per-granule fetch carries a fixed latency (standing in for the
    LAADS wide-area transfer the paper's facilities pay).  Barrier mode
    sums the stages; streaming mode overlaps them, so the ratio is the
    pipelining win.  The streaming entry's ``normalized`` value is that
    ratio (streaming seconds / barrier seconds, measured in the same
    process) rather than a calibration quotient — the run is
    sleep-dominated, so a compute-anchored ratio would vary with the
    machine while this one cannot.
    """
    import shutil
    import tempfile

    from repro.core import EOMLWorkflow, load_config
    from repro.modis import MINI_SWATH, LaadsArchive

    # Sized so wide-area latency and local compute are comparable —
    # the regime where pipelining pays (either extreme hides it).  The
    # fetch delay models the LAADS transfer; the seeded worker_stall
    # faults model per-scene preprocess and per-file inference compute
    # (the synthetic kernels alone are too fast to overlap anything).
    # Both timed modes share the identical plan, so the injected latency
    # cancels out of nothing — it IS the work being pipelined.
    granules = 4 if quick else 6
    fetch_delay = 0.09 if quick else 0.08
    preprocess_stall = 0.25
    inference_stall = 0.10

    class SlowArchive(LaadsArchive):
        def fetch(self, ref, *args, **kwargs):
            time.sleep(fetch_delay)
            return super().fetch(ref, *args, **kwargs)

    def build(root: str, model) -> EOMLWorkflow:
        config = load_config({
            "archive": {"start_date": "2022-01-01",
                        "max_granules_per_day": granules, "seed": 3},
            "paths": {
                "staging": os.path.join(root, "raw"),
                "preprocessed": os.path.join(root, "tiles"),
                "transfer_out": os.path.join(root, "outbox"),
                "destination": os.path.join(root, "orion"),
                "quarantine": os.path.join(root, "quarantine"),
            },
            "download": {"workers": 2},
            "preprocess": {"workers": 1},
            "inference": {"workers": 1, "poll_interval": 0.05},
            "journal": {"enabled": False},
            "chaos": {"seed": 0, "faults": [
                {"stage": "preprocess", "kind": "worker_stall",
                 "rate": 1.0, "times": 1, "latency": preprocess_stall},
                {"stage": "inference", "kind": "worker_stall",
                 "rate": 1.0, "times": 1, "latency": inference_stall},
            ]},
        })
        return EOMLWorkflow(
            config, model=model, archive=SlowArchive(seed=3, swath=MINI_SWATH)
        )

    # One untimed bootstrap run supplies the trained model both timed
    # modes share, so bootstrap training cost cancels out of the ratio.
    warm_root = tempfile.mkdtemp(prefix="bench_makespan_warm_")
    try:
        warm = build(warm_root, model=None)
        warm.run(provenance=False, streaming=False)
        model = warm.model
    finally:
        shutil.rmtree(warm_root, ignore_errors=True)

    last_report = {}

    def makespan(streaming: bool) -> None:
        root = tempfile.mkdtemp(prefix="bench_makespan_")
        try:
            report = build(root, model=model).run(
                provenance=False, streaming=streaming
            )
            if streaming:
                last_report["stream"] = report.stream
                last_report["overlap"] = report.stage_overlap_seconds
        finally:
            shutil.rmtree(root, ignore_errors=True)

    runs = max(2, repeats // 2)
    results: Dict[str, Dict[str, float]] = {}
    results["endtoend_makespan_barrier"] = _time(
        lambda: makespan(False), runs, warmup=0
    )
    results["endtoend_makespan_barrier"]["reference"] = 1.0
    results["endtoend_makespan_streaming"] = _time(
        lambda: makespan(True), runs, warmup=0
    )
    barrier = results["endtoend_makespan_barrier"]["seconds"]
    streaming = results["endtoend_makespan_streaming"]["seconds"]
    entry = results["endtoend_makespan_streaming"]
    entry["normalized"] = streaming / barrier
    entry["speedup_vs_barrier"] = barrier / streaming
    edges = (last_report.get("stream") or {}).get("edges", {})
    entry["max_queue_depth"] = float(max(
        (stats["max_depth"] for stats in edges.values()), default=0
    ))
    entry["producer_stall_seconds"] = float(sum(
        stats["producer_stall_seconds"] for stats in edges.values()
    ))
    entry["stage_overlap_seconds"] = float(sum(
        (last_report.get("overlap") or {}).values()
    ))
    return results


def bench_campaign(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    """Campaign scale-out: one multi-day plan at 1 vs 4 worker processes.

    Models the paper's production campaign — 288 MODIS granules per day,
    day after day — scaled so each synthetic granule stands in for a
    slab of that stream (288 / granules_per_day real granules), with the
    slab's aggregate wide-area transfer collapsed into a fixed
    per-granule fetch delay and its per-scene compute into seeded
    ``worker_stall`` faults.  The plan is latency-dominated by
    construction: workers wait on the (simulated) wide area and remote
    facility far more than on local cycles, which is the paper's regime
    and also what makes the measurement machine-independent — a 1-core
    CI runner overlaps sleeps exactly as well as a 64-core one.

    Both modes run the identical plan through the real workflow; the
    only difference is ``runtime.workers`` (1 = in-process sequential
    path, 4 = the sharded multi-process pool).  The scale-out entry's
    ``normalized`` value is the makespan ratio (4-worker seconds /
    1-worker seconds, measured in the same process); its reciprocal is
    the speedup-vs-cores the regression gate holds — the acceptance
    floor is 2.5x at 4 workers (parallel efficiency >= 0.625).
    """
    import shutil
    import tempfile

    from repro.core import EOMLWorkflow, load_config
    from repro.modis import MINI_SWATH, LaadsArchive

    days = 2 if quick else 3
    granules = 4 if quick else 6
    workers = 4
    # Delays sized so injected latency dominates local compute (granule
    # synthesis costs ~30 ms of CPU per file, which a 1-core runner
    # cannot overlap) — the serial run must be >= ~80 % sleep for the
    # 4-worker mode to clear the 2.5x acceptance floor machine-
    # independently.
    fetch_delay = 0.2           # the slab's wide-area transfer
    preprocess_stall = 0.3      # per-scene tiling compute, once per key
    inference_stall = 0.15      # per-tile-file remote inference latency

    class SlowArchive(LaadsArchive):
        # Local subclass is fine: worker processes fork, so the archive
        # crosses by inheritance, never by pickle-by-reference.
        def fetch(self, ref, *args, **kwargs):
            time.sleep(fetch_delay)
            return super().fetch(ref, *args, **kwargs)

    def build(root: str, model, pool_workers: int) -> EOMLWorkflow:
        config = load_config({
            "archive": {"start_date": "2022-01-01",
                        "end_date": f"2022-01-{days:02d}",
                        "max_granules_per_day": granules, "seed": 3},
            "paths": {
                "staging": os.path.join(root, "raw"),
                "preprocessed": os.path.join(root, "tiles"),
                "transfer_out": os.path.join(root, "outbox"),
                "destination": os.path.join(root, "orion"),
                "quarantine": os.path.join(root, "quarantine"),
            },
            # Stage-level pools pinned to 1 so the serial mode really is
            # serial: every overlap the 4-worker mode wins comes from
            # runtime.workers, nothing else.
            "download": {"workers": 1},
            "preprocess": {"workers": 1},
            "inference": {"workers": 1, "poll_interval": 0.05},
            "runtime": {"workers": pool_workers},
            "journal": {"enabled": False},
            "chaos": {"seed": 0, "faults": [
                {"stage": "preprocess", "kind": "worker_stall",
                 "rate": 1.0, "times": 1, "latency": preprocess_stall},
                {"stage": "inference", "kind": "worker_stall",
                 "rate": 1.0, "times": 1, "latency": inference_stall},
            ]},
        })
        return EOMLWorkflow(
            config, model=model, archive=SlowArchive(seed=3, swath=MINI_SWATH)
        )

    # One untimed bootstrap run (no delays, one day) supplies the model
    # both timed modes share, so training cost cancels out of the ratio.
    warm_root = tempfile.mkdtemp(prefix="bench_campaign_warm_")
    try:
        warm = EOMLWorkflow(load_config({
            "archive": {"start_date": "2022-01-01",
                        "max_granules_per_day": 2, "seed": 3},
            "paths": {
                "staging": os.path.join(warm_root, "raw"),
                "preprocessed": os.path.join(warm_root, "tiles"),
                "transfer_out": os.path.join(warm_root, "outbox"),
                "destination": os.path.join(warm_root, "orion"),
                "quarantine": os.path.join(warm_root, "quarantine"),
            },
            "journal": {"enabled": False},
        }), archive=LaadsArchive(seed=3, swath=MINI_SWATH))
        warm.run(provenance=False)
        model = warm.model
    finally:
        shutil.rmtree(warm_root, ignore_errors=True)

    last: Dict[str, object] = {}

    def campaign(pool_workers: int) -> None:
        root = tempfile.mkdtemp(prefix="bench_campaign_")
        try:
            report = build(root, model, pool_workers).run(provenance=False)
            if report.errors:
                raise RuntimeError(
                    f"campaign run failed: {report.errors[:3]}"
                )
            last[pool_workers] = report.scaleout
        finally:
            shutil.rmtree(root, ignore_errors=True)

    runs = max(2, repeats // 2)
    results: Dict[str, Dict[str, float]] = {}
    results["campaign_scaleout_serial"] = _time(
        lambda: campaign(1), runs, warmup=0
    )
    serial_entry = results["campaign_scaleout_serial"]
    serial_entry["reference"] = 1.0
    serial_entry["days"] = float(days)
    serial_entry["granules_per_day"] = float(granules)
    serial_entry["real_granules_per_synthetic"] = 288.0 / granules

    results["campaign_scaleout"] = _time(
        lambda: campaign(workers), runs, warmup=0
    )
    serial = serial_entry["seconds"]
    pooled = results["campaign_scaleout"]["seconds"]
    entry = results["campaign_scaleout"]
    entry["workers"] = float(workers)
    entry["normalized"] = pooled / serial
    entry["speedup_vs_1worker"] = serial / pooled
    entry["parallel_efficiency"] = (serial / pooled) / workers
    scaleout = last.get(workers) or {}
    entry["pool_units_executed"] = float(scaleout.get("units_executed", 0))
    entry["pool_workers_launched"] = float(scaleout.get("workers_launched", 0))
    entry["pool_requeues"] = float(scaleout.get("requeues", 0))
    return results


def bench_cache(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    """Content-addressed cache: a two-run, two-branch campaign on one CAS.

    Run 1 executes a {ricc, heuristic} fan-out campaign against an empty
    store (every object is fetched, tiled, and shipped for real, then
    published into the CAS); run 2 executes the *same* campaign in a
    fresh run directory against the now-warm store.  The quantity the
    regression gate holds is the bytes-moved ratio (run 2 / run 1, where
    bytes moved = archive bytes fetched + shipment bytes transferred) —
    machine-independent like the other end-to-end ratios, because it
    counts bytes rather than seconds.

    Acceptance floors enforced here (the bench itself fails if the cache
    stops delivering): run 2's object-level hit rate >= 80 % and its
    bytes-moved reduction >= 60 %.
    """
    import shutil
    import tempfile

    from repro.core import EOMLWorkflow, load_config
    from repro.modis import MINI_SWATH, LaadsArchive

    granules = 2 if quick else 3

    def run_once(root: str, cas_dir: str):
        config = load_config({
            "archive": {"start_date": "2022-01-01",
                        "max_granules_per_day": granules, "seed": 3},
            "inference": {"workers": 1, "poll_interval": 0.05,
                          "models": ["ricc", "heuristic"]},
            "paths": {
                "staging": os.path.join(root, "raw"),
                "preprocessed": os.path.join(root, "tiles"),
                "transfer_out": os.path.join(root, "outbox"),
                "destination": os.path.join(root, "orion"),
                "quarantine": os.path.join(root, "quarantine"),
            },
            "journal": {"enabled": False},
            "cache": {"enabled": True, "dir": cas_dir},
        })
        report = EOMLWorkflow(
            config, archive=LaadsArchive(seed=3, swath=MINI_SWATH)
        ).run(provenance=False)
        if report.errors:
            raise RuntimeError(f"cache campaign run failed: {report.errors[:3]}")
        return report

    def bytes_moved(report) -> int:
        shipped = report.shipment.nbytes if report.shipment else 0
        return int(report.download.fetched_bytes) + int(shipped)

    # The cold pass owns the lifecycle: a fresh base directory (and a
    # fresh, empty CAS) per repeat.  The warm pass replays the campaign
    # in a new run directory against whatever CAS the last cold pass
    # left behind — which is exactly the second run of a campaign.
    state: Dict[str, object] = {}

    def cold() -> None:
        if state.get("base"):
            shutil.rmtree(state["base"], ignore_errors=True)
        base = tempfile.mkdtemp(prefix="bench_cache_")
        state["base"] = base
        state["cas"] = os.path.join(base, "cas")
        state["runs"] = 0
        state["cold_report"] = run_once(os.path.join(base, "run0"), state["cas"])

    def warm() -> None:
        state["runs"] = int(state.get("runs", 0)) + 1
        root = os.path.join(str(state["base"]), f"run{state['runs']}")
        state["warm_report"] = run_once(root, str(state["cas"]))

    runs = max(2, repeats // 2)
    results: Dict[str, Dict[str, float]] = {}
    try:
        results["campaign_cache_cold"] = _time(cold, runs, warmup=0)
        cold_entry = results["campaign_cache_cold"]
        cold_entry["reference"] = 1.0
        cold_entry["granules_per_day"] = float(granules)
        cold_entry["branches"] = 2.0
        cold_bytes = bytes_moved(state["cold_report"])
        cold_entry["bytes_moved"] = float(cold_bytes)

        results["campaign_cache"] = _time(warm, runs, warmup=0)
        entry = results["campaign_cache"]
        warm_report = state["warm_report"]
        warm_bytes = bytes_moved(warm_report)
        hits = int(warm_report.cache["hits"])
        misses = int(warm_report.cache["misses"])
        hit_rate = hits / (hits + misses) if hits + misses else 0.0
        ratio = warm_bytes / cold_bytes if cold_bytes else 1.0
        entry["bytes_moved"] = float(warm_bytes)
        entry["bytes_saved"] = float(warm_report.cache["bytes_saved"])
        entry["hits"] = float(hits)
        entry["misses"] = float(misses)
        entry["hit_rate"] = hit_rate
        entry["bytes_moved_ratio"] = ratio
        entry["normalized"] = ratio
        # The acceptance floors the issue pins: the warm run must hit on
        # >= 80 % of object lookups and move >= 60 % fewer bytes.
        if hit_rate < 0.8:
            raise RuntimeError(
                f"campaign_cache hit rate {hit_rate:.2f} below the 0.80 floor"
            )
        if ratio > 0.4:
            raise RuntimeError(
                f"campaign_cache moved {ratio:.0%} of cold-run bytes; "
                f"floor is a 60% reduction (ratio <= 0.40)"
            )
    finally:
        if state.get("base"):
            shutil.rmtree(str(state["base"]), ignore_errors=True)
    return results


def bench_multi_instrument(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    """Instrument x model fan-out: a {modis, abi} x {ricc, heuristic}
    plan vs the classic single-branch pipeline on the same workload.

    The fan-out run does strictly more physical work — two instruments'
    granule streams, four model bootstraps, four label passes — so the
    quantity the regression gate holds is the makespan *ratio* of the
    2 x 2 plan to the single-branch plan (machine-independent, like the
    streaming and scale-out entries).  Branch expansion, per-branch
    config derivation, and registry dispatch all sit on that ratio: if
    plumbing overhead creeps in, the ratio grows past the gate even
    though both absolute times move with the machine.
    """
    import shutil
    import tempfile

    from repro.core import EOMLWorkflow, load_config
    from repro.modis import MINI_SWATH, LaadsArchive

    granules = 1 if quick else 2

    def run(fanout: bool) -> None:
        root = tempfile.mkdtemp(prefix="bench_multi_instrument_")
        try:
            archive = {"start_date": "2022-01-01",
                       "max_granules_per_day": granules, "seed": 3}
            inference = {"workers": 1, "poll_interval": 0.05}
            if fanout:
                archive["instruments"] = ["modis", "abi"]
                inference["models"] = ["ricc", "heuristic"]
            config = load_config({
                "archive": archive,
                "inference": inference,
                "paths": {
                    "staging": os.path.join(root, "raw"),
                    "preprocessed": os.path.join(root, "tiles"),
                    "transfer_out": os.path.join(root, "outbox"),
                    "destination": os.path.join(root, "orion"),
                    "quarantine": os.path.join(root, "quarantine"),
                },
                "journal": {"enabled": False},
            })
            report = EOMLWorkflow(
                config, archive=LaadsArchive(seed=3, swath=MINI_SWATH)
            ).run(provenance=False)
            if report.errors:
                raise RuntimeError(f"fan-out run failed: {report.errors[:3]}")
        finally:
            shutil.rmtree(root, ignore_errors=True)

    runs = max(2, repeats // 2)
    results: Dict[str, Dict[str, float]] = {}
    results["multi_instrument_single"] = _time(
        lambda: run(False), runs, warmup=0
    )
    single_entry = results["multi_instrument_single"]
    single_entry["reference"] = 1.0
    single_entry["granules_per_day"] = float(granules)

    results["multi_instrument"] = _time(lambda: run(True), runs, warmup=0)
    entry = results["multi_instrument"]
    entry["instruments"] = 2.0
    entry["models"] = 2.0
    entry["branches"] = 4.0
    single = single_entry["seconds"]
    entry["normalized"] = entry["seconds"] / single
    entry["fanout_vs_single"] = entry["seconds"] / single
    entry["per_branch_ratio"] = entry["seconds"] / (4.0 * single)
    return results


def bench_control_plane(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    """Control-plane service under a 200-concurrent-client burst.

    Spins up the real in-process :class:`ControlPlaneServer` (SQLite
    store, stdlib threaded HTTP) and hammers it the way the load test
    does (``tests/server/test_load.py``): 200 clients, each submitting a
    run and driving one lease-protocol round, then a small drainer pool
    finishing every unit.  No stage work executes — this times the
    *protocol* (submit validation + unit-graph derivation, leasing,
    heartbeats, completion) which is what a multi-facility deployment
    pays per work-unit.

    Client-side per-request latencies give exact p95 (the server's own
    histogram is bucketed too coarsely to gate on).  The entry's
    ``normalized`` value is the contention ratio: per-request seconds
    under the concurrent burst divided by per-request seconds measured
    serially in the same process — machine-stable, and it degrades
    exactly when concurrency handling regresses (lock contention, an
    accidentally quadratic lease sweep), which is what the gate is for.
    """
    import shutil
    import tempfile
    import threading
    from concurrent.futures import ThreadPoolExecutor

    from repro.server import ControlPlaneClient, ControlPlaneServer

    clients = 200  # the load-test floor, both modes
    units_per_run = 5  # the five-stage plan
    serial_runs = max(2, repeats // 2)

    root = tempfile.mkdtemp(prefix="bench_control_plane_")
    raw = {
        "archive": {"start_date": "2022-01-01",
                    "max_granules_per_day": 1, "seed": 3},
        "paths": {
            "staging": os.path.join(root, "data", "raw"),
            "preprocessed": os.path.join(root, "data", "tiles"),
            "transfer_out": os.path.join(root, "data", "outbox"),
            "destination": os.path.join(root, "data", "orion"),
            "quarantine": os.path.join(root, "data", "quarantine"),
        },
        "journal": {"dir": os.path.join(root, "data", "journal")},
    }

    samples: List[float] = []
    lock = threading.Lock()

    def timed(fn, *args, **kwargs):
        start = time.perf_counter()
        out = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        with lock:
            samples.append(elapsed)
        return out

    def drain(client: ControlPlaneClient, name: str) -> None:
        while True:
            lease = timed(client.lease, name)
            if lease is None:
                return
            timed(client.complete, lease.lease_id, result={"by": name})

    results: Dict[str, Dict[str, float]] = {}
    try:
        with ControlPlaneServer() as server:
            url = server.url

            # --- serial yardstick: one client, same request mix, no rivals.
            serial_client = ControlPlaneClient(url, timeout=60.0)
            serial_start = time.perf_counter()
            for index in range(serial_runs):
                run = timed(serial_client.submit, raw, name=f"serial-{index}")
                timed(serial_client.run, run.run_id)
                drain(serial_client, "serial-agent")
            serial_seconds = time.perf_counter() - serial_start
            serial_requests = len(samples)
            serial_per_request = serial_seconds / serial_requests
            samples.clear()

            # --- the burst: every client submits, polls, and runs one
            # lease round, all at once.
            def one_client(index: int) -> None:
                client = ControlPlaneClient(url, timeout=60.0, retries=5)
                run = timed(client.submit, raw, name=f"bench-{index}")
                timed(client.run, run.run_id)
                lease = timed(client.lease, f"agent-{index}")
                if lease is not None:
                    timed(client.heartbeat, lease.lease_id)
                    timed(client.complete, lease.lease_id, result={"by": index})

            burst_start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=clients) as pool:
                list(pool.map(one_client, range(clients)))
            burst_seconds = time.perf_counter() - burst_start
            with lock:
                burst_samples = list(samples)

            # --- drain the backlog the burst left behind.
            with ThreadPoolExecutor(max_workers=8) as pool:
                list(pool.map(
                    lambda name: drain(ControlPlaneClient(url, timeout=60.0), name),
                    [f"drainer-{i}" for i in range(8)],
                ))
            total_seconds = time.perf_counter() - burst_start

            stats = server.store.stats()
            completed = stats["units"].get("completed", 0)
            expected = units_per_run * (clients + serial_runs)
            if completed != expected:
                raise RuntimeError(
                    f"control-plane bench lost work: {completed} units "
                    f"completed, expected {expected}"
                )
    finally:
        shutil.rmtree(root, ignore_errors=True)

    ordered = sorted(burst_samples)
    p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
    mean_latency = sum(ordered) / len(ordered)
    # Throughput view of the burst: wall seconds per answered request.
    # Relative to the serial yardstick this is the contention ratio the
    # regression gate watches (lower = concurrency helps).
    per_request = burst_seconds / len(ordered)
    entry: Dict[str, float] = {
        "seconds": total_seconds,
        "best": total_seconds,
        "runs": 1,
        "clients": float(clients),
        "requests": float(len(samples)),
        "submissions_per_second": clients / burst_seconds,
        "p95_latency_seconds": p95,
        "mean_latency_seconds": mean_latency,
        "serial_seconds_per_request": serial_per_request,
        "normalized": per_request / serial_per_request,
    }
    results["control_plane"] = entry
    return results


def _emit(path: str, quick: bool, calibration: float,
          benchmarks: Dict[str, Dict[str, float]]) -> None:
    payload = {
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "calibration_seconds": calibration,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "benchmarks": {
            # An entry may precompute its own machine-independent
            # "normalized" (the makespan ratio); only fall back to the
            # calibration quotient when it did not.
            name: {"normalized": entry["seconds"] / calibration, **entry}
            for name, entry in benchmarks.items()
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repetitions per kernel (default 5)")
    parser.add_argument("--output-dir", default=".",
                        help="directory receiving BENCH_kernels.json / BENCH_endtoend.json")
    args = parser.parse_args(argv)
    repeats = args.repeats or 5

    os.makedirs(args.output_dir, exist_ok=True)
    calibration = _calibrate(repeats)
    print(f"calibration matmul: {calibration * 1e3:.2f} ms")

    kernels = bench_kernels(args.quick, repeats)
    for name, entry in sorted(kernels.items()):
        extra = "".join(
            f"  {key}={value:.2f}" for key, value in entry.items()
            if key.startswith("speedup")
        )
        print(f"  {name:32s} {entry['seconds'] * 1e3:9.2f} ms{extra}")
    _emit(os.path.join(args.output_dir, "BENCH_kernels.json"),
          args.quick, calibration, kernels)

    endtoend = bench_endtoend(args.quick, max(1, repeats // 2))
    endtoend.update(bench_makespan(args.quick, repeats))
    endtoend.update(bench_campaign(args.quick, repeats))
    endtoend.update(bench_cache(args.quick, repeats))
    endtoend.update(bench_multi_instrument(args.quick, repeats))
    endtoend.update(bench_control_plane(args.quick, repeats))
    for name, entry in sorted(endtoend.items()):
        extra = "".join(
            f"  {key}={value:.2f}" for key, value in entry.items()
            if key.startswith("speedup")
        )
        print(f"  {name:32s} {entry['seconds'] * 1e3:9.2f} ms{extra}")
    _emit(os.path.join(args.output_dir, "BENCH_endtoend.json"),
          args.quick, calibration, endtoend)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
