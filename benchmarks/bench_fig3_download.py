"""Fig. 3 — download speed vs MODIS product size, 3 vs 6 workers.

Regenerates the figure's series: mean +/- std download speed per batch
size for the three-product workload, at 3 and 6 Globus Compute workers.
Shape contract: speed rises with size, ~+3 MB/s from doubling workers,
and no gain on the single-file batch.
"""

import pytest

from repro.analysis import FIG3_WORKER_GAIN_MB_S, download_sweep, render_table


@pytest.mark.benchmark(group="fig3")
def test_fig3_download_speed(once):
    points = once(download_sweep, iterations=3)
    rows = [
        (
            f"{p.batch_bytes / 1e9:.1f} GB",
            p.workers,
            p.files,
            round(p.mean_speed_mb_s, 2),
            round(p.std_speed_mb_s, 2),
        )
        for p in points
    ]
    print()
    print(render_table(
        ["batch/product", "workers", "files", "mean MB/s", "std MB/s"],
        rows,
        title="Fig. 3: download speed statistics (paper: +3 MB/s from 3->6 workers, "
              "except single file)",
    ))

    by_size = {}
    for p in points:
        by_size.setdefault(p.batch_bytes, {})[p.workers] = p.mean_speed_mb_s
    multi = [cell[6] - cell[3] for size, cell in by_size.items() if size > 150e6]
    mean_gain = sum(multi) / len(multi)
    print(f"mean worker gain (multi-file batches): {mean_gain:.2f} MB/s "
          f"(paper: ~{FIG3_WORKER_GAIN_MB_S})")
    assert mean_gain == pytest.approx(FIG3_WORKER_GAIN_MB_S, abs=1.5)
    smallest = min(by_size)
    assert by_size[smallest][6] == pytest.approx(by_size[smallest][3], rel=0.02)
    # Speed grows with batch size (overhead amortization).
    three = {size: cell[3] for size, cell in by_size.items()}
    assert three[max(three)] > three[min(three)]
