"""Ablation benchmarks for the design choices DESIGN.md calls out.

* on-node USL contention vs ideal-linear workers (why Fig. 4a saturates),
* elastic scale-in vs static allocation (Fig. 6's resource efficiency),
* overlapped monitor-trigger inference vs a stage barrier (Fig. 2/6),
* rotation-invariant loss vs plain reconstruction (Section II-B).
"""

import numpy as np
import pytest

from repro.analysis import (
    contention_ablation,
    elastic_ablation,
    overlap_ablation,
    render_table,
    ri_loss_ablation,
)


@pytest.mark.benchmark(group="ablation")
def test_ablation_contention(once):
    result = once(contention_ablation, workers=(1, 8, 32, 64), num_files=128)
    print()
    print(render_table(
        ["workers", "contended tiles/s", "ideal tiles/s", "lost to contention"],
        [
            (
                count,
                round(result["contended"][count], 1),
                round(result["ideal"][count], 1),
                f"{(1 - result['contended'][count] / result['ideal'][count]) * 100:.0f}%",
            )
            for count in (1, 8, 32, 64)
        ],
        title="Ablation: on-node contention (USL) vs ideal linear scaling",
    ))
    assert result["ideal"][64] > 5.0 * result["contended"][64]


@pytest.mark.benchmark(group="ablation")
def test_ablation_elastic_scale_in(once):
    result = once(elastic_ablation, num_granule_sets=40)
    print()
    print(render_table(
        ["policy", "worker-seconds", "energy kWh"],
        [
            ("elastic (measured)", round(result["elastic_worker_seconds"], 1),
             round(result["elastic_kwh"], 4)),
            ("static hold-open", round(result["static_worker_seconds"], 1),
             round(result["static_kwh"], 4)),
        ],
        title=f"Ablation: elastic scale-in saves "
              f"{result['saving_fraction'] * 100:.0f}% worker-seconds, "
              f"{result['energy_saving_fraction'] * 100:.0f}% energy "
              f"({result['carbon_saving_kg'] * 1000:.1f} gCO2)",
    ))
    assert result["saving_fraction"] > 0.0
    assert result["energy_saving_fraction"] > 0.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_overlap(once):
    result = once(overlap_ablation, num_granule_sets=40)
    print()
    print(render_table(
        ["design", "makespan (s)"],
        [
            ("async monitor-trigger (measured)", round(result["overlapped_makespan"], 1)),
            ("barrier counterfactual", round(result["barrier_makespan"], 1)),
        ],
        title=f"Ablation: inference overlap saves "
              f"{result['overlap_seconds']:.1f}s of makespan",
    ))
    assert result["overlapped_makespan"] < result["barrier_makespan"]


def _regime_tiles(n_per=16, size=8, channels=2, seed=0):
    rng = np.random.default_rng(seed)
    tiles = []
    for regime in range(3):
        for _ in range(n_per):
            if regime == 0:
                tile = 0.8 + rng.normal(0, 0.03, (size, size, channels))
            elif regime == 1:
                ramp = np.linspace(0, 1, size)
                tile = ramp[None, :, None] * np.ones((size, 1, channels))
                tile = tile + rng.normal(0, 0.03, (size, size, channels))
            else:
                checker = ((np.arange(size)[:, None] + np.arange(size)[None, :]) % 2)
                tile = checker[:, :, None] * 0.9 + rng.normal(0, 0.03, (size, size, channels))
            tiles.append(tile)
    return np.stack(tiles)


@pytest.mark.benchmark(group="ablation")
def test_ablation_rotation_invariant_loss(once):
    tiles = _regime_tiles()
    result = once(ri_loss_ablation, tiles, num_classes=3, epochs=15)
    print()
    print(render_table(
        ["model", "label agreement under rotation"],
        [
            ("RICC (invariance loss)", round(result.ri_agreement, 3)),
            ("plain autoencoder", round(result.plain_agreement, 3)),
        ],
        title="Ablation: rotation-invariant loss",
    ))
    assert result.ri_agreement >= result.plain_agreement
