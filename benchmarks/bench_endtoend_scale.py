"""End-to-end makespan scaling (extension beyond the paper's figures).

How does the whole five-stage pipeline's makespan grow with workload, and
which stage dominates?  The paper evaluates stages in isolation; this
bench runs the full simulated pipeline at several granule counts and
decomposes the makespan — showing that downloads dominate at the paper's
3-worker allocation (the motivation for per-stage elastic allocation).
"""

import pytest

from repro.analysis import render_table
from repro.core import SimulatedEOMLWorkflow, SimWorkflowParams


@pytest.mark.benchmark(group="extension")
def test_endtoend_makespan_scaling(once):
    def sweep():
        results = {}
        for count in (6, 12, 24, 48):
            run = SimulatedEOMLWorkflow(
                SimWorkflowParams(num_granule_sets=count, seed=3)
            ).run()
            results[count] = run
        return results

    results = once(sweep)
    rows = []
    for count, run in results.items():
        spans = run.stage_spans
        rows.append(
            (
                count,
                round(run.makespan, 1),
                round(spans["download"][1] - spans["download"][0], 1),
                round(spans["preprocess"][1] - spans["preprocess"][0], 1),
                round(spans["inference"][1] - spans["inference"][0], 1),
                round(spans["shipment"][1] - spans["shipment"][0], 2),
            )
        )
    print()
    print(render_table(
        ["granules", "makespan s", "download s", "preprocess s", "inference s", "ship s"],
        rows,
        title="End-to-end makespan decomposition (3 download / 32 preprocess / "
              "1 inference workers)",
    ))

    makespans = {count: run.makespan for count, run in results.items()}
    # Makespan grows with workload, sub-linearly near the small end
    # (fixed launch costs amortize) and download-dominated at the top.
    assert makespans[48] > makespans[12] > makespans[6]
    big = results[48]
    download_span = big.stage_spans["download"][1] - big.stage_spans["download"][0]
    assert download_span > 0.5 * big.makespan  # downloads dominate at 3 workers
    # Every run finished its full workload.
    for count, run in results.items():
        assert run.files_shipped == count
