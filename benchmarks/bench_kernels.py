"""Microbenchmarks of the real computational kernels.

Not a paper figure: these time the genuine code paths (tiling, NetCDF
codec, encoder inference, clustering) on this machine, so regressions in
the real library surface here.
"""

import numpy as np
import pytest

from repro.core.tiles import extract_tiles, tiles_to_dataset
from repro.netcdf import from_bytes, to_bytes
from repro.ricc import AgglomerativeClustering, RotationInvariantAutoencoder


def _swath(lines=512, pixels=512, bands=6, seed=0):
    rng = np.random.default_rng(seed)
    radiance = rng.normal(size=(bands, lines, pixels)).astype(np.float32)
    cloud = rng.uniform(size=(lines, pixels)) < 0.6
    land = np.zeros((lines, pixels), dtype=bool)
    lat = np.zeros((lines, pixels))
    lon = np.zeros((lines, pixels))
    return radiance, cloud, land, lat, lon


@pytest.mark.benchmark(group="kernels")
def test_kernel_tile_extraction(benchmark):
    radiance, cloud, land, lat, lon = _swath()
    tiles = benchmark(
        extract_tiles, radiance, cloud, land, lat, lon, 32,
    )
    assert tiles  # 16x16 grid, most tiles ~60% cloudy over ocean


@pytest.mark.benchmark(group="kernels")
def test_kernel_tile_extraction_paper_scale(benchmark):
    # One full MODIS swath (Section II-A): 2030 x 1354 pixels, 6 bands,
    # the paper's 128-pixel tiles — the production-size extraction load.
    radiance, cloud, land, lat, lon = _swath(lines=2030, pixels=1354)
    tiles = benchmark(
        extract_tiles, radiance, cloud, land, lat, lon, 128,
    )
    assert tiles


@pytest.mark.benchmark(group="kernels")
def test_kernel_netcdf_roundtrip(benchmark):
    radiance, cloud, land, lat, lon = _swath(lines=256, pixels=256)
    tiles = extract_tiles(radiance, cloud, land, lat, lon, 32)
    ds = tiles_to_dataset(tiles)

    def roundtrip():
        return from_bytes(to_bytes(ds))

    clone = benchmark(roundtrip)
    assert clone["radiance"].data.shape == ds["radiance"].data.shape


@pytest.mark.benchmark(group="kernels")
def test_kernel_encoder_inference(benchmark):
    rng = np.random.default_rng(0)
    model = RotationInvariantAutoencoder((16, 16, 6), latent_dim=16, hidden=(128, 32))
    batch = rng.normal(size=(256, 16, 16, 6)).astype(np.float32)
    latents = benchmark(model.encode, batch)
    assert latents.shape == (256, 16)


@pytest.mark.benchmark(group="kernels")
def test_kernel_encoder_inference_float32_batched(benchmark):
    # The inference micro-batcher's shape: many files fused into one
    # float32 encode call (the dtype-preserving fast path).
    rng = np.random.default_rng(0)
    model = RotationInvariantAutoencoder((16, 16, 6), latent_dim=16, hidden=(128, 32))
    batch = rng.normal(size=(2048, 16, 16, 6)).astype(np.float32)
    latents = benchmark(model.encode, batch)
    assert latents.shape == (2048, 16)
    assert latents.dtype == np.float32


@pytest.mark.benchmark(group="kernels")
def test_kernel_agglomerative_clustering(benchmark):
    rng = np.random.default_rng(0)
    data = rng.normal(size=(300, 16))

    def cluster():
        return AgglomerativeClustering(n_clusters=42).fit_predict(data)

    labels = benchmark(cluster)
    assert np.unique(labels).size == 42
