"""Compare a fresh BENCH_*.json against the committed baseline.

    PYTHONPATH=src python benchmarks/baseline.py --quick --output-dir /tmp/bench
    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines/BENCH_kernels.json \
        --candidate /tmp/bench/BENCH_kernels.json

Comparison is on the ``normalized`` values (kernel seconds divided by a
calibration matmul timed in the same process), so a baseline recorded on
one machine transfers to another.  Exit status 1 when any shared kernel
is more than ``--threshold`` (default 20 %) slower than baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def compare(baseline: dict, candidate: dict, threshold: float) -> List[str]:
    failures: List[str] = []
    if baseline.get("schema_version") != candidate.get("schema_version"):
        failures.append(
            f"schema mismatch: baseline v{baseline.get('schema_version')} "
            f"vs candidate v{candidate.get('schema_version')}"
        )
        return failures
    if baseline.get("quick") != candidate.get("quick"):
        failures.append(
            "quick-mode mismatch: baseline and candidate were run at "
            "different sizes and cannot be compared"
        )
        return failures
    base_marks = baseline.get("benchmarks", {})
    cand_marks = candidate.get("benchmarks", {})
    for name in sorted(base_marks):
        if base_marks[name].get("reference"):
            # Naive-implementation yardsticks: run with few repeats, too
            # noisy to gate on, and a regression there is not a product
            # regression anyway.
            continue
        if name not in cand_marks:
            failures.append(f"{name}: missing from candidate run")
            continue
        ref = base_marks[name].get("normalized")
        new = cand_marks[name].get("normalized")
        if not ref or not new:
            continue
        ratio = new / ref
        marker = "FAIL" if ratio > 1.0 + threshold else "ok"
        print(f"  {marker:4s} {name:32s} {ratio:6.2f}x baseline "
              f"(norm {ref:.3f} -> {new:.3f})")
        if ratio > 1.0 + threshold:
            failures.append(
                f"{name}: {ratio:.2f}x baseline exceeds the "
                f"{1.0 + threshold:.2f}x regression threshold"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--candidate", required=True)
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional slowdown (default 0.20)")
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.candidate) as handle:
        candidate = json.load(handle)

    failures = compare(baseline, candidate, args.threshold)
    if failures:
        print("\nperformance regression detected:", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print("\nno regression beyond threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
