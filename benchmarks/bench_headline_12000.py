"""The abstract's headline: 12,000 tiles in 44 s on 80 workers / 10 nodes.

"Notably, our workflow processes 12,000 high-resolution satellite images
in just 44 seconds using 80 workers distributed across 10 nodes."
"""

import pytest

from repro.analysis import HEADLINE, headline_run


@pytest.mark.benchmark(group="headline")
def test_headline_12000_tiles(once):
    point = once(headline_run, repeats=5)
    print()
    print(
        f"12,000 tiles on {HEADLINE['workers']} workers / {HEADLINE['nodes']} nodes: "
        f"{point.mean_seconds:.1f}s +/- {point.std_seconds:.1f} "
        f"({point.mean_tiles_per_s:.1f} tiles/s) — paper: {HEADLINE['seconds']}s"
    )
    assert point.tiles == HEADLINE["tiles"]
    assert point.mean_seconds == pytest.approx(HEADLINE["seconds"], rel=0.25)
