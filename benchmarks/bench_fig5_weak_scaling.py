"""Fig. 5 — weak scaling of preprocessing (2 files per worker).

(a) vs workers on a node: contention keeps completion time growing;
(b) vs nodes at 8 workers/node: completion time roughly flat
("excellent performance").
"""

import pytest

from repro.analysis import (
    TABLE1_WEAK_NODES,
    TABLE1_WEAK_WORKERS,
    render_comparison,
    render_table,
    weak_scaling_nodes,
    weak_scaling_workers,
)


@pytest.mark.benchmark(group="fig5")
def test_fig5a_weak_scaling_workers(once):
    curve = once(weak_scaling_workers, repeats=5)
    print()
    print(render_table(
        ["workers", "files", "mean s", "std s", "tiles/s"],
        [
            (p.concurrency, p.num_files, round(p.mean_seconds, 2),
             round(p.std_seconds, 2), round(p.mean_tiles_per_s, 2))
            for p in curve.points
        ],
        title="Fig. 5a: weak scaling over workers (2 files/worker)",
    ))
    print(render_comparison(
        "workers", curve.throughput_map(), TABLE1_WEAK_WORKERS,
        title="vs Table I (weak, workers) — the paper's 1-worker weak rate "
              "(21.3 tiles/s) is ~2x its own strong rate (10.5), which no "
              "work-conserving model reproduces; compare the curve tail",
    ))
    times = curve.completion_map()
    # Ideal weak scaling would be flat; on-node contention makes 64
    # workers take much longer than 1 for proportional work.
    assert times[64] > 2.0 * times[1]
    # The 128-worker point (2 nodes) holds the line: doubled work and
    # workers at near-constant completion time (paper: 543 s-equivalent
    # -> 567, a 1.04x ratio).
    assert times[128] < times[64] * 1.10
    # Absolute agreement at the tail where the paper's data is consistent.
    tput = curve.throughput_map()
    assert tput[128] == pytest.approx(TABLE1_WEAK_WORKERS[128], rel=0.15)


@pytest.mark.benchmark(group="fig5")
def test_fig5b_weak_scaling_nodes(once):
    curve = once(weak_scaling_nodes, repeats=5)
    print()
    print(render_table(
        ["nodes", "files", "mean s", "std s", "tiles/s"],
        [
            (p.concurrency, p.num_files, round(p.mean_seconds, 2),
             round(p.std_seconds, 2), round(p.mean_tiles_per_s, 2))
            for p in curve.points
        ],
        title="Fig. 5b: weak scaling over nodes (16 files/node)",
    ))
    print(render_comparison(
        "nodes", curve.throughput_map(), TABLE1_WEAK_NODES,
        title="vs Table I (weak, nodes)",
    ))
    times = curve.completion_map()
    # "Excellent" weak scaling: time grows < 1.6x from 1 to 10 nodes
    # (the cross-node USL share), vs 64x more work.
    assert times[10] / times[1] < 1.6
