"""Table I — tile throughput under all four scaling experiments.

Prints our reproduction of the full table (strong/weak x workers/nodes)
side by side with the paper's published values.
"""

import pytest

from repro.analysis import (
    TABLE1_STRONG_NODES,
    TABLE1_STRONG_WORKERS,
    TABLE1_WEAK_NODES,
    TABLE1_WEAK_WORKERS,
    render_table,
    shape_error,
    strong_scaling_nodes,
    strong_scaling_workers,
    weak_scaling_nodes,
    weak_scaling_workers,
)


def _rows(curve, paper):
    return [
        (
            p.concurrency,
            round(p.mean_tiles_per_s, 2),
            paper.get(p.concurrency, float("nan")),
        )
        for p in curve.points
    ]


@pytest.mark.benchmark(group="table1")
def test_table1_throughput(once):
    def full_table():
        return (
            strong_scaling_workers(repeats=3),
            strong_scaling_nodes(repeats=3),
            weak_scaling_workers(repeats=3),
            weak_scaling_nodes(repeats=3),
        )

    sw, sn, ww, wn = once(full_table)
    print()
    print(render_table(
        ["# workers", "tiles/s (ours)", "tiles/s (paper)"],
        _rows(sw, TABLE1_STRONG_WORKERS),
        title="Table I, strong scaling over workers",
    ))
    print(render_table(
        ["# nodes", "tiles/s (ours)", "tiles/s (paper)"],
        _rows(sn, TABLE1_STRONG_NODES),
        title="Table I, strong scaling over nodes",
    ))
    print(render_table(
        ["# workers", "tiles/s (ours)", "tiles/s (paper)"],
        _rows(ww, TABLE1_WEAK_WORKERS),
        title="Table I, weak scaling over workers",
    ))
    print(render_table(
        ["# nodes", "tiles/s (ours)", "tiles/s (paper)"],
        _rows(wn, TABLE1_WEAK_NODES),
        title="Table I, weak scaling over nodes",
    ))

    strong_peak = max(sn.throughput_map().values())
    weak_peak = max(wn.throughput_map().values())
    print(f"strong peak {strong_peak:.1f} tiles/s (paper 267.4); "
          f"weak peak {weak_peak:.1f} tiles/s (paper 271.7)")
    # Peaks land in the paper's ballpark and in the right order of
    # magnitude; the key Table I claims:
    assert 200 < strong_peak < 340
    assert 200 < weak_peak < 340
    # Worker plateau around 37-42 tiles/s between 16 and 64 workers.
    sw_tput = sw.throughput_map()
    for count in (16, 32, 64):
        assert sw_tput[count] == pytest.approx(38.0, rel=0.2)
    assert shape_error(sw_tput, TABLE1_STRONG_WORKERS) < 0.20
